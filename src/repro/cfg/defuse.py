"""Def/use analysis and static backward slicing over mini-C programs.

The slice is computed at *line* granularity and is flow-insensitive (a
sound over-approximation), but it is scope-sensitive and
control-dependence-aware: variables are resolved per function (a local
``i`` of one function does not alias a local ``i`` of another), a control
statement (``if``/``while``) enters the slice only when its body contains a
relevant line, and a call site enters the slice only when its callee
contains one.  This matches the "simple program slicing" the paper applies
before building the MaxSAT instance for the larger benchmarks (Table 3): it
removes assignments that cannot influence the checked assertion or output.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.lang import ast


def expression_uses(expr: Optional[ast.Expr]) -> set[str]:
    """Variables (scalars and arrays) read by an expression."""
    if expr is None:
        return set()
    if isinstance(expr, ast.IntLiteral):
        return set()
    if isinstance(expr, ast.VarRef):
        return {expr.name}
    if isinstance(expr, ast.ArrayRef):
        return {expr.name} | expression_uses(expr.index)
    if isinstance(expr, ast.UnaryOp):
        return expression_uses(expr.operand)
    if isinstance(expr, ast.BinaryOp):
        return expression_uses(expr.left) | expression_uses(expr.right)
    if isinstance(expr, ast.Conditional):
        return (
            expression_uses(expr.cond)
            | expression_uses(expr.then)
            | expression_uses(expr.otherwise)
        )
    if isinstance(expr, ast.Call):
        uses: set[str] = set()
        for arg in expr.args:
            uses |= expression_uses(arg)
        return uses
    return set()


def expression_calls(expr: Optional[ast.Expr]) -> set[str]:
    """Functions called (directly) from an expression."""
    if expr is None:
        return set()
    if isinstance(expr, ast.Call):
        calls = {expr.name}
        for arg in expr.args:
            calls |= expression_calls(arg)
        return calls
    if isinstance(expr, ast.UnaryOp):
        return expression_calls(expr.operand)
    if isinstance(expr, ast.BinaryOp):
        return expression_calls(expr.left) | expression_calls(expr.right)
    if isinstance(expr, ast.Conditional):
        return (
            expression_calls(expr.cond)
            | expression_calls(expr.then)
            | expression_calls(expr.otherwise)
        )
    if isinstance(expr, ast.ArrayRef):
        return expression_calls(expr.index)
    return set()


def statement_defs(stmt: ast.Stmt) -> set[str]:
    """Variables written by a statement (not descending into bodies)."""
    if isinstance(stmt, (ast.VarDecl, ast.Assign)):
        return {stmt.name}
    if isinstance(stmt, (ast.ArrayDecl, ast.ArrayAssign)):
        return {stmt.name}
    return set()


def statement_uses(stmt: ast.Stmt) -> set[str]:
    """Variables read by a statement (not descending into bodies)."""
    if isinstance(stmt, ast.VarDecl):
        return expression_uses(stmt.init)
    if isinstance(stmt, ast.ArrayDecl):
        uses: set[str] = set()
        for expr in stmt.init:
            uses |= expression_uses(expr)
        return uses
    if isinstance(stmt, ast.Assign):
        return expression_uses(stmt.value)
    if isinstance(stmt, ast.ArrayAssign):
        return {stmt.name} | expression_uses(stmt.index) | expression_uses(stmt.value)
    if isinstance(stmt, (ast.If, ast.While)):
        return expression_uses(stmt.cond)
    if isinstance(stmt, ast.Return):
        return expression_uses(stmt.value)
    if isinstance(stmt, (ast.Assert, ast.Assume)):
        return expression_uses(stmt.cond)
    if isinstance(stmt, ast.ExprStmt):
        return expression_uses(stmt.expr)
    if isinstance(stmt, ast.Print):
        return expression_uses(stmt.value)
    return set()


def statement_calls(stmt: ast.Stmt) -> set[str]:
    """Functions called directly from a statement (not descending into bodies)."""
    if isinstance(stmt, ast.VarDecl):
        return expression_calls(stmt.init)
    if isinstance(stmt, ast.ArrayDecl):
        calls: set[str] = set()
        for expr in stmt.init:
            calls |= expression_calls(expr)
        return calls
    if isinstance(stmt, ast.Assign):
        return expression_calls(stmt.value)
    if isinstance(stmt, ast.ArrayAssign):
        return expression_calls(stmt.index) | expression_calls(stmt.value)
    if isinstance(stmt, (ast.If, ast.While)):
        return expression_calls(stmt.cond)
    if isinstance(stmt, ast.Return):
        return expression_calls(stmt.value)
    if isinstance(stmt, (ast.Assert, ast.Assume)):
        return expression_calls(stmt.cond)
    if isinstance(stmt, ast.ExprStmt):
        return expression_calls(stmt.expr)
    if isinstance(stmt, ast.Print):
        return expression_calls(stmt.value)
    return set()


def called_functions(program: ast.Program, function: str) -> set[str]:
    """Functions transitively reachable from ``function`` in the call graph."""
    graph = call_graph(program)
    seen: set[str] = set()
    frontier = [function]
    while frontier:
        current = frontier.pop()
        for callee in graph.get(current, set()):
            if callee not in seen:
                seen.add(callee)
                frontier.append(callee)
    return seen


def call_graph(program: ast.Program) -> dict[str, set[str]]:
    """Direct call graph of the program."""
    graph: dict[str, set[str]] = {}

    def visit(statements: tuple[ast.Stmt, ...], caller: str) -> None:
        for stmt in statements:
            graph.setdefault(caller, set()).update(
                name for name in statement_calls(stmt) if name in program.functions
            )
            if isinstance(stmt, ast.If):
                visit(stmt.then_body, caller)
                visit(stmt.else_body, caller)
            elif isinstance(stmt, ast.While):
                visit(stmt.body, caller)

    for name, function in program.functions.items():
        graph.setdefault(name, set())
        visit(function.body, name)
    return graph


def function_local_names(function: ast.Function) -> set[str]:
    """Parameters and locally declared variable names of a function."""
    names: set[str] = set(function.params)

    def visit(statements: tuple[ast.Stmt, ...]) -> None:
        for stmt in statements:
            if isinstance(stmt, (ast.VarDecl, ast.ArrayDecl)):
                names.add(stmt.name)
            if isinstance(stmt, ast.If):
                visit(stmt.then_body)
                visit(stmt.else_body)
            elif isinstance(stmt, ast.While):
                visit(stmt.body)

    visit(function.body)
    return names


def backward_slice_lines(
    program: ast.Program,
    criterion_variables: Optional[Iterable[str]] = None,
) -> set[int]:
    """Lines that may influence the assertions / outputs of the program.

    The slicing criterion defaults to every variable used in an ``assert``,
    ``print_int`` or ``return`` statement of ``main`` (plus explicitly given
    ``criterion_variables``).  The result is the set of source lines whose
    statements can (transitively, flow-insensitively) affect those variables.

    Variables are qualified by their defining scope: a local of one function
    never matches a like-named local of another, so a helper whose locals
    merely shadow relevant names stays out of the slice.  Control statements
    join the slice only when their bodies contain a relevant line, and a
    call site joins only once its callee does — this keeps functions with no
    influence on the criterion entirely out of the slice, which is what lets
    :func:`repro.reduction.slicing.sliced_tracer_settings` classify them as
    concretizable.
    """
    locals_of = {
        name: function_local_names(function)
        for name, function in program.functions.items()
    }
    defined_functions = set(program.functions)

    # Each record is (statement, enclosing function, enclosing control
    # statements from outermost to innermost).
    records: list[tuple[ast.Stmt, str, tuple[ast.Stmt, ...]]] = []

    def collect(
        statements: tuple[ast.Stmt, ...], function: str, parents: tuple[ast.Stmt, ...]
    ) -> None:
        for stmt in statements:
            records.append((stmt, function, parents))
            if isinstance(stmt, ast.If):
                collect(stmt.then_body, function, parents + (stmt,))
                collect(stmt.else_body, function, parents + (stmt,))
            elif isinstance(stmt, ast.While):
                collect(stmt.body, function, parents + (stmt,))

    for name, function in program.functions.items():
        collect(function.body, name, ())

    def qualify(names: set[str], function: str) -> set[tuple[Optional[str], str]]:
        scope = locals_of.get(function, set())
        return {(function if name in scope else None, name) for name in names}

    relevant_vars: set[tuple[Optional[str], str]] = set()
    for name in criterion_variables or ():
        # Explicit criterion names are matched in every scope they occur in.
        relevant_vars.add((None, name))
        for function, scope in locals_of.items():
            if name in scope:
                relevant_vars.add((function, name))

    relevant_lines: set[int] = set()
    # The entry point's assumptions and returns always matter: they constrain
    # the test inputs and the observed result.
    relevant_functions: set[str] = {"main"}

    def apply_effects(stmt: ast.Stmt, function: str, parents: tuple[ast.Stmt, ...]) -> None:
        """Record a statement as relevant: its line, reads, callees, guards."""
        relevant_lines.add(stmt.line)
        relevant_vars.update(qualify(statement_uses(stmt), function))
        relevant_functions.update(statement_calls(stmt) & defined_functions)
        for parent in parents:  # control dependence: the guards stay
            relevant_lines.add(parent.line)
            relevant_vars.update(qualify(statement_uses(parent), function))
            relevant_functions.update(statement_calls(parent) & defined_functions)

    # Seeds: assertions and outputs anywhere, plus main's returns.
    for stmt, function, parents in records:
        if isinstance(stmt, (ast.Assert, ast.Print)) or (
            isinstance(stmt, ast.Return) and function == "main"
        ):
            apply_effects(stmt, function, parents)

    # Fixed point over the def/use closure.
    while True:
        before = (len(relevant_lines), len(relevant_vars), len(relevant_functions))
        functions_with_relevant_lines = {
            function for stmt, function, _ in records if stmt.line in relevant_lines
        }
        for stmt, function, parents in records:
            if stmt.line in relevant_lines:
                apply_effects(stmt, function, parents)
                continue
            relevant = bool(qualify(statement_defs(stmt), function) & relevant_vars)
            if not relevant and function in relevant_functions:
                relevant = isinstance(stmt, (ast.Return, ast.Assert, ast.Assume))
            if not relevant:
                # A call site matters as soon as its callee contains a
                # relevant statement (the call is what executes it).
                relevant = bool(statement_calls(stmt) & functions_with_relevant_lines)
            if relevant:
                apply_effects(stmt, function, parents)
        if (len(relevant_lines), len(relevant_vars), len(relevant_functions)) == before:
            break
    return relevant_lines
