"""Def/use analysis and static backward slicing over mini-C programs.

The slice is computed at *line* granularity and is deliberately
flow-insensitive (a sound over-approximation): a line is relevant when it
defines a variable used by a relevant line, when it is a control statement
(``if``/``while``) whose body contains a relevant line, or when it belongs
to a function (transitively) called from a relevant line.  This matches the
"simple program slicing" the paper applies before building the MaxSAT
instance for the larger benchmarks (Table 3): it removes assignments that
cannot influence the checked assertion or output.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.lang import ast


def expression_uses(expr: Optional[ast.Expr]) -> set[str]:
    """Variables (scalars and arrays) read by an expression."""
    if expr is None:
        return set()
    if isinstance(expr, ast.IntLiteral):
        return set()
    if isinstance(expr, ast.VarRef):
        return {expr.name}
    if isinstance(expr, ast.ArrayRef):
        return {expr.name} | expression_uses(expr.index)
    if isinstance(expr, ast.UnaryOp):
        return expression_uses(expr.operand)
    if isinstance(expr, ast.BinaryOp):
        return expression_uses(expr.left) | expression_uses(expr.right)
    if isinstance(expr, ast.Conditional):
        return (
            expression_uses(expr.cond)
            | expression_uses(expr.then)
            | expression_uses(expr.otherwise)
        )
    if isinstance(expr, ast.Call):
        uses: set[str] = set()
        for arg in expr.args:
            uses |= expression_uses(arg)
        return uses
    return set()


def expression_calls(expr: Optional[ast.Expr]) -> set[str]:
    """Functions called (directly) from an expression."""
    if expr is None:
        return set()
    if isinstance(expr, ast.Call):
        calls = {expr.name}
        for arg in expr.args:
            calls |= expression_calls(arg)
        return calls
    if isinstance(expr, ast.UnaryOp):
        return expression_calls(expr.operand)
    if isinstance(expr, ast.BinaryOp):
        return expression_calls(expr.left) | expression_calls(expr.right)
    if isinstance(expr, ast.Conditional):
        return (
            expression_calls(expr.cond)
            | expression_calls(expr.then)
            | expression_calls(expr.otherwise)
        )
    if isinstance(expr, ast.ArrayRef):
        return expression_calls(expr.index)
    return set()


def statement_defs(stmt: ast.Stmt) -> set[str]:
    """Variables written by a statement (not descending into bodies)."""
    if isinstance(stmt, (ast.VarDecl, ast.Assign)):
        return {stmt.name}
    if isinstance(stmt, (ast.ArrayDecl, ast.ArrayAssign)):
        return {stmt.name}
    return set()


def statement_uses(stmt: ast.Stmt) -> set[str]:
    """Variables read by a statement (not descending into bodies)."""
    if isinstance(stmt, ast.VarDecl):
        return expression_uses(stmt.init)
    if isinstance(stmt, ast.ArrayDecl):
        uses: set[str] = set()
        for expr in stmt.init:
            uses |= expression_uses(expr)
        return uses
    if isinstance(stmt, ast.Assign):
        return expression_uses(stmt.value)
    if isinstance(stmt, ast.ArrayAssign):
        return {stmt.name} | expression_uses(stmt.index) | expression_uses(stmt.value)
    if isinstance(stmt, (ast.If, ast.While)):
        return expression_uses(stmt.cond)
    if isinstance(stmt, ast.Return):
        return expression_uses(stmt.value)
    if isinstance(stmt, (ast.Assert, ast.Assume)):
        return expression_uses(stmt.cond)
    if isinstance(stmt, ast.ExprStmt):
        return expression_uses(stmt.expr)
    if isinstance(stmt, ast.Print):
        return expression_uses(stmt.value)
    return set()


def statement_calls(stmt: ast.Stmt) -> set[str]:
    """Functions called directly from a statement (not descending into bodies)."""
    if isinstance(stmt, ast.VarDecl):
        return expression_calls(stmt.init)
    if isinstance(stmt, ast.ArrayDecl):
        calls: set[str] = set()
        for expr in stmt.init:
            calls |= expression_calls(expr)
        return calls
    if isinstance(stmt, ast.Assign):
        return expression_calls(stmt.value)
    if isinstance(stmt, ast.ArrayAssign):
        return expression_calls(stmt.index) | expression_calls(stmt.value)
    if isinstance(stmt, (ast.If, ast.While)):
        return expression_calls(stmt.cond)
    if isinstance(stmt, ast.Return):
        return expression_calls(stmt.value)
    if isinstance(stmt, (ast.Assert, ast.Assume)):
        return expression_calls(stmt.cond)
    if isinstance(stmt, ast.ExprStmt):
        return expression_calls(stmt.expr)
    if isinstance(stmt, ast.Print):
        return expression_calls(stmt.value)
    return set()


def called_functions(program: ast.Program, function: str) -> set[str]:
    """Functions transitively reachable from ``function`` in the call graph."""
    graph = call_graph(program)
    seen: set[str] = set()
    frontier = [function]
    while frontier:
        current = frontier.pop()
        for callee in graph.get(current, set()):
            if callee not in seen:
                seen.add(callee)
                frontier.append(callee)
    return seen


def call_graph(program: ast.Program) -> dict[str, set[str]]:
    """Direct call graph of the program."""
    graph: dict[str, set[str]] = {}

    def visit(statements: tuple[ast.Stmt, ...], caller: str) -> None:
        for stmt in statements:
            graph.setdefault(caller, set()).update(
                name for name in statement_calls(stmt) if name in program.functions
            )
            if isinstance(stmt, ast.If):
                visit(stmt.then_body, caller)
                visit(stmt.else_body, caller)
            elif isinstance(stmt, ast.While):
                visit(stmt.body, caller)

    for name, function in program.functions.items():
        graph.setdefault(name, set())
        visit(function.body, name)
    return graph


def backward_slice_lines(
    program: ast.Program,
    criterion_variables: Optional[Iterable[str]] = None,
) -> set[int]:
    """Lines that may influence the assertions / outputs of the program.

    The slicing criterion defaults to every variable used in an ``assert``,
    ``print_int`` or ``return`` statement of ``main`` (plus explicitly given
    ``criterion_variables``).  The result is the set of source lines whose
    statements can (transitively, flow-insensitively) affect those variables,
    including the control statements around them and everything inside
    functions reachable from relevant calls.
    """
    all_statements: list[tuple[ast.Stmt, str]] = []

    def collect(statements: tuple[ast.Stmt, ...], function: str) -> None:
        for stmt in statements:
            all_statements.append((stmt, function))
            if isinstance(stmt, ast.If):
                collect(stmt.then_body, function)
                collect(stmt.else_body, function)
            elif isinstance(stmt, ast.While):
                collect(stmt.body, function)

    for name, function in program.functions.items():
        collect(function.body, name)

    relevant_vars: set[str] = set(criterion_variables or ())
    relevant_lines: set[int] = set()
    relevant_functions: set[str] = set()
    for stmt, function in all_statements:
        if isinstance(stmt, (ast.Assert, ast.Print)) or (
            isinstance(stmt, ast.Return) and function == "main"
        ):
            relevant_vars |= statement_uses(stmt)
            relevant_lines.add(stmt.line)
            relevant_functions |= statement_calls(stmt)

    # Fixed point: add statements defining relevant variables, control
    # statements, and the bodies of functions called from relevant lines.
    changed = True
    while changed:
        changed = False
        for stmt, function in all_statements:
            if stmt.line in relevant_lines:
                new_functions = statement_calls(stmt) & set(program.functions)
                if not new_functions <= relevant_functions:
                    relevant_functions |= new_functions
                    changed = True
                continue
            relevant = False
            if statement_defs(stmt) & relevant_vars:
                relevant = True
            if isinstance(stmt, (ast.If, ast.While)):
                relevant = True
            if function in relevant_functions and isinstance(
                stmt, (ast.Return, ast.Assert, ast.Assume)
            ):
                relevant = True
            if relevant:
                relevant_lines.add(stmt.line)
                relevant_vars |= statement_uses(stmt)
                relevant_functions |= statement_calls(stmt) & set(program.functions)
                changed = True
        # Parameters of relevant functions: their callers' argument
        # expressions are already covered through statement_uses of the call
        # sites; the bodies become relevant through `relevant_functions`.
        for stmt, function in all_statements:
            if function in relevant_functions and statement_defs(stmt) & relevant_vars:
                if stmt.line not in relevant_lines:
                    relevant_lines.add(stmt.line)
                    relevant_vars |= statement_uses(stmt)
                    changed = True
    return relevant_lines
