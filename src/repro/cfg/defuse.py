"""Def/use analysis and static backward slicing over mini-C programs.

The slice is computed at *line* granularity and is flow-insensitive (a
sound over-approximation), but it is scope-sensitive and
control-dependence-aware: variables are resolved per function (a local
``i`` of one function does not alias a local ``i`` of another), a control
statement (``if``/``while``) enters the slice only when its body contains a
relevant line, and a call site enters the slice only when its callee
contains one.  This matches the "simple program slicing" the paper applies
before building the MaxSAT instance for the larger benchmarks (Table 3): it
removes assignments that cannot influence the checked assertion or output.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.lang import ast


def expression_uses(expr: Optional[ast.Expr]) -> set[str]:
    """Variables (scalars and arrays) read by an expression."""
    if expr is None:
        return set()
    if isinstance(expr, ast.IntLiteral):
        return set()
    if isinstance(expr, ast.VarRef):
        return {expr.name}
    if isinstance(expr, ast.ArrayRef):
        return {expr.name} | expression_uses(expr.index)
    if isinstance(expr, ast.UnaryOp):
        return expression_uses(expr.operand)
    if isinstance(expr, ast.BinaryOp):
        return expression_uses(expr.left) | expression_uses(expr.right)
    if isinstance(expr, ast.Conditional):
        return (
            expression_uses(expr.cond)
            | expression_uses(expr.then)
            | expression_uses(expr.otherwise)
        )
    if isinstance(expr, ast.Call):
        uses: set[str] = set()
        for arg in expr.args:
            uses |= expression_uses(arg)
        return uses
    return set()


def expression_calls(expr: Optional[ast.Expr]) -> set[str]:
    """Functions called (directly) from an expression."""
    if expr is None:
        return set()
    if isinstance(expr, ast.Call):
        calls = {expr.name}
        for arg in expr.args:
            calls |= expression_calls(arg)
        return calls
    if isinstance(expr, ast.UnaryOp):
        return expression_calls(expr.operand)
    if isinstance(expr, ast.BinaryOp):
        return expression_calls(expr.left) | expression_calls(expr.right)
    if isinstance(expr, ast.Conditional):
        return (
            expression_calls(expr.cond)
            | expression_calls(expr.then)
            | expression_calls(expr.otherwise)
        )
    if isinstance(expr, ast.ArrayRef):
        return expression_calls(expr.index)
    return set()


def statement_defs(stmt: ast.Stmt) -> set[str]:
    """Variables written by a statement (not descending into bodies)."""
    if isinstance(stmt, (ast.VarDecl, ast.Assign)):
        return {stmt.name}
    if isinstance(stmt, (ast.ArrayDecl, ast.ArrayAssign)):
        return {stmt.name}
    return set()


def statement_uses(stmt: ast.Stmt) -> set[str]:
    """Variables read by a statement (not descending into bodies)."""
    if isinstance(stmt, ast.VarDecl):
        return expression_uses(stmt.init)
    if isinstance(stmt, ast.ArrayDecl):
        uses: set[str] = set()
        for expr in stmt.init:
            uses |= expression_uses(expr)
        return uses
    if isinstance(stmt, ast.Assign):
        return expression_uses(stmt.value)
    if isinstance(stmt, ast.ArrayAssign):
        return {stmt.name} | expression_uses(stmt.index) | expression_uses(stmt.value)
    if isinstance(stmt, (ast.If, ast.While)):
        return expression_uses(stmt.cond)
    if isinstance(stmt, ast.Return):
        return expression_uses(stmt.value)
    if isinstance(stmt, (ast.Assert, ast.Assume)):
        return expression_uses(stmt.cond)
    if isinstance(stmt, ast.ExprStmt):
        return expression_uses(stmt.expr)
    if isinstance(stmt, ast.Print):
        return expression_uses(stmt.value)
    return set()


def statement_calls(stmt: ast.Stmt) -> set[str]:
    """Functions called directly from a statement (not descending into bodies)."""
    if isinstance(stmt, ast.VarDecl):
        return expression_calls(stmt.init)
    if isinstance(stmt, ast.ArrayDecl):
        calls: set[str] = set()
        for expr in stmt.init:
            calls |= expression_calls(expr)
        return calls
    if isinstance(stmt, ast.Assign):
        return expression_calls(stmt.value)
    if isinstance(stmt, ast.ArrayAssign):
        return expression_calls(stmt.index) | expression_calls(stmt.value)
    if isinstance(stmt, (ast.If, ast.While)):
        return expression_calls(stmt.cond)
    if isinstance(stmt, ast.Return):
        return expression_calls(stmt.value)
    if isinstance(stmt, (ast.Assert, ast.Assume)):
        return expression_calls(stmt.cond)
    if isinstance(stmt, ast.ExprStmt):
        return expression_calls(stmt.expr)
    if isinstance(stmt, ast.Print):
        return expression_calls(stmt.value)
    return set()


def called_functions(program: ast.Program, function: str) -> set[str]:
    """Functions transitively reachable from ``function`` in the call graph."""
    graph = call_graph(program)
    seen: set[str] = set()
    frontier = [function]
    while frontier:
        current = frontier.pop()
        for callee in graph.get(current, set()):
            if callee not in seen:
                seen.add(callee)
                frontier.append(callee)
    return seen


def call_graph(program: ast.Program) -> dict[str, set[str]]:
    """Direct call graph of the program."""
    graph: dict[str, set[str]] = {}

    def visit(statements: tuple[ast.Stmt, ...], caller: str) -> None:
        for stmt in statements:
            graph.setdefault(caller, set()).update(
                name for name in statement_calls(stmt) if name in program.functions
            )
            if isinstance(stmt, ast.If):
                visit(stmt.then_body, caller)
                visit(stmt.else_body, caller)
            elif isinstance(stmt, ast.While):
                visit(stmt.body, caller)

    for name, function in program.functions.items():
        graph.setdefault(name, set())
        visit(function.body, name)
    return graph


def function_local_names(function: ast.Function) -> set[str]:
    """Parameters and locally declared variable names of a function."""
    names: set[str] = set(function.params)

    def visit(statements: tuple[ast.Stmt, ...]) -> None:
        for stmt in statements:
            if isinstance(stmt, (ast.VarDecl, ast.ArrayDecl)):
                names.add(stmt.name)
            if isinstance(stmt, ast.If):
                visit(stmt.then_body)
                visit(stmt.else_body)
            elif isinstance(stmt, ast.While):
                visit(stmt.body)

    visit(function.body)
    return names


def backward_slice_lines(
    program: ast.Program,
    criterion_variables: Optional[Iterable[str]] = None,
) -> set[int]:
    """Lines that may influence the assertions / outputs of the program.

    The slicing criterion defaults to every variable used in an ``assert``,
    ``print_int`` or ``return`` statement of ``main`` (plus explicitly given
    ``criterion_variables``).  The result is the set of source lines whose
    statements can (transitively, flow-insensitively) affect those variables.

    Variables are qualified by their defining scope: a local of one function
    never matches a like-named local of another, so a helper whose locals
    merely shadow relevant names stays out of the slice.  Control statements
    join the slice only when their bodies contain a relevant line, and a
    call site joins only once its callee does — this keeps functions with no
    influence on the criterion entirely out of the slice, which is what lets
    :func:`repro.reduction.slicing.sliced_tracer_settings` classify them as
    concretizable.
    """
    locals_of = {
        name: function_local_names(function)
        for name, function in program.functions.items()
    }
    defined_functions = set(program.functions)

    # Each record is (statement, enclosing function, enclosing control
    # statements from outermost to innermost).
    records: list[tuple[ast.Stmt, str, tuple[ast.Stmt, ...]]] = []

    def collect(
        statements: tuple[ast.Stmt, ...], function: str, parents: tuple[ast.Stmt, ...]
    ) -> None:
        for stmt in statements:
            records.append((stmt, function, parents))
            if isinstance(stmt, ast.If):
                collect(stmt.then_body, function, parents + (stmt,))
                collect(stmt.else_body, function, parents + (stmt,))
            elif isinstance(stmt, ast.While):
                collect(stmt.body, function, parents + (stmt,))

    for name, function in program.functions.items():
        collect(function.body, name, ())

    def qualify(names: set[str], function: str) -> frozenset:
        scope = locals_of.get(function, set())
        return frozenset((function if name in scope else None, name) for name in names)

    # Precompute each record's slice-relevant facts once, plus the indexes
    # the worklist propagation consults: which records define a qualified
    # variable, which records call a function, which records sit on a line,
    # and which Return/Assert/Assume records belong to each function.  The
    # closure then touches each record and each fact a bounded number of
    # times instead of rescanning every record per round.
    count = len(records)
    rec_line: list[int] = [0] * count
    rec_uses: list[frozenset] = [frozenset()] * count
    rec_calls: list[frozenset] = [frozenset()] * count
    rec_parent_lines: list[tuple[int, ...]] = [()] * count
    line_records: dict[int, list[int]] = {}
    line_functions: dict[int, set[str]] = {}
    def_index: dict[tuple, list[int]] = {}
    call_index: dict[str, list[int]] = {}
    fn_exit_records: dict[str, list[int]] = {}
    for index, (stmt, function, parents) in enumerate(records):
        rec_line[index] = stmt.line
        rec_uses[index] = qualify(statement_uses(stmt), function)
        calls = frozenset(statement_calls(stmt) & defined_functions)
        rec_calls[index] = calls
        rec_parent_lines[index] = tuple(parent.line for parent in parents)
        line_records.setdefault(stmt.line, []).append(index)
        line_functions.setdefault(stmt.line, set()).add(function)
        for var in qualify(statement_defs(stmt), function):
            def_index.setdefault(var, []).append(index)
        for callee in calls:
            call_index.setdefault(callee, []).append(index)
        if isinstance(stmt, (ast.Return, ast.Assert, ast.Assume)):
            fn_exit_records.setdefault(function, []).append(index)

    relevant_lines: set[int] = set()
    relevant_vars: set[tuple[Optional[str], str]] = set()
    relevant_functions: set[str] = set()
    functions_with_relevant_lines: set[str] = set()
    marked = bytearray(count)
    queue: list[int] = []

    def mark(index: int) -> None:
        if not marked[index]:
            marked[index] = 1
            queue.append(index)

    def add_line(line: int) -> None:
        if line in relevant_lines:
            return
        relevant_lines.add(line)
        for function in line_functions.get(line, ()):
            if function not in functions_with_relevant_lines:
                functions_with_relevant_lines.add(function)
                # A call site matters as soon as its callee contains a
                # relevant statement (the call is what executes it).
                for site in call_index.get(function, ()):
                    mark(site)
        for index in line_records.get(line, ()):
            mark(index)

    def add_var(var: tuple) -> None:
        if var not in relevant_vars:
            relevant_vars.add(var)
            for index in def_index.get(var, ()):
                mark(index)

    def add_function(function: str) -> None:
        # A (transitively) called function's returns, assertions and
        # assumptions constrain what the caller observes.
        if function not in relevant_functions:
            relevant_functions.add(function)
            for index in fn_exit_records.get(function, ()):
                mark(index)

    for name in criterion_variables or ():
        # Explicit criterion names are matched in every scope they occur in.
        add_var((None, name))
        for function, scope in locals_of.items():
            if name in scope:
                add_var((function, name))

    # Seeds: assertions and outputs anywhere, plus the entry point (its
    # assumptions and returns constrain the test inputs and the result).
    add_function("main")
    for index, (stmt, function, parents) in enumerate(records):
        if isinstance(stmt, (ast.Assert, ast.Print)) or (
            isinstance(stmt, ast.Return) and function == "main"
        ):
            mark(index)

    while queue:
        index = queue.pop()
        add_line(rec_line[index])
        for line in rec_parent_lines[index]:  # control dependence
            add_line(line)
        for var in rec_uses[index]:
            add_var(var)
        for callee in rec_calls[index]:
            add_function(callee)
    return relevant_lines
