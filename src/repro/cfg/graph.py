"""A statement-level control-flow graph over the structured mini-C AST.

mini-C has no ``goto``/``break``/``continue``, so the CFG of a function is
fully determined by the statement structure: straight-line edges between
consecutive statements, a diamond for ``if``/``else`` and a back edge for
``while``.  The graph is what the worklist dataflow framework in
``repro.analysis`` iterates over; edges out of a branch or loop guard carry
the guard expression and the direction taken so interval analysis can
refine states along them (``while (i < n)`` implies ``i < n`` on the body
edge and ``i >= n`` on the exit edge).

Nodes are numbered densely per function; node 0 is the synthetic entry.
A single synthetic exit node collects every ``return`` and the fall-through
end of the body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.lang import ast


@dataclass(frozen=True)
class Edge:
    """One CFG edge; ``cond``/``taken`` describe the branch it encodes."""

    source: int
    target: int
    cond: Optional[ast.Expr] = None
    taken: bool = True


@dataclass
class Node:
    """One CFG node: a statement, or a synthetic entry/exit marker."""

    index: int
    stmt: Optional[ast.Stmt] = None
    kind: str = "stmt"  # "entry" | "exit" | "stmt" | "branch" | "loop"
    #: True for loop-guard nodes: widening points of the dataflow iteration.
    is_loop_head: bool = False

    @property
    def line(self) -> int:
        return self.stmt.line if self.stmt is not None else 0


@dataclass
class FunctionGraph:
    """The CFG of one function."""

    function: ast.Function
    nodes: list[Node] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)

    @property
    def entry(self) -> int:
        return 0

    @property
    def exit(self) -> int:
        return 1

    def successors(self, index: int) -> list[Edge]:
        return self._out[index]

    def predecessors(self, index: int) -> list[Edge]:
        return self._in[index]

    def finalize(self) -> None:
        self._out: list[list[Edge]] = [[] for _ in self.nodes]
        self._in: list[list[Edge]] = [[] for _ in self.nodes]
        for edge in self.edges:
            self._out[edge.source].append(edge)
            self._in[edge.target].append(edge)

    def reverse_postorder(self) -> list[int]:
        """Node indices in reverse postorder from the entry (loop heads
        before their bodies), the classic iteration order that makes the
        worklist converge in few passes."""
        seen = [False] * len(self.nodes)
        order: list[int] = []

        def visit(index: int) -> None:
            stack = [(index, 0)]
            seen[index] = True
            while stack:
                node, position = stack.pop()
                succs = self._out[node]
                if position < len(succs):
                    stack.append((node, position + 1))
                    target = succs[position].target
                    if not seen[target]:
                        seen[target] = True
                        stack.append((target, 0))
                else:
                    order.append(node)

        visit(self.entry)
        return list(reversed(order))

    def reversed_view(self) -> "ReversedFunctionGraph":
        """A view with every edge flipped and the exit as entry.

        Running the forward dataflow solver over the view is a backward
        analysis of the function (liveness, very-busy expressions): the
        solver's "input state of a node" becomes the state *after* the
        node in execution order.
        """
        return ReversedFunctionGraph(self)


class ReversedFunctionGraph:
    """Edge-flipped adapter satisfying the solver's graph interface."""

    def __init__(self, graph: FunctionGraph) -> None:
        self.graph = graph
        self.nodes = graph.nodes
        self._out: list[list[Edge]] = [[] for _ in graph.nodes]
        self._in: list[list[Edge]] = [[] for _ in graph.nodes]
        for edge in graph.edges:
            flipped = Edge(
                source=edge.target, target=edge.source, cond=edge.cond, taken=edge.taken
            )
            self._out[flipped.source].append(flipped)
            self._in[flipped.target].append(flipped)

    @property
    def entry(self) -> int:
        return self.graph.exit

    @property
    def exit(self) -> int:
        return self.graph.entry

    def successors(self, index: int) -> list[Edge]:
        return self._out[index]

    def predecessors(self, index: int) -> list[Edge]:
        return self._in[index]

    def reverse_postorder(self) -> list[int]:
        seen = [False] * len(self.nodes)
        order: list[int] = []

        def visit(index: int) -> None:
            stack = [(index, 0)]
            seen[index] = True
            while stack:
                node, position = stack.pop()
                succs = self._out[node]
                if position < len(succs):
                    stack.append((node, position + 1))
                    target = succs[position].target
                    if not seen[target]:
                        seen[target] = True
                        stack.append((target, 0))
                else:
                    order.append(node)

        visit(self.entry)
        return list(reversed(order))


def build_function_graph(function: ast.Function) -> FunctionGraph:
    """Build the statement-level CFG of one function."""
    graph = FunctionGraph(function=function)
    graph.nodes.append(Node(index=0, kind="entry"))
    graph.nodes.append(Node(index=1, kind="exit"))

    def new_node(stmt: ast.Stmt, kind: str, loop_head: bool = False) -> int:
        node = Node(index=len(graph.nodes), stmt=stmt, kind=kind, is_loop_head=loop_head)
        graph.nodes.append(node)
        return node.index

    def link(source: int, target: int, cond: Optional[ast.Expr] = None, taken: bool = True) -> None:
        graph.edges.append(Edge(source=source, target=target, cond=cond, taken=taken))

    def build_block(statements: tuple[ast.Stmt, ...], preds: list[tuple[int, Optional[ast.Expr], bool]]) -> list[tuple[int, Optional[ast.Expr], bool]]:
        """Wire a statement sequence; ``preds`` are dangling (source, cond,
        taken) triples waiting to be connected to the next node.  Returns
        the dangling exits of the block."""
        current = preds
        for stmt in statements:
            if isinstance(stmt, ast.If):
                index = new_node(stmt, "branch")
                for source, cond, taken in current:
                    link(source, index, cond, taken)
                then_exits = build_block(stmt.then_body, [(index, stmt.cond, True)])
                else_exits = build_block(stmt.else_body, [(index, stmt.cond, False)])
                current = then_exits + else_exits
            elif isinstance(stmt, ast.While):
                index = new_node(stmt, "loop", loop_head=True)
                for source, cond, taken in current:
                    link(source, index, cond, taken)
                body_exits = build_block(stmt.body, [(index, stmt.cond, True)])
                for source, cond, taken in body_exits:  # the back edge
                    link(source, index, cond, taken)
                current = [(index, stmt.cond, False)]
            elif isinstance(stmt, ast.Return):
                index = new_node(stmt, "stmt")
                for source, cond, taken in current:
                    link(source, index, cond, taken)
                link(index, graph.exit)
                current = []  # anything after a return in this block is dead
            else:
                index = new_node(stmt, "stmt")
                for source, cond, taken in current:
                    link(source, index, cond, taken)
                current = [(index, None, True)]
        return current

    exits = build_block(function.body, [(graph.entry, None, True)])
    for source, cond, taken in exits:
        link(source, graph.exit, cond, taken)
    graph.finalize()
    return graph


def build_program_graphs(program: ast.Program) -> dict[str, FunctionGraph]:
    """CFGs for every function of the program."""
    return {name: build_function_graph(fn) for name, fn in program.functions.items()}
