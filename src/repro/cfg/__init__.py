"""Program-dependence utilities: CFGs, def/use sets, call graph, slicing.

The paper models a program as a transition system (X, L, l0, T); for trace
reduction it relies on program slicing.  This package provides the static
dependence information the slicer in :mod:`repro.reduction` and the
abstract interpreter in :mod:`repro.analysis` need: a statement-level
control-flow graph per function, per-statement defined/used variable sets,
the call graph, and a flow-insensitive backward slice at line granularity.
"""

from repro.cfg.defuse import (
    statement_defs,
    statement_uses,
    called_functions,
    call_graph,
    backward_slice_lines,
)
from repro.cfg.graph import (
    Edge,
    FunctionGraph,
    Node,
    build_function_graph,
    build_program_graphs,
)

__all__ = [
    "statement_defs",
    "statement_uses",
    "called_functions",
    "call_graph",
    "backward_slice_lines",
    "Edge",
    "FunctionGraph",
    "Node",
    "build_function_graph",
    "build_program_graphs",
]
