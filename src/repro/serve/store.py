"""Content-addressed caches behind the localization daemon.

:class:`ArtifactStore` retires the ROADMAP's cross-version encoding-cache
item at the serving layer: the nine per-version encodings of a Siemens
suite run are compiled exactly once each across all clients, however many
tests and connections ask about them.  Artifacts are addressed by
:func:`repro.bmc.compiled.artifact_key` — a stable hash of the program
text plus the encoding options — so the key exists before the compile
does, and a second client asking for the same version waits on the first
compile instead of repeating it.

Storage is two-tier: a bounded in-memory LRU of live
:class:`~repro.bmc.compiled.CompiledProgram` objects over an optional
on-disk spill of version-stamped pickles
(:func:`~repro.bmc.compiled.dumps_artifact`).  Memory eviction keeps the
disk copy; a corrupt or stale spill (truncated write, incompatible
:data:`~repro.bmc.compiled.ARTIFACT_FORMAT_VERSION`) is deleted and
recompiled rather than surfacing an error.

:class:`ResultCache` memoizes whole localization responses.  Localization
is a deterministic function of (artifact, test, spec, session options), so
repeated requests — every CI rerun re-localizes the same failing tests
until the bug is fixed — are served from memory without touching a worker.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Optional

from repro.bmc import BoundedModelChecker, CompiledProgram
from repro.bmc.compiled import (
    ArtifactFormatError,
    artifact_key,
    dumps_artifact,
    loads_artifact,
)
from repro.lang import check_program, parse_program
from repro.lang.diagnostics import ERROR, Diagnostic, has_errors

#: Compile options understood by :meth:`ArtifactStore.get_or_compile`,
#: with their defaults.  Only these participate in the artifact key.
COMPILE_OPTION_DEFAULTS: dict[str, object] = {
    "name": "program",
    "entry": "main",
    "width": None,  # None = the language default width
    "unwind": 16,
    "hard_functions": (),
    "simplify": True,
    "analysis_narrowing": True,
}


class CompileRejectedError(ValueError):
    """The program failed compilation with structured diagnostics.

    Raised for parse errors, type errors, and static-analysis findings of
    ERROR severity (a division whose divisor is always zero, an array index
    that is always out of bounds).  Carries the
    :class:`~repro.lang.diagnostics.Diagnostic` records so the daemon can
    answer with a structured rejection instead of a worker traceback.
    """

    def __init__(self, diagnostics: tuple[Diagnostic, ...]) -> None:
        self.diagnostics = tuple(diagnostics)
        summary = "; ".join(
            f"line {d.line}: [{d.code}] {d.message}" for d in self.diagnostics
        )
        super().__init__(f"program rejected: {summary}")


def normalize_compile_options(options: Optional[Mapping[str, object]]) -> dict:
    """Fill defaults and reject unknown compile options."""
    merged = dict(COMPILE_OPTION_DEFAULTS)
    for name, value in (options or {}).items():
        if name not in COMPILE_OPTION_DEFAULTS:
            raise ValueError(f"unknown compile option {name!r}")
        merged[name] = value
    merged["hard_functions"] = sorted(merged["hard_functions"] or ())
    return merged


@dataclass
class StoreStats:
    """Counters proving the compile-exactly-once contract."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    compiles: int = 0
    evictions: int = 0
    spills: int = 0
    corrupt_recovered: int = 0

    @property
    def requests(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return (self.memory_hits + self.disk_hits) / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "compiles": self.compiles,
            "evictions": self.evictions,
            "spills": self.spills,
            "corrupt_recovered": self.corrupt_recovered,
            "hit_rate": round(self.hit_rate, 4),
        }


class ArtifactStore:
    """Content-addressed, two-tier cache of compiled program artifacts.

    ``root=None`` keeps the store memory-only (no spill, evictions lose the
    artifact and a later request recompiles).  All methods are thread-safe;
    a compile for one key excludes concurrent compiles of the same key (so
    "exactly one compile per distinct artifact" holds under concurrency)
    while lookups of other keys proceed — the store lock is never held
    across a compile.
    """

    def __init__(
        self,
        root: Optional[Path | str] = None,
        max_memory_entries: int = 16,
    ) -> None:
        if max_memory_entries < 1:
            raise ValueError("max_memory_entries must be at least 1")
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self.max_memory_entries = max_memory_entries
        self.stats = StoreStats()
        self._memory: OrderedDict[str, CompiledProgram] = OrderedDict()
        self._lock = threading.RLock()
        #: Per-key compile-in-flight events: a second client asking for a
        #: key being compiled waits on its event instead of recompiling,
        #: while lookups of *other* keys proceed (the store lock is never
        #: held across a compile).
        self._in_flight: dict[str, threading.Event] = {}

    # ------------------------------------------------------------- addressing

    @staticmethod
    def key_for(program_text: str, options: Optional[Mapping[str, object]] = None) -> str:
        """The content address of one (program text, compile options) pair."""
        return artifact_key(program_text, normalize_compile_options(options))

    def _spill_path(self, key: str) -> Optional[Path]:
        if self.root is None:
            return None
        return self.root / f"{key}.artifact"

    # ----------------------------------------------------------------- lookup

    def get(self, key: str) -> Optional[CompiledProgram]:
        """Fetch by key from memory, then disk; ``None`` on a full miss."""
        with self._lock:
            compiled = self._memory.get(key)
            if compiled is not None:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                return compiled
            compiled = self._load_spill(key)
            if compiled is not None:
                self.stats.disk_hits += 1
                self._admit(key, compiled, spill=False)
                return compiled
            self.stats.misses += 1
            return None

    def get_or_compile(
        self,
        program_text: str,
        options: Optional[Mapping[str, object]] = None,
    ) -> tuple[str, CompiledProgram, str]:
        """Resolve (and, on a full miss, compile) one program version.

        Returns ``(key, compiled, source)`` where ``source`` is one of
        ``"memory"``, ``"disk"`` or ``"compiled"``.
        """
        normalized = normalize_compile_options(options)
        key = artifact_key(program_text, normalized)
        while True:
            with self._lock:
                memory_before = self.stats.memory_hits
                compiled = self.get(key)
                if compiled is not None:
                    source = (
                        "memory" if self.stats.memory_hits > memory_before else "disk"
                    )
                    return key, compiled, source
                pending = self._in_flight.get(key)
                if pending is None:
                    pending = threading.Event()
                    self._in_flight[key] = pending
                    owner = True
                else:
                    owner = False
            if not owner:
                # Another thread is compiling this exact key: wait for it,
                # then loop back to the (now hitting) lookup.
                pending.wait()
                continue
            try:
                compiled = self._compile(program_text, normalized)
                with self._lock:
                    self.stats.compiles += 1
                    self._admit(key, compiled, spill=True)
                return key, compiled, "compiled"
            finally:
                with self._lock:
                    self._in_flight.pop(key, None)
                pending.set()

    def serialized(self, key: str) -> Optional[bytes]:
        """The version-stamped artifact bytes (for shipping to a worker)."""
        compiled = self.get(key)
        if compiled is None:
            return None
        return dumps_artifact(compiled)

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    # ----------------------------------------------------------------- fill

    def _compile(self, program_text: str, normalized: dict) -> CompiledProgram:
        from repro.lang.parser import ParseError
        from repro.lang.typecheck import TypeError_

        try:
            program = parse_program(program_text, name=normalized["name"])
            check_program(program)
        except (ParseError, TypeError_) as exc:
            raise CompileRejectedError((exc.to_diagnostic(),)) from exc
        checker_kwargs: dict[str, object] = {
            "unwind": normalized["unwind"],
            "group_statements": True,
            "hard_functions": tuple(normalized["hard_functions"]),
            "simplify": normalized["simplify"],
            "analysis_narrowing": normalized["analysis_narrowing"],
        }
        if normalized["width"] is not None:
            checker_kwargs["width"] = normalized["width"]
        checker = BoundedModelChecker(program, **checker_kwargs)
        compiled = checker.compile_program(entry=normalized["entry"])
        if has_errors(compiled.diagnostics):
            raise CompileRejectedError(
                tuple(d for d in compiled.diagnostics if d.severity == ERROR)
            )
        return compiled

    def _admit(self, key: str, compiled: CompiledProgram, spill: bool) -> None:
        self._memory[key] = compiled
        self._memory.move_to_end(key)
        if spill:
            self._write_spill(key, compiled)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # ----------------------------------------------------------------- spill

    def _write_spill(self, key: str, compiled: CompiledProgram) -> None:
        path = self._spill_path(key)
        if path is None:
            return
        tmp = path.with_suffix(".tmp")
        try:
            tmp.write_bytes(dumps_artifact(compiled))
            tmp.replace(path)
            self.stats.spills += 1
        except OSError:
            # A read-only or full disk degrades to memory-only caching.
            tmp.unlink(missing_ok=True)

    def _load_spill(self, key: str) -> Optional[CompiledProgram]:
        path = self._spill_path(key)
        if path is None or not path.exists():
            return None
        try:
            return loads_artifact(path.read_bytes())
        except (ArtifactFormatError, OSError):
            # Truncated write, stale format version, or plain corruption:
            # drop the spill and let the caller recompile.
            path.unlink(missing_ok=True)
            self.stats.corrupt_recovered += 1
            return None


class ResultCache:
    """Bounded LRU memoizing whole localization responses.

    Localization is deterministic given (artifact key, test, spec, session
    options), so the server can answer a repeated request from memory; the
    cached value is the exact wire payload, keeping responses byte-identical
    whether computed or replayed.  ``max_entries=0`` disables the cache.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[dict]:
        if self.max_entries <= 0:
            return None
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: str, value: dict) -> None:
        if self.max_entries <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def get_or_fill(self, key: str, compute: Callable[[], dict]) -> dict:
        cached = self.get(key)
        if cached is not None:
            return cached
        value = compute()
        self.put(key, value)
        return value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def as_dict(self) -> dict:
        with self._lock:
            entries = len(self._entries)
        total = self.hits + self.misses
        return {
            "entries": entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
        }
