"""Content-addressed caches behind the localization daemon.

:class:`ArtifactStore` retires the ROADMAP's cross-version encoding-cache
item at the serving layer: the nine per-version encodings of a Siemens
suite run are compiled exactly once each across all clients, however many
tests and connections ask about them.  Artifacts are addressed by
:func:`repro.bmc.compiled.artifact_key` — a stable hash of the program
text plus the encoding options — so the key exists before the compile
does, and a second client asking for the same version waits on the first
compile instead of repeating it.

Storage is two-tier: a bounded in-memory LRU of live
:class:`~repro.bmc.compiled.CompiledProgram` objects over an optional
on-disk spill of version-stamped pickles
(:func:`~repro.bmc.compiled.dumps_artifact`).  Memory eviction keeps the
disk copy; a corrupt or stale spill (truncated write, incompatible
:data:`~repro.bmc.compiled.ARTIFACT_FORMAT_VERSION`) is deleted and
recompiled rather than surfacing an error.

:class:`ResultCache` memoizes whole localization responses.  Localization
is a deterministic function of (artifact, test, spec, session options), so
repeated requests — every CI rerun re-localizes the same failing tests
until the bug is fixed — are served from memory without touching a worker.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Optional

from repro import obs
from repro.analysis.impact import fingerprint_program
from repro.bmc import BoundedModelChecker, CompiledProgram
from repro.bmc.compiled import (
    ARTIFACT_FORMAT_VERSION,
    ARTIFACT_HEADER_BYTES,
    ArtifactFormatError,
    artifact_key,
    dumps_artifact,
    loads_artifact,
    peek_artifact_version,
)
from repro.bmc.splice import splice_compile
from repro.lang import check_program, parse_program
from repro.lang.diagnostics import ERROR, Diagnostic, has_errors

#: Compile options understood by :meth:`ArtifactStore.get_or_compile`,
#: with their defaults.  Only these participate in the artifact key.
COMPILE_OPTION_DEFAULTS: dict[str, object] = {
    "name": "program",
    "entry": "main",
    "width": None,  # None = the language default width
    "unwind": 16,
    "hard_functions": (),
    "simplify": True,
    "analysis_narrowing": True,
    "unwind_planning": False,
    "loop_iteration_groups": False,
}


class CompileRejectedError(ValueError):
    """The program failed compilation with structured diagnostics.

    Raised for parse errors, type errors, and static-analysis findings of
    ERROR severity (a division whose divisor is always zero, an array index
    that is always out of bounds).  Carries the
    :class:`~repro.lang.diagnostics.Diagnostic` records so the daemon can
    answer with a structured rejection instead of a worker traceback.
    """

    def __init__(self, diagnostics: tuple[Diagnostic, ...]) -> None:
        self.diagnostics = tuple(diagnostics)
        summary = "; ".join(
            f"line {d.line}: [{d.code}] {d.message}" for d in self.diagnostics
        )
        super().__init__(f"program rejected: {summary}")


def normalize_compile_options(options: Optional[Mapping[str, object]]) -> dict:
    """Fill defaults and reject unknown compile options."""
    merged = dict(COMPILE_OPTION_DEFAULTS)
    for name, value in (options or {}).items():
        if name not in COMPILE_OPTION_DEFAULTS:
            raise ValueError(f"unknown compile option {name!r}")
        merged[name] = value
    merged["hard_functions"] = sorted(merged["hard_functions"] or ())
    return merged


@dataclass
class StoreStats:
    """Counters proving the compile-exactly-once contract."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    compiles: int = 0
    warm_compiles: int = 0
    evictions: int = 0
    spills: int = 0
    corrupt_recovered: int = 0
    stale_swept: int = 0
    splice_declines: int = 0
    splice_declined_early: int = 0

    @property
    def requests(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return (self.memory_hits + self.disk_hits) / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "compiles": self.compiles,
            "warm_compiles": self.warm_compiles,
            "evictions": self.evictions,
            "spills": self.spills,
            "corrupt_recovered": self.corrupt_recovered,
            "stale_swept": self.stale_swept,
            "splice_declines": self.splice_declines,
            "splice_declined_early": self.splice_declined_early,
            "hit_rate": round(self.hit_rate, 4),
        }


class ArtifactStore:
    """Content-addressed, two-tier cache of compiled program artifacts.

    ``root=None`` keeps the store memory-only (no spill, evictions lose the
    artifact and a later request recompiles).  All methods are thread-safe;
    a compile for one key excludes concurrent compiles of the same key (so
    "exactly one compile per distinct artifact" holds under concurrency)
    while lookups of other keys proceed — the store lock is never held
    across a compile.
    """

    def __init__(
        self,
        root: Optional[Path | str] = None,
        max_memory_entries: int = 16,
    ) -> None:
        if max_memory_entries < 1:
            raise ValueError("max_memory_entries must be at least 1")
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self.max_memory_entries = max_memory_entries
        self.stats = StoreStats()
        self._memory: OrderedDict[str, CompiledProgram] = OrderedDict()
        #: Per-function exact-hash index over resident artifacts: maps a
        #: function hash to the keys of artifacts containing that exact
        #: function.  This is the nearest-ancestor lookup behind warm
        #: compiles — a new program version shares most function hashes
        #: with its predecessor, so the candidate set is found without
        #: diffing against every stored artifact.  Populated as artifacts
        #: pass through :meth:`_admit` (cold spills from earlier processes
        #: join the index once first loaded).
        self._fn_index: dict[str, set[str]] = {}
        self._key_hashes: dict[str, frozenset[str]] = {}
        self._lock = threading.RLock()
        #: Per-key compile-in-flight events: a second client asking for a
        #: key being compiled waits on its event instead of recompiling,
        #: while lookups of *other* keys proceed (the store lock is never
        #: held across a compile).
        self._in_flight: dict[str, threading.Event] = {}
        self._sweep_stale_spills()

    # ------------------------------------------------------------- addressing

    @staticmethod
    def key_for(program_text: str, options: Optional[Mapping[str, object]] = None) -> str:
        """The content address of one (program text, compile options) pair."""
        return artifact_key(program_text, normalize_compile_options(options))

    def _spill_path(self, key: str) -> Optional[Path]:
        if self.root is None:
            return None
        return self.root / f"{key}.artifact"

    # ----------------------------------------------------------------- lookup

    def get(self, key: str) -> Optional[CompiledProgram]:
        """Fetch by key from memory, then disk; ``None`` on a full miss."""
        with self._lock:
            compiled = self._memory.get(key)
            if compiled is not None:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                return compiled
            compiled = self._load_spill(key)
            if compiled is not None:
                self.stats.disk_hits += 1
                self._admit(key, compiled, spill=False)
                return compiled
            self.stats.misses += 1
            return None

    def get_or_compile(
        self,
        program_text: str,
        options: Optional[Mapping[str, object]] = None,
        base_artifact: Optional[str] = None,
    ) -> tuple[str, CompiledProgram, str]:
        """Resolve (and, on a full miss, compile) one program version.

        Returns ``(key, compiled, source)`` where ``source`` is one of
        ``"memory"``, ``"disk"``, ``"warm"`` or ``"compiled"``.  On a full
        miss the store first looks for a nearest ancestor — ``base_artifact``
        if given (and resident), else the stored artifact sharing the most
        statements with the new program by per-function exact hash — and
        splices its emission journal instead of compiling cold
        (:func:`repro.bmc.splice.splice_compile`).  A successful splice is
        reported as ``"warm"`` and is byte-equivalent to the cold compile;
        a declined splice falls back to ``"compiled"`` silently.
        """
        normalized = normalize_compile_options(options)
        key = artifact_key(program_text, normalized)
        while True:
            with self._lock:
                memory_before = self.stats.memory_hits
                compiled = self.get(key)
                if compiled is not None:
                    source = (
                        "memory" if self.stats.memory_hits > memory_before else "disk"
                    )
                    return key, compiled, source
                pending = self._in_flight.get(key)
                if pending is None:
                    pending = threading.Event()
                    self._in_flight[key] = pending
                    owner = True
                else:
                    owner = False
            if not owner:
                # Another thread is compiling this exact key: wait for it,
                # then loop back to the (now hitting) lookup.
                pending.wait()
                continue
            try:
                with obs.span("store.compile", key=key[:12]) as compile_span:
                    compiled, warm_from = self._compile(
                        program_text, normalized, base_artifact
                    )
                    compile_span.set(warm=warm_from is not None)
                with self._lock:
                    self.stats.compiles += 1
                    if warm_from is not None:
                        self.stats.warm_compiles += 1
                    self._admit(key, compiled, spill=True)
                return key, compiled, "warm" if warm_from is not None else "compiled"
            finally:
                with self._lock:
                    self._in_flight.pop(key, None)
                pending.set()

    def serialized(self, key: str) -> Optional[bytes]:
        """The version-stamped artifact bytes (for shipping to a worker)."""
        compiled = self.get(key)
        if compiled is None:
            return None
        return dumps_artifact(compiled)

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    # ------------------------------------------------------- nearest ancestor

    def _peek(self, key: str) -> Optional[CompiledProgram]:
        """Resolve a key for internal use without touching hit/miss stats."""
        compiled = self._memory.get(key)
        if compiled is not None:
            self._memory.move_to_end(key)
            return compiled
        compiled = self._load_spill(key)
        if compiled is not None:
            self._admit(key, compiled, spill=False)
        return compiled

    def _pick_base(
        self,
        new_fingerprint,
        expected_options: dict,
        base_artifact: Optional[str],
    ) -> Optional[tuple[str, CompiledProgram]]:
        """The stored artifact to splice from, or ``None`` to compile cold.

        An explicit ``base_artifact`` hint wins when resident.  Otherwise
        candidates come from the per-function hash index, scored by
        :meth:`~repro.analysis.impact.ProgramFingerprint.shared_statements`
        — the artifact sharing the most statements with the new program
        leaves the least to re-encode.  Candidates compiled under different
        options are skipped (a splice between them would be declined).
        """
        with self._lock:
            if base_artifact is not None:
                compiled = self._peek(base_artifact)
                if compiled is not None and compiled.fingerprint is not None:
                    return base_artifact, compiled
                return None
            candidate_keys: set[str] = set()
            for fn_hash in new_fingerprint.function_hashes().values():
                candidate_keys.update(self._fn_index.get(fn_hash, ()))
            best: Optional[tuple[str, CompiledProgram]] = None
            best_score = 0
            for key in sorted(candidate_keys):  # deterministic tie-break
                compiled = self._peek(key)
                if compiled is None or compiled.fingerprint is None:
                    continue
                if dict(compiled.compile_options) != expected_options:
                    continue
                score = new_fingerprint.shared_statements(compiled.fingerprint)
                if score > best_score:
                    best, best_score = (key, compiled), score
            return best

    # ----------------------------------------------------------------- fill

    def _compile(
        self,
        program_text: str,
        normalized: dict,
        base_artifact: Optional[str] = None,
    ) -> tuple[CompiledProgram, Optional[str]]:
        """Compile one program version, warm if a usable ancestor is stored.

        Returns ``(compiled, spliced_from)`` where ``spliced_from`` is the
        base artifact key on a warm compile and ``None`` on a cold one.
        """
        from repro.lang.parser import ParseError
        from repro.lang.typecheck import TypeError_

        try:
            program = parse_program(program_text, name=normalized["name"])
            check_program(program)
        except (ParseError, TypeError_) as exc:
            raise CompileRejectedError((exc.to_diagnostic(),)) from exc
        checker_kwargs: dict[str, object] = {
            "unwind": normalized["unwind"],
            "group_statements": True,
            "hard_functions": tuple(normalized["hard_functions"]),
            "simplify": normalized["simplify"],
            "analysis_narrowing": normalized["analysis_narrowing"],
            "unwind_planning": normalized["unwind_planning"],
            "loop_iteration_groups": normalized["loop_iteration_groups"],
        }
        if normalized["width"] is not None:
            checker_kwargs["width"] = normalized["width"]
        compiled: Optional[CompiledProgram] = None
        warm_from: Optional[str] = None
        entry = normalized["entry"]
        # The splice mutates its checker's encoder state, so the cold
        # fallback below must build a fresh one.
        checker = BoundedModelChecker(program, **checker_kwargs)
        new_fingerprint = fingerprint_program(program)
        base = self._pick_base(
            new_fingerprint, checker.compile_options(entry), base_artifact
        )
        if base is not None:
            base_key, base_compiled = base
            outcome: dict = {}
            compiled = splice_compile(
                base_compiled,
                checker,
                entry=entry,
                base_key=base_key,
                new_fingerprint=new_fingerprint,
                outcome=outcome,
            )
            if compiled is not None:
                warm_from = base_key
            elif outcome.get("declined"):
                with self._lock:
                    self.stats.splice_declines += 1
                    if outcome.get("declined_early"):
                        self.stats.splice_declined_early += 1
        if compiled is None:
            checker = BoundedModelChecker(program, **checker_kwargs)
            compiled = checker.compile_program(entry=entry)
        if has_errors(compiled.diagnostics):
            raise CompileRejectedError(
                tuple(d for d in compiled.diagnostics if d.severity == ERROR)
            )
        return compiled, warm_from

    def _admit(self, key: str, compiled: CompiledProgram, spill: bool) -> None:
        self._memory[key] = compiled
        self._memory.move_to_end(key)
        self._index(key, compiled)
        if spill:
            self._write_spill(key, compiled)
        while len(self._memory) > self.max_memory_entries:
            evicted_key, _ = self._memory.popitem(last=False)
            self.stats.evictions += 1
            if self.root is None or not self._spill_path(evicted_key).exists():
                # Without a disk copy the artifact is unrecoverable, so it
                # can no longer serve as a splice base.
                self._unindex(evicted_key)

    def _index(self, key: str, compiled: CompiledProgram) -> None:
        if key in self._key_hashes or compiled.fingerprint is None:
            return
        hashes = frozenset(compiled.fingerprint.function_hashes().values())
        self._key_hashes[key] = hashes
        for fn_hash in hashes:
            self._fn_index.setdefault(fn_hash, set()).add(key)

    def _unindex(self, key: str) -> None:
        for fn_hash in self._key_hashes.pop(key, ()):
            keys = self._fn_index.get(fn_hash)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._fn_index[fn_hash]

    # ----------------------------------------------------------------- spill

    def _write_spill(self, key: str, compiled: CompiledProgram) -> None:
        path = self._spill_path(key)
        if path is None:
            return
        tmp = path.with_suffix(".tmp")
        try:
            tmp.write_bytes(dumps_artifact(compiled))
            tmp.replace(path)
            self.stats.spills += 1
        except OSError:
            # A read-only or full disk degrades to memory-only caching.
            tmp.unlink(missing_ok=True)

    def _load_spill(self, key: str) -> Optional[CompiledProgram]:
        path = self._spill_path(key)
        if path is None or not path.exists():
            return None
        try:
            return loads_artifact(path.read_bytes())
        except (ArtifactFormatError, OSError):
            # Truncated write, stale format version, or plain corruption:
            # drop the spill and let the caller recompile.
            path.unlink(missing_ok=True)
            self.stats.corrupt_recovered += 1
            return None

    def _sweep_stale_spills(self) -> None:
        """Delete spills written under an older artifact format at startup.

        A format bump (``ARTIFACT_FORMAT_VERSION``) invalidates every spill
        a previous process left behind; sweeping them eagerly — by peeking
        at the fixed-size header, without unpickling — turns what would be
        a per-request load-and-discard into one startup pass, and keeps
        stale files from lingering on disk when their keys are never asked
        for again.
        """
        if self.root is None:
            return
        for path in sorted(self.root.glob("*.artifact")):
            try:
                with path.open("rb") as handle:
                    header = handle.read(ARTIFACT_HEADER_BYTES)
            except OSError:
                continue
            version = peek_artifact_version(header)
            # Only positively identified old-format artifacts are swept; a
            # file without the magic could be anything, so it is left for
            # the per-request corrupt-recovery path to deal with.
            if version is not None and version != ARTIFACT_FORMAT_VERSION:
                path.unlink(missing_ok=True)
                self.stats.stale_swept += 1


class ResultCache:
    """Bounded LRU memoizing whole localization responses.

    Localization is deterministic given (artifact key, test, spec, session
    options), so the server can answer a repeated request from memory; the
    cached value is the exact wire payload, keeping responses byte-identical
    whether computed or replayed.  ``max_entries=0`` disables the cache.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[dict]:
        if self.max_entries <= 0:
            return None
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: str, value: dict) -> None:
        if self.max_entries <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def get_or_fill(self, key: str, compute: Callable[[], dict]) -> dict:
        cached = self.get(key)
        if cached is not None:
            return cached
        value = compute()
        self.put(key, value)
        return value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def as_dict(self) -> dict:
        with self._lock:
            entries = len(self._entries)
        total = self.hits + self.misses
        return {
            "entries": entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
        }
