"""The localization daemon: an asyncio front end over store + worker pool.

One :class:`LocalizationServer` listens on a unix socket, a TCP socket, or
both, speaking the length-prefixed JSON protocol of
:mod:`repro.serve.protocol`.  Requests flow store-first: ``compile`` and
the compile-on-demand of ``localize``/``localize_batch`` resolve through
the content-addressed :class:`~repro.serve.store.ArtifactStore` (so each
distinct program version compiles exactly once, whoever asks), repeated
localizations replay from the :class:`~repro.serve.store.ResultCache`, and
everything else is sharded over the warm-session
:class:`~repro.serve.workers.WorkerPool`.

Localization work is CPU-bound and runs on the pool's worker processes;
the event loop only parses frames and waits, so many clients can be
connected while batches run.  A malformed frame gets an error response
(when the stream is still writable) and costs that client its connection —
never the daemon.

:class:`ServerThread` runs the whole daemon inside a host process (tests,
benchmarks, notebook use) with the same code path as ``python -m
repro.serve``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Mapping, Optional

from repro import obs
from repro.lang.diagnostics import diagnostics_to_wire
from repro.serve import protocol
from repro.serve.store import (
    ArtifactStore,
    CompileRejectedError,
    ResultCache,
    normalize_compile_options,
)
from repro.serve.workers import Job, ServeShardError, WorkerPool

#: Session-level options accepted per request (never part of the artifact
#: key — they shape the MaxSAT run, not the compiled encoding).
SESSION_OPTION_DEFAULTS: dict[str, object] = {
    "strategy": "hitting-set",
    "max_candidates": 25,
    "hard_lines": (),
    "warm_start": True,
    "static_pruning": True,
}


def _split_options(options: Optional[Mapping[str, Any]]) -> tuple[dict, dict]:
    """Partition a request's options into compile-level and session-level."""
    compile_options: dict[str, Any] = {}
    session_options = dict(SESSION_OPTION_DEFAULTS)
    for name, value in (options or {}).items():
        if name in SESSION_OPTION_DEFAULTS:
            session_options[name] = value
        else:
            compile_options[name] = value
    session_options["hard_lines"] = sorted(
        int(line) for line in session_options["hard_lines"] or ()
    )
    return compile_options, session_options


class LocalizationServer:
    """The daemon: artifact store + result cache + worker pool + sockets."""

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        pool: Optional[WorkerPool] = None,
        workers: int = 2,
        max_sessions_per_worker: int = 8,
        result_cache_entries: int = 1024,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
    ) -> None:
        if max_frame_bytes < 1:
            raise ValueError("max_frame_bytes must be positive")
        #: Inbound frame-size bound: a client sending a larger (or garbage)
        #: length prefix gets a structured error and loses only its own
        #: connection.  Outbound responses keep the protocol-wide bound.
        self.max_frame_bytes = min(max_frame_bytes, protocol.MAX_FRAME_BYTES)
        self.store = store if store is not None else ArtifactStore()
        self.pool = pool if pool is not None else WorkerPool(
            workers=workers, max_sessions_per_worker=max_sessions_per_worker
        )
        self.result_cache = ResultCache(result_cache_entries)
        self.requests_served = 0
        self.localizations_served = 0
        self.protocol_errors = 0
        self.started_at = time.time()
        #: Windowed-delta state of the ``stats`` op: a monotonically
        #: increasing poll sequence number plus the counter values seen at
        #: the previous poll, so two consecutive polls yield rates without
        #: any client-side bookkeeping.  Mutated only inside the ``stats``
        #: handler, which runs on the event loop — naturally serialized.
        self._stats_seq = 0
        self._stats_prev: tuple[float, dict] = (time.monotonic(), {})
        self._servers: list[asyncio.AbstractServer] = []
        self._unix_path: Optional[Path] = None
        self._tcp_address: Optional[tuple[str, int]] = None
        self._shutdown = asyncio.Event()
        #: Localization batches run here so the event loop stays responsive;
        #: sized to the worker count because that is the real parallelism.
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, self.pool.num_workers),
            thread_name_prefix="repro-serve-request",
        )

    # -------------------------------------------------------------- lifecycle

    @property
    def tcp_address(self) -> Optional[tuple[str, int]]:
        """The bound (host, port) once started with TCP enabled."""
        return self._tcp_address

    @property
    def unix_path(self) -> Optional[Path]:
        return self._unix_path

    async def start(
        self,
        tcp: Optional[tuple[str, int]] = ("127.0.0.1", 0),
        unix_path: Optional[Path | str] = None,
    ) -> "LocalizationServer":
        """Bind the requested sockets (port 0 picks an ephemeral port)."""
        if tcp is None and unix_path is None:
            raise ValueError("need at least one of tcp or unix_path")
        self.pool.start()
        try:
            if tcp is not None:
                host, port = tcp
                server = await asyncio.start_server(self._handle_connection, host, port)
                self._servers.append(server)
                bound = server.sockets[0].getsockname()
                self._tcp_address = (bound[0], bound[1])
            if unix_path is not None:
                path = Path(unix_path)
                path.unlink(missing_ok=True)
                server = await asyncio.start_unix_server(
                    self._handle_connection, str(path)
                )
                self._servers.append(server)
                self._unix_path = path
        except Exception:
            # A failed bind (port in use, bad socket path) must not leak
            # the pre-forked workers or the request executor into the host.
            await self.aclose()
            raise
        return self

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` request (or :meth:`shutdown`) arrives."""
        await self._shutdown.wait()
        await self.aclose()

    def shutdown(self) -> None:
        self._shutdown.set()

    async def aclose(self) -> None:
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers = []
        if self._unix_path is not None:
            self._unix_path.unlink(missing_ok=True)
        self._executor.shutdown(wait=False)
        self.pool.stop()

    # ------------------------------------------------------------ connections

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await protocol.read_frame(
                        reader, max_bytes=self.max_frame_bytes
                    )
                except protocol.ProtocolError as exc:
                    # Malformed framing: tell the client if the stream is
                    # still writable, then drop the connection.  The daemon
                    # itself is unaffected.
                    self.protocol_errors += 1
                    with contextlib.suppress(Exception):
                        await protocol.write_frame(
                            writer,
                            {
                                "ok": False,
                                "error": f"protocol error: {exc}",
                                "error_kind": "protocol",
                            },
                        )
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                try:
                    await protocol.write_frame(writer, response)
                except protocol.ProtocolError as exc:
                    # The assembled response overflowed the frame bound
                    # (e.g. a gigantic batch): answer with a small error
                    # frame rather than silently dropping the connection.
                    self.protocol_errors += 1
                    await protocol.write_frame(
                        writer,
                        {"ok": False, "error": f"response too large to frame: {exc}"},
                    )
                if request.get("op") == "shutdown":
                    break
        except asyncio.CancelledError:
            # Loop teardown cancels connections parked in read_frame; the
            # client sees a clean close, the log stays quiet.
            pass
        finally:
            # CancelledError too: loop teardown cancels the handler again
            # while it awaits wait_closed, and letting that escape logs an
            # unhandled-exception callback on every shutdown.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, request: Mapping[str, Any]) -> dict:
        self.requests_served += 1
        op = request.get("op")
        handlers = {
            "compile": self._op_compile,
            "localize": self._op_localize,
            "localize_batch": self._op_localize_batch,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
            "shutdown": self._op_shutdown,
        }
        handler = handlers.get(op)
        if handler is None:
            return {"ok": False, "error": f"unknown op {op!r}"}
        # One trace per request, minted here (or adopted from the client's
        # optional ``trace_id`` field — only when well-formed: the id names
        # the export file, so an unchecked wire string is a path-injection
        # surface).  Explicitly finished, never bound to the event-loop
        # thread: interleaved awaits of concurrent requests would corrupt
        # any thread-local nesting.
        wire_trace_id = request.get(protocol.TRACE_FIELD)
        request_trace = obs.start_request_trace(
            f"serve.{op}",
            trace_id=wire_trace_id if obs.valid_trace_id(wire_trace_id) else None,
            op=op,
        )
        response: Optional[dict] = None
        try:
            try:
                response = await handler(request, request_trace.ctx)
            except CompileRejectedError as exc:
                # The program itself is bad (parse/type error, or the static
                # analyzer proved a hard error): a structured rejection, not a
                # worker traceback.
                response = {
                    "ok": False,
                    "error": str(exc),
                    "error_kind": "rejected",
                    "diagnostics": diagnostics_to_wire(exc.diagnostics),
                }
            except (protocol.ProtocolError, ValueError, KeyError, TypeError) as exc:
                response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            except ServeShardError as exc:
                response = {"ok": False, "error": str(exc)}
            except Exception as exc:  # noqa: BLE001 - the daemon must outlive any request
                response = {
                    "ok": False,
                    "error": f"internal error: {type(exc).__name__}: {exc}",
                }
        finally:
            # Must run even on CancelledError (client disconnect, server
            # shutdown): finish() unregisters the trace's collector from
            # the process-global registry — skipping it leaks one entry
            # per cancelled request for the life of the daemon.
            if response is not None:
                request_trace.set(ok=bool(response.get("ok")))
            request_trace.finish()
        response[protocol.TRACE_FIELD] = request_trace.trace_id
        if request_trace.export_path is not None:
            response["trace_path"] = request_trace.export_path
        registry = obs.REGISTRY
        registry.counter(
            "repro_serve_requests", "Requests dispatched", labels={"op": str(op)}
        ).inc()
        if not response.get("ok"):
            registry.counter(
                "repro_serve_errors", "Requests answered with ok=false"
            ).inc()
        registry.histogram(
            "repro_serve_request_seconds", "Request latency at the frontend"
        ).observe(request_trace.duration)
        return response

    # ---------------------------------------------------------------- compile

    def _resolve_artifact(
        self, request: Mapping[str, Any], compile_options: Mapping[str, Any]
    ) -> tuple[str, "object"]:
        """Resolve a request to its artifact, compiling on a full miss.

        Accepts ``program`` (source text, content-addressed) or ``artifact``
        (a key from an earlier ``compile``).  Returns ``(key, compiled)`` —
        the live object, so batch jobs keep a strong reference and cannot
        lose their artifact to an LRU eviction racing the batch (a
        memory-only store admits later entries of the same batch, which may
        evict earlier ones before their shards are serialized).
        """
        if "program" in request:
            base = request.get("base_artifact")
            key, compiled, _ = self.store.get_or_compile(
                str(request["program"]),
                compile_options,
                base_artifact=str(base) if base is not None else None,
            )
            return key, compiled
        key = request.get("artifact")
        if not isinstance(key, str):
            raise ValueError("request needs either 'program' text or an 'artifact' key")
        compiled = self.store.get(key)
        if compiled is None:
            raise KeyError(
                f"unknown artifact {key[:12]}…; compile it first or send program text"
            )
        return key, compiled

    async def _op_compile(
        self, request: Mapping[str, Any], trace_ctx: Optional[tuple] = None
    ) -> dict:
        if "program" not in request:
            raise ValueError("compile needs 'program' source text")
        compile_options, _ = _split_options(request.get("options"))
        base = request.get("base_artifact")
        loop = asyncio.get_running_loop()

        def compile_bound():
            with obs.bind_trace(trace_ctx):
                return self.store.get_or_compile(
                    str(request["program"]),
                    compile_options,
                    base_artifact=str(base) if base is not None else None,
                )

        key, compiled, source = await loop.run_in_executor(
            self._executor, compile_bound
        )
        return {
            "ok": True,
            "artifact": key,
            "cached": source in ("memory", "disk"),
            "source": source,
            "spliced_from": compiled.spliced_from,
            "impact_fraction": compiled.impact_fraction,
            "program_name": compiled.program_name,
            "num_vars": compiled.num_vars,
            "num_clauses": compiled.num_clauses,
            "signature": compiled.signature,
            "diagnostics": diagnostics_to_wire(compiled.diagnostics),
            "pruned_lines": list(compiled.pruned_lines),
            "narrowed_vars": compiled.narrowed_vars,
        }

    # --------------------------------------------------------------- localize

    def _result_key(
        self, artifact: str, session_options: Mapping[str, Any], test: Mapping[str, Any]
    ) -> str:
        return json.dumps(
            {
                "artifact": artifact,
                "options": dict(session_options),
                "inputs": test.get("inputs"),
                "spec": test.get("spec"),
                "nondet": list(test.get("nondet", ())),
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def _decode_test(self, test: Mapping[str, Any]) -> tuple:
        inputs = protocol.test_from_wire(test["inputs"])
        spec = protocol.spec_from_wire(test["spec"])
        nondet = tuple(int(v) for v in test.get("nondet", ()))
        return inputs, spec, nondet

    async def _op_localize(
        self, request: Mapping[str, Any], trace_ctx: Optional[tuple] = None
    ) -> dict:
        entry = {
            k: request[k]
            for k in ("program", "artifact", "options")
            if k in request
        }
        entry["tests"] = [
            {
                "inputs": request["test"],
                "spec": request["spec"],
                "nondet": request.get("nondet", []),
            }
        ]
        batch = await self._run_batch([entry], trace_ctx)
        result = batch[0]
        return {
            "ok": True,
            "artifact": result["artifact"],
            "report": result["reports"][0],
        }

    async def _op_localize_batch(
        self, request: Mapping[str, Any], trace_ctx: Optional[tuple] = None
    ) -> dict:
        entries = request.get("requests")
        if not isinstance(entries, list) or not entries:
            raise ValueError("localize_batch needs a non-empty 'requests' list")
        results = await self._run_batch(entries, trace_ctx)
        return {"ok": True, "results": results}

    async def _run_batch(
        self, entries: list, trace_ctx: Optional[tuple] = None
    ) -> list[dict]:
        """Resolve artifacts, split cached/uncached, shard the rest.

        Tests are batched by version: all uncached tests that target one
        artifact form one :class:`~repro.serve.workers.Job` regardless of
        which request entry they came from, so the scheduler sees the
        "many tests, few programs" shape directly.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self._run_batch_sync, entries, trace_ctx
        )

    def _run_batch_sync(
        self, entries: list, trace_ctx: Optional[tuple] = None
    ) -> list[dict]:
        # One request per executor thread at a time, so binding the
        # request's trace context thread-locally here is safe — compiles
        # and job dispatch below record under the request's root span.
        with obs.bind_trace(trace_ctx):
            return self._run_batch_traced(entries, trace_ctx)

    def _run_batch_traced(
        self, entries: list, trace_ctx: Optional[tuple]
    ) -> list[dict]:
        # Per entry: resolve artifact + options, decode tests.
        resolved: list[dict] = []
        jobs: dict[tuple, Job] = {}
        wire_reports: dict[tuple[int, int], dict] = {}
        for entry_index, entry in enumerate(entries):
            compile_options, session_options = _split_options(entry.get("options"))
            artifact, compiled = self._resolve_artifact(entry, compile_options)
            tests = entry.get("tests")
            if not isinstance(tests, list) or not tests:
                raise ValueError("each batch entry needs a non-empty 'tests' list")
            resolved.append(
                {"artifact": artifact, "session_options": session_options, "tests": tests}
            )
            job_key = (
                artifact,
                json.dumps(session_options, sort_keys=True, separators=(",", ":")),
            )
            for test_index, test in enumerate(tests):
                request_id = (entry_index, test_index)
                cache_key = self._result_key(artifact, session_options, test)
                cached = self.result_cache.get(cache_key)
                if cached is not None:
                    wire_reports[request_id] = cached
                    continue
                inputs, spec, nondet = self._decode_test(test)
                job = jobs.get(job_key)
                if job is None:
                    job = Job(
                        artifact_key=artifact,
                        artifact_bytes=_serializer(compiled),
                        session_options=session_options,
                        tests=[],
                        trace_ctx=trace_ctx,
                    )
                    jobs[job_key] = job
                job.tests.append((request_id, inputs, spec, nondet))
        if jobs:
            reports = self.pool.run_jobs(list(jobs.values()))
            for request_id, report in reports.items():
                wire = protocol.report_to_wire(report)
                entry_index, test_index = request_id
                info = resolved[entry_index]
                cache_key = self._result_key(
                    info["artifact"],
                    info["session_options"],
                    info["tests"][test_index],
                )
                self.result_cache.put(cache_key, wire)
                wire_reports[request_id] = wire
        # Assemble per-entry responses in input order; ranked lines are
        # recomputed from the wire reports so cached and fresh runs merge
        # identically.
        results: list[dict] = []
        for entry_index, info in enumerate(resolved):
            entry_reports = [
                wire_reports[(entry_index, test_index)]
                for test_index in range(len(info["tests"]))
            ]
            self.localizations_served += len(entry_reports)
            results.append(
                {
                    "artifact": info["artifact"],
                    "reports": entry_reports,
                    "ranked_lines": _rank_wire_reports(entry_reports),
                }
            )
        return results

    # ------------------------------------------------------------------ stats

    async def _op_stats(
        self, request: Mapping[str, Any], trace_ctx: Optional[tuple] = None
    ) -> dict:
        from repro.encoding import encode_backend

        response = {
            "ok": True,
            "server": {
                "requests_served": self.requests_served,
                "localizations_served": self.localizations_served,
                "protocol_errors": self.protocol_errors,
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "encode_backend": encode_backend(),
            },
            "store": self.store.stats.as_dict(),
            "result_cache": self.result_cache.as_dict(),
            "pool": self.pool.stats.as_dict(),
        }
        # Windowed deltas: cumulative counters alone force every client to
        # keep its own previous sample to compute a rate.  Each poll gets a
        # monotonic ``snapshot_seq`` and the counter deltas since the
        # previous poll (the first window spans from server start), so two
        # consecutive polls — by whoever — always describe a closed window.
        now = time.monotonic()
        current = _flatten_counters(response)
        prev_time, prev_counters = self._stats_prev
        self._stats_seq += 1
        self._stats_prev = (now, current)
        response["snapshot_seq"] = self._stats_seq
        response["window"] = {
            "seconds": round(now - prev_time, 6),
            "deltas": {
                key: value - prev_counters.get(key, 0)
                for key, value in current.items()
            },
        }
        return response

    async def _op_metrics(
        self, request: Mapping[str, Any], trace_ctx: Optional[tuple] = None
    ) -> dict:
        """The process metrics in Prometheus text exposition format.

        The span-fed histograms and solver counters accumulate in
        :data:`repro.obs.REGISTRY` as requests run; the store/cache/pool
        snapshot counters are folded in as gauges at scrape time, so one
        scrape sees every layer under one naming scheme.
        """
        registry = obs.REGISTRY
        stats_sources = {
            "store": self.store.stats.as_dict(),
            "result_cache": self.result_cache.as_dict(),
            "pool": self.pool.stats.as_dict(),
        }
        for section, values in stats_sources.items():
            for name, value in values.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    registry.gauge(
                        f"repro_{section}_{name}",
                        f"serve {section} counter {name!r}",
                    ).set(value)
        registry.gauge(
            "repro_serve_uptime_seconds", "Seconds since daemon start"
        ).set(round(time.time() - self.started_at, 3))
        return {
            "ok": True,
            "metrics": registry.render_prometheus(),
            "snapshot": registry.snapshot(),
        }

    async def _op_shutdown(
        self, request: Mapping[str, Any], trace_ctx: Optional[tuple] = None
    ) -> dict:
        self.shutdown()
        return {"ok": True, "stopping": True}


def _flatten_counters(stats_response: Mapping[str, Any]) -> dict[str, float]:
    """Flatten a stats response's numeric counters to dotted keys.

    Only counter-like numbers participate in the window deltas; gauges
    that are not cumulative (``uptime_seconds``, the per-worker report
    dicts) are excluded.
    """
    flat: dict[str, float] = {}
    for section in ("server", "store", "result_cache", "pool"):
        values = stats_response.get(section)
        if not isinstance(values, Mapping):
            continue
        for name, value in values.items():
            if name == "uptime_seconds" or isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                flat[f"{section}.{name}"] = value
    return flat


def _serializer(compiled):
    """A lazy artifact-bytes supplier closing over the live object.

    Serialization happens only when a worker actually needs the bytes
    (first shard for that key, or after a worker-side eviction).
    """
    from repro.bmc.compiled import dumps_artifact

    return lambda: dumps_artifact(compiled)


def _rank_wire_reports(wire_reports: list[dict]) -> list[list[int]]:
    """Section 4.3 ranking over wire reports (mirrors ``merge_reports``)."""
    counts: dict[int, int] = {}
    for report in wire_reports:
        for line in report["lines"]:
            counts[line] = counts.get(line, 0) + 1
    return [
        [line, count]
        for line, count in sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    ]


class ServerThread:
    """Run a :class:`LocalizationServer` on a background thread.

    The worker pool is pre-forked on the calling thread *before* the
    asyncio loop starts, keeping process creation away from a threaded
    parent.  ``start()`` blocks until the sockets are bound and returns
    ``self``; ``stop()`` shuts the daemon down and joins the thread.
    """

    def __init__(
        self,
        tcp: Optional[tuple[str, int]] = ("127.0.0.1", 0),
        unix_path: Optional[Path | str] = None,
        **server_kwargs,
    ) -> None:
        self.server = LocalizationServer(**server_kwargs)
        self._tcp = tcp
        self._unix_path = unix_path
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    @property
    def tcp_address(self) -> Optional[tuple[str, int]]:
        return self.server.tcp_address

    @property
    def unix_path(self) -> Optional[Path]:
        return self.server.unix_path

    def start(self) -> "ServerThread":
        self.server.pool.start()

        def run() -> None:
            async def main() -> None:
                try:
                    await self.server.start(tcp=self._tcp, unix_path=self._unix_path)
                except BaseException as exc:  # noqa: BLE001 - reported to start()
                    self._startup_error = exc
                    self._ready.set()
                    return
                self._loop = asyncio.get_running_loop()
                self._ready.set()
                await self.server.serve_until_shutdown()

            asyncio.run(main())

        self._thread = threading.Thread(
            target=run, name="repro-serve-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("server did not start within 30s")
        return self

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.server.shutdown)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
