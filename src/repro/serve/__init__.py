"""`repro.serve` — the localization daemon and its serving substrate.

The paper's protocol is many-requests-against-few-programs: BugAssist
reruns MaxSAT localization per failing test and per program version, while
the whole-program encodings those requests run against number only a
handful.  This package turns the compile-once/localize-many session API
into a long-running service built from four pieces:

* :class:`~repro.serve.store.ArtifactStore` — a content-addressed cache of
  :class:`~repro.bmc.compiled.CompiledProgram` artifacts keyed by a stable
  hash of program text + encoding options, with an in-memory LRU, on-disk
  pickle spill and corrupt-spill recovery, so every distinct program
  version is compiled exactly once across all clients;
* :mod:`~repro.serve.protocol` — a length-prefixed JSON wire protocol
  (``compile`` / ``localize`` / ``localize_batch`` / ``stats`` /
  ``metrics`` / ``shutdown``, with an optional per-request ``trace_id``)
  shared by the asyncio server and the blocking client;
* :class:`~repro.serve.workers.WorkerPool` — persistent worker processes,
  each holding an LRU of warm :class:`~repro.core.session.LocalizationSession`\\ s
  keyed by artifact hash, behind a scheduler that batches tests by program
  version, shards them with artifact affinity, and retries a shard once on
  worker death;
* :class:`~repro.serve.server.LocalizationServer` (asyncio, unix socket +
  TCP) and :class:`~repro.serve.client.Client` / ``python -m repro.serve``
  — the daemon and its programmatic/CLI front ends.

Quick use::

    # terminal 1
    $ python -m repro.serve --tcp 127.0.0.1:7711 --workers 4

    # terminal 2 (or any number of clients)
    from repro.serve import Client
    with Client(tcp=("127.0.0.1", 7711)) as client:
        reply = client.localize(program=source, test=[3, 3, 7],
                                spec={"kind": "return-value", "expected": [-1]})
        print(reply["report"]["candidates"])
"""

from repro.serve.client import Client, ServeError
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    TRACE_FIELD,
    ProtocolError,
    canonical_report_bytes,
    report_to_wire,
    spec_from_wire,
    spec_to_wire,
)
from repro.serve.server import LocalizationServer, ServerThread
from repro.serve.store import ArtifactStore, ResultCache, StoreStats
from repro.serve.workers import ServeShardError, WorkerPool

__all__ = [
    "ArtifactStore",
    "Client",
    "LocalizationServer",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ResultCache",
    "ServeError",
    "ServeShardError",
    "ServerThread",
    "StoreStats",
    "TRACE_FIELD",
    "WorkerPool",
    "canonical_report_bytes",
    "report_to_wire",
    "spec_from_wire",
    "spec_to_wire",
]
