"""The daemon's wire protocol: length-prefixed JSON frames.

A frame is a 4-byte big-endian unsigned length followed by that many bytes
of UTF-8 JSON.  Requests and responses are JSON objects; every request
carries an ``"op"`` (``compile`` / ``localize`` / ``localize_batch`` /
``stats`` / ``metrics`` / ``shutdown``) and every response an ``"ok"``
boolean.  A request may carry an optional ``"trace_id"``
(:data:`TRACE_FIELD`) naming the distributed trace the daemon should join
— a router that already opened a trace passes its id so the daemon-side
spans stitch under it; otherwise the daemon mints one.  Every response
echoes the ``trace_id`` that was used (plus, with ``REPRO_TRACE=export``,
the ``trace_path`` the Chrome trace-event file was written to).  The
framing functions validate hard before allocating: a length of zero, a
length above :data:`MAX_FRAME_BYTES` (a garbage header read as a huge
integer), truncated bodies and non-JSON bodies all raise
:class:`ProtocolError`, which the server answers (when it still can) with
an error frame before dropping the connection — never by dying.

The module also owns the wire codecs for domain values (specifications,
tests, localization reports).  :func:`canonical_report_bytes` defines the
*identity* of a report — everything user-facing (candidates, lines, costs,
inputs, spec, trace sizes, CoMSS count), excluding run-dependent
solver-effort counters and wall time — which is what "the daemon returns
the same answer as an in-process session" means, byte for byte.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Mapping, Optional, Sequence

from repro.core.report import LocalizationReport, RankedLocalization
from repro.spec import Specification

#: Default upper bound on one frame.  Reports and batched requests are
#: small; the largest legitimate payloads are program sources (kilobytes).
#: Anything bigger is a framing error or abuse.  Servers can lower the
#: *inbound* bound per instance (``LocalizationServer(max_frame_bytes=...)``)
#: without affecting what they are allowed to send back.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Optional request field carrying the caller's distributed trace id; the
#: response always echoes the id the daemon used (supplied or minted).
TRACE_FIELD = "trace_id"

_HEADER = struct.Struct("!I")


class ProtocolError(Exception):
    """A malformed frame (bad length, truncated body, invalid JSON)."""


# ------------------------------------------------------------------ framing


def pack_frame(payload: Mapping[str, Any]) -> bytes:
    """Encode one JSON object as a length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


def frame_length(header: bytes, max_bytes: int = MAX_FRAME_BYTES) -> int:
    """Validate and decode a frame header against a frame-size bound."""
    if len(header) != _HEADER.size:
        raise ProtocolError(f"short frame header ({len(header)} bytes)")
    (length,) = _HEADER.unpack(header)
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > max_bytes:
        raise ProtocolError(f"frame of {length} bytes exceeds {max_bytes}")
    return length


def decode_body(body: bytes) -> dict:
    """Parse a frame body into a JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("frame body must be a JSON object")
    return payload


async def read_frame(reader, max_bytes: int = MAX_FRAME_BYTES) -> Optional[dict]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    ``max_bytes`` bounds the frame *before* the body is allocated, so an
    adversarial or garbage length prefix can never balloon memory.
    """
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    length = frame_length(header, max_bytes=max_bytes)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_body(body)


async def write_frame(writer, payload: Mapping[str, Any]) -> None:
    """Write one frame to an asyncio stream and drain."""
    writer.write(pack_frame(payload))
    await writer.drain()


def send_frame(sock: socket.socket, payload: Mapping[str, Any]) -> None:
    """Blocking-socket counterpart of :func:`write_frame` (client side)."""
    sock.sendall(pack_frame(payload))


def recv_frame(sock: socket.socket, max_bytes: int = MAX_FRAME_BYTES) -> Optional[dict]:
    """Blocking-socket counterpart of :func:`read_frame`; ``None`` on EOF."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    length = frame_length(header, max_bytes=max_bytes)
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_body(body)


def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on EOF before the first byte."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError("connection closed mid-read")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ------------------------------------------------------------- domain codecs


def spec_to_wire(spec: Specification) -> dict:
    return {"kind": spec.kind, "expected": list(spec.expected)}


def spec_from_wire(value: Mapping[str, Any]) -> Specification:
    kind = value.get("kind")
    if kind not in ("assertion", "golden-output", "return-value"):
        raise ProtocolError(f"unknown specification kind {kind!r}")
    expected = tuple(int(v) for v in value.get("expected", ()))
    return Specification(kind=kind, expected=expected)


def test_from_wire(value: Any) -> Sequence[int] | dict[str, int]:
    """Decode a test case: a list of ints or a name→value object."""
    if isinstance(value, dict):
        return {str(name): int(v) for name, v in value.items()}
    if isinstance(value, list):
        return [int(v) for v in value]
    raise ProtocolError(f"test inputs must be a list or object, got {type(value).__name__}")


def report_to_wire(report: LocalizationReport) -> dict:
    """Full JSON view of one localization report (effort counters included)."""
    return {
        "program_name": report.program_name,
        "test_inputs": dict(report.test_inputs),
        "specification": report.specification,
        "candidates": [
            {
                "lines": list(candidate.lines),
                "cost": candidate.cost,
                "description": candidate.describe(),
            }
            for candidate in report.candidates
        ],
        "lines": list(report.lines),
        "trace_assignments": report.trace_assignments,
        "trace_variables": report.trace_variables,
        "trace_clauses": report.trace_clauses,
        "maxsat_calls": report.maxsat_calls,
        "unwind_truncated": report.unwind_truncated,
        "sat_calls": report.sat_calls,
        "propagations": report.propagations,
        "conflicts": report.conflicts,
        "time_seconds": report.time_seconds,
    }


#: Wire fields that depend on *how hard* the solver worked rather than on
#: what the localization means; excluded from the canonical identity.
EFFORT_FIELDS = ("sat_calls", "propagations", "conflicts", "time_seconds")


def canonical_report_wire(report_wire: Mapping[str, Any]) -> dict:
    """Strip run-dependent effort fields from a wire report."""
    return {k: v for k, v in report_wire.items() if k not in EFFORT_FIELDS}


def canonical_report_bytes(report: LocalizationReport | Mapping[str, Any]) -> bytes:
    """The byte-level identity of a report.

    Accepts a :class:`LocalizationReport` or its wire dict and produces
    canonical JSON (sorted keys, tight separators) over every user-facing
    field.  Two localizations of the same test against the same artifact
    compare equal here whether they ran in-process, in a cold worker, or
    were replayed from the result cache.
    """
    wire = report_to_wire(report) if isinstance(report, LocalizationReport) else dict(report)
    return json.dumps(
        canonical_report_wire(wire), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def ranked_to_wire(ranked: RankedLocalization) -> dict:
    return {
        "program_name": ranked.program_name,
        "ranked_lines": [[line, count] for line, count in ranked.ranked_lines],
        "runs": [report_to_wire(run) for run in ranked.runs],
    }
