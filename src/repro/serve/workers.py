"""The daemon's warm-session worker pool and its scheduler.

Each worker is a persistent OS process holding an LRU of warm
:class:`~repro.core.session.LocalizationSession`\\ s keyed by artifact hash
(plus the session options), so a request against a version the worker has
seen before pays neither a compile nor an engine load — only the per-test
retractable layer.  Sessions are :meth:`~repro.core.session.LocalizationSession.pin`\\ ned
while a shard runs against them, so the eviction sweep can never close a
session mid-request.

The scheduler (:meth:`WorkerPool.run_jobs`) batches tests by program
version (one job per artifact), shards each job's tests, and places shards
with *artifact affinity*: a shard goes to a worker that already holds the
artifact when one exists, falling back to the least-loaded worker.
Artifact bytes ride along only on the first shard a worker sees for that
key; a worker that evicted the artifact in the meantime answers
``need-artifact`` and the shard is resent with bytes.  A shard whose
worker dies (crash, OOM-kill) is retried exactly once on a freshly
restarted worker before :class:`ServeShardError` reaches the caller —
mirroring the retry contract of
:meth:`LocalizationSession.localize_batch(executor="process")
<repro.core.session.LocalizationSession.localize_batch>`.
"""

from __future__ import annotations

import multiprocessing
import threading
import traceback
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro import obs
from repro.core.report import LocalizationReport

#: A single localization inside a shard:
#: (request id, test inputs, Specification, nondet values).
ShardTest = tuple[object, object, object, tuple]


class ServeShardError(RuntimeError):
    """A shard failed on a worker (and once more on its retry)."""


@dataclass
class Job:
    """All tests of one batch that target one artifact (one program version)."""

    artifact_key: str
    #: Lazily fetches the serialized artifact when a worker needs it.
    artifact_bytes: Callable[[], bytes]
    session_options: dict
    tests: list[ShardTest]
    #: The request's forwarded ``(trace_id, parent_span_id)``; rides every
    #: shard message so worker-side spans stitch into the request's trace.
    #: ``None`` when tracing is off.
    trace_ctx: Optional[tuple] = None


@dataclass
class _Shard:
    job: Job
    tests: list[ShardTest]


@dataclass
class PoolStats:
    shards_dispatched: int = 0
    shard_retries: int = 0
    worker_restarts: int = 0
    artifact_resends: int = 0
    localizations: int = 0
    worker_reports: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "shards_dispatched": self.shards_dispatched,
            "shard_retries": self.shard_retries,
            "worker_restarts": self.worker_restarts,
            "artifact_resends": self.artifact_resends,
            "localizations": self.localizations,
            "workers": dict(self.worker_reports),
        }


class _WorkerHandle:
    """Parent-side view of one worker process."""

    def __init__(self, index: int, context, max_sessions: int) -> None:
        self.index = index
        self._context = context
        self._max_sessions = max_sessions
        self.lock = threading.Lock()
        #: Artifact keys this worker is believed to hold (advisory: the
        #: worker may have evicted one, in which case it asks again).
        self.artifacts: set[str] = set()
        self.assigned = 0
        self.process: Optional[multiprocessing.Process] = None
        self.conn = None
        self.spawn()

    def spawn(self, context=None) -> None:
        """(Re)create the worker process.

        ``context`` overrides the pool's start method for this spawn: the
        initial pre-fork happens before any server thread exists, but a
        *respawn* after a worker death runs inside a heavily threaded
        daemon, where forking risks inheriting a lock held by another
        thread — restarts therefore pass the "spawn" context (a clean
        interpreter, slower but fork-safe).
        """
        context = context or self._context
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_worker_main,
            args=(child_conn, self._max_sessions),
            daemon=True,
            name=f"repro-serve-worker-{self.index}",
        )
        process.start()
        child_conn.close()
        self.process = process
        self.conn = parent_conn
        self.artifacts = set()

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def kill(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5)
        if self.conn is not None:
            # Keep the closed connection object: a dispatch racing the kill
            # then fails with OSError ("handle is closed"), which is exactly
            # the dead-worker signal the retry path handles.
            self.conn.close()

    def stop(self) -> None:
        try:
            if self.conn is not None:
                self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        if self.process is not None:
            self.process.join(timeout=5)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=5)
        if self.conn is not None:
            self.conn.close()
            self.conn = None


class WorkerPool:
    """Persistent worker processes behind a version-batching scheduler."""

    def __init__(
        self,
        workers: int = 2,
        max_sessions_per_worker: int = 8,
        max_tests_per_shard: int = 8,
        start_method: str = "fork",
        shard_timeout: float = 900.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.num_workers = workers
        self.max_sessions_per_worker = max_sessions_per_worker
        self.max_tests_per_shard = max_tests_per_shard
        #: Seconds a shard may run before its worker is declared wedged and
        #: killed (the shard then gets its one retry).  Generous — Table 3
        #: sized localizations take minutes — but finite, so a hung worker
        #: can never hold its dispatch thread and lock forever.
        self.shard_timeout = shard_timeout
        self.stats = PoolStats()
        self._context = multiprocessing.get_context(start_method)
        #: Respawns after a worker death use a clean interpreter (see
        #: :meth:`_WorkerHandle.spawn`).
        self._respawn_context = multiprocessing.get_context("spawn")
        self._workers: list[_WorkerHandle] = []
        self._lock = threading.Lock()
        self._started = False

    # -------------------------------------------------------------- lifecycle

    def start(self) -> "WorkerPool":
        """Pre-fork every worker (before any server thread/loop exists)."""
        with self._lock:
            if not self._started:
                self._workers = [
                    _WorkerHandle(index, self._context, self.max_sessions_per_worker)
                    for index in range(self.num_workers)
                ]
                self._started = True
        return self

    def stop(self) -> None:
        with self._lock:
            for worker in self._workers:
                worker.stop()
            self._workers = []
            self._started = False

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------- scheduling

    def run_jobs(self, jobs: Sequence[Job]) -> dict[object, LocalizationReport]:
        """Run every test of every job; returns reports by request id.

        Tests arrive pre-batched by version (one :class:`Job` per artifact).
        Each job is split into shards of at most ``max_tests_per_shard``
        tests; the first shard of a job lands on the job's affinity worker
        (one already holding the artifact, else the least-loaded), extra
        shards spill onto other workers so a single hot version still uses
        the whole pool.
        """
        if not self._started:
            self.start()
        shards = self._make_shards(jobs)
        if not shards:
            return {}
        assignments = self._assign(shards)
        results: dict[object, LocalizationReport] = {}
        errors: list[BaseException] = []
        result_lock = threading.Lock()

        def run_worker_queue(worker: _WorkerHandle, queue: list[_Shard]) -> None:
            for shard in queue:
                try:
                    shard_results = self._execute_shard(worker, shard)
                except Exception as exc:  # noqa: BLE001 - collected below
                    with result_lock:
                        errors.append(exc)
                    return
                with result_lock:
                    results.update(shard_results)

        with ThreadPoolExecutor(
            max_workers=max(1, len(assignments)),
            thread_name_prefix="repro-serve-dispatch",
        ) as dispatcher:
            futures = [
                dispatcher.submit(run_worker_queue, worker, queue)
                for worker, queue in assignments.items()
            ]
            for future in futures:
                future.result()
        if errors:
            raise errors[0]
        self.stats.localizations += len(results)
        return results

    def _make_shards(self, jobs: Sequence[Job]) -> list[_Shard]:
        """Chunk each job's tests into shards of at most ``max_tests_per_shard``.

        The bound is honoured regardless of worker count: a shard is the
        unit of retry and of the wedged-worker watchdog, so it must stay
        small even when one giant job could in principle be split across
        exactly ``num_workers`` pieces.  Spreading shards over workers is
        the assignment step's problem, not the chunking step's.
        """
        shards: list[_Shard] = []
        per_shard = max(1, self.max_tests_per_shard)
        for job in jobs:
            tests = list(job.tests)
            for start in range(0, len(tests), per_shard):
                shards.append(_Shard(job=job, tests=tests[start : start + per_shard]))
        return shards

    def _assign(self, shards: list[_Shard]) -> dict[_WorkerHandle, list[_Shard]]:
        with self._lock:
            workers = list(self._workers)
        load: dict[_WorkerHandle, int] = {worker: 0 for worker in workers}
        assignments: dict[_WorkerHandle, list[_Shard]] = {}
        seen_key: dict[str, set[_WorkerHandle]] = {}
        for shard in shards:
            key = shard.job.artifact_key
            used = seen_key.setdefault(key, set())
            candidates = [w for w in workers if key in w.artifacts and w not in used]
            if not candidates:
                candidates = [w for w in workers if w not in used] or workers
            worker = min(candidates, key=lambda w: (load[w], w.index))
            used.add(worker)
            load[worker] += len(shard.tests)
            assignments.setdefault(worker, []).append(shard)
        return assignments

    # -------------------------------------------------------------- execution

    def _execute_shard(
        self, worker: _WorkerHandle, shard: _Shard, retried: bool = False
    ) -> dict[object, LocalizationReport]:
        self.stats.shards_dispatched += 1
        key = shard.job.artifact_key
        # Dispatcher threads interleave shards of different requests, so the
        # span is attached by explicit context (never thread-local); its own
        # id becomes the parent of the worker-side spans.
        with obs.attached_span(
            shard.job.trace_ctx,
            "serve.shard",
            worker=worker.index,
            artifact=key[:12],
            tests=len(shard.tests),
        ) as dispatch_span:
            worker_ctx = dispatch_span.ctx or shard.job.trace_ctx
            try:
                with worker.lock:
                    if worker.conn is None or worker.conn.closed:
                        raise BrokenPipeError("worker connection is closed")
                    include_bytes = key not in worker.artifacts
                    blob = shard.job.artifact_bytes() if include_bytes else None
                    worker.conn.send(
                        (
                            "shard",
                            key,
                            blob,
                            shard.job.session_options,
                            shard.tests,
                            worker_ctx,
                        )
                    )
                    reply = self._recv_reply(worker)
                    if reply[0] == "need-artifact":
                        # The worker evicted the artifact since we last sent it.
                        self.stats.artifact_resends += 1
                        worker.conn.send(
                            (
                                "shard",
                                key,
                                shard.job.artifact_bytes(),
                                shard.job.session_options,
                                shard.tests,
                                worker_ctx,
                            )
                        )
                        reply = self._recv_reply(worker)
            except (BrokenPipeError, EOFError, OSError) as exc:
                return self._retry_dead_worker(worker, shard, retried, exc)
            if reply[0] == "error":
                _, label, detail = reply
                raise ServeShardError(
                    f"worker {worker.index} failed localizing {label}: {detail}"
                )
            _, shard_results, worker_report, worker_spans = reply
            if shard.job.trace_ctx is not None:
                obs.merge_spans(shard.job.trace_ctx[0], worker_spans)
        worker.artifacts.add(key)
        self.stats.worker_reports[worker.index] = worker_report
        return dict(shard_results)

    def _retry_dead_worker(
        self,
        worker: _WorkerHandle,
        shard: _Shard,
        retried: bool,
        cause: BaseException,
    ) -> dict[object, LocalizationReport]:
        if retried:
            raise ServeShardError(
                f"worker died twice running a shard of "
                f"{len(shard.tests)} test(s) for artifact "
                f"{shard.job.artifact_key[:12]}…: {cause}"
            ) from cause
        with worker.lock:
            worker.kill()
            worker.spawn(self._respawn_context)
        self.stats.worker_restarts += 1
        self.stats.shard_retries += 1
        return self._execute_shard(worker, shard, retried=True)

    def _recv_reply(self, worker: _WorkerHandle):
        """Receive a shard reply with the wedged-worker watchdog applied.

        A worker that neither answers nor dies within ``shard_timeout``
        (runaway solver, deadlocked child) is indistinguishable from a dead
        one for scheduling purposes; the TimeoutError routes it into the
        same kill-respawn-retry path.
        """
        if not worker.conn.poll(self.shard_timeout):
            raise TimeoutError(
                f"worker {worker.index} gave no reply within {self.shard_timeout}s"
            )
        return worker.conn.recv()

    # ------------------------------------------------------------- inspection

    def worker_pids(self) -> list[int]:
        with self._lock:
            return [w.process.pid for w in self._workers if w.process is not None]

    def kill_worker(self, index: int = 0) -> None:
        """Hard-kill one worker (chaos hook for tests and drills)."""
        with self._lock:
            worker = self._workers[index]
        with worker.lock:
            worker.kill()


# ----------------------------------------------------------- worker process


def _worker_main(conn, max_sessions: int) -> None:
    """One persistent worker: warm sessions over unpickled artifacts.

    Sessions are created with
    :meth:`~repro.core.session.LocalizationSession.from_compiled`, so a
    worker never compiles (``encodings_built`` stays 0 pool-wide — the
    store's compile counter is the only one that moves).
    """
    from repro.core.session import LocalizationSession

    artifacts: dict[str, object] = {}
    sessions: "OrderedDict[tuple, LocalizationSession]" = OrderedDict()
    localized = 0
    evicted = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "stop":
            break
        if message[0] != "shard":  # pragma: no cover - defensive
            conn.send(("error", "protocol", f"unknown message {message[0]!r}"))
            continue
        _, key, blob, options, tests, trace_ctx = message
        try:
            if blob is not None and key not in artifacts:
                from repro.bmc.compiled import loads_artifact

                artifacts[key] = loads_artifact(blob)
            if key not in artifacts:
                conn.send(("need-artifact", key))
                continue
            session_key = (
                key,
                options.get("strategy", "hitting-set"),
                options.get("max_candidates", 25),
                tuple(sorted(options.get("hard_lines", ()))),
                options.get("warm_start", True),
                options.get("static_pruning", True),
            )
            with obs.remote_trace(trace_ctx) as trace_bundle:
                with obs.span("worker.shard", tests=len(tests)) as shard_span:
                    session = sessions.get(session_key)
                    if session is None:
                        with obs.span("worker.session_load"):
                            session = LocalizationSession.from_compiled(
                                artifacts[key],
                                strategy=session_key[1],
                                max_candidates=session_key[2],
                                hard_lines=session_key[3],
                                warm_start=session_key[4],
                                static_pruning=session_key[5],
                            )
                        sessions[session_key] = session
                        shard_span.set(session="cold")
                    sessions.move_to_end(session_key)
                    evicted += _evict_sessions(sessions, artifacts, max_sessions)
                    results = []
                    session.pin()
                    try:
                        for request_id, inputs, spec, nondet in tests:
                            report = session.localize(
                                inputs, spec, nondet_values=nondet
                            )
                            results.append((request_id, report))
                            localized += 1
                    finally:
                        session.unpin()
            conn.send(
                (
                    "ok",
                    results,
                    {
                        "sessions": len(sessions),
                        "artifacts": len(artifacts),
                        "localized": localized,
                        "sessions_evicted": evicted,
                        "encodings_built": sum(
                            s.stats.encodings_built for s in sessions.values()
                        ),
                        "last_request_profile": session.last_request_profile,
                    },
                    trace_bundle.spans,
                )
            )
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            label = f"artifact {key[:12]}…"
            conn.send(("error", label, f"{type(exc).__name__}: {exc}\n"
                       + traceback.format_exc(limit=8)))
    conn.close()


def _evict_sessions(
    sessions: "OrderedDict[tuple, object]",
    artifacts: dict[str, object],
    max_sessions: int,
) -> int:
    """LRU-evict unpinned sessions beyond the bound; drop orphaned artifacts."""
    evicted = 0
    while len(sessions) > max_sessions:
        victim_key = next(
            (k for k, s in sessions.items() if not s.pinned),
            None,
        )
        if victim_key is None:
            break
        victim = sessions.pop(victim_key)
        victim.close()
        evicted += 1
    live_artifacts = {key for key, *_ in sessions}
    for key in list(artifacts):
        if key not in live_artifacts:
            del artifacts[key]
    return evicted
