"""``python -m repro.serve`` — run the localization daemon.

Examples::

    # TCP on an ephemeral port, 4 warm-session workers, on-disk artifacts
    python -m repro.serve --tcp 127.0.0.1:0 --workers 4 --store-dir /tmp/repro-artifacts

    # unix socket only
    python -m repro.serve --unix /tmp/repro-serve.sock --workers 2

On startup the daemon prints one machine-readable ready line::

    repro-serve ready tcp=127.0.0.1:34997 unix=- workers=4 store=/tmp/repro-artifacts

and then serves until SIGINT/SIGTERM or a ``shutdown`` request.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from pathlib import Path

from repro.serve.server import LocalizationServer
from repro.serve.store import ArtifactStore
from repro.serve.workers import WorkerPool


def _parse_tcp(value: str) -> tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(f"expected HOST:PORT, got {value!r}")
    return host, int(port)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="BugAssist localization daemon: content-addressed artifact "
        "store + warm-session worker pool over a JSON socket protocol.",
    )
    parser.add_argument(
        "--tcp",
        type=_parse_tcp,
        default=None,
        metavar="HOST:PORT",
        help="listen on TCP (port 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--unix",
        type=Path,
        default=None,
        metavar="PATH",
        help="listen on a unix domain socket",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker processes (default 2)"
    )
    parser.add_argument(
        "--sessions-per-worker",
        type=int,
        default=8,
        help="warm LocalizationSessions kept per worker (default 8)",
    )
    parser.add_argument(
        "--store-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="spill compiled artifacts to DIR (default: memory only)",
    )
    parser.add_argument(
        "--memory-artifacts",
        type=int,
        default=16,
        help="in-memory artifact LRU size (default 16)",
    )
    parser.add_argument(
        "--result-cache",
        type=int,
        default=1024,
        help="memoized localization responses (0 disables; default 1024)",
    )
    return parser


async def _amain(args: argparse.Namespace) -> int:
    server = LocalizationServer(
        store=ArtifactStore(
            root=args.store_dir, max_memory_entries=args.memory_artifacts
        ),
        pool=WorkerPool(
            workers=args.workers, max_sessions_per_worker=args.sessions_per_worker
        ),
        result_cache_entries=args.result_cache,
    )
    await server.start(tcp=args.tcp, unix_path=args.unix)
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, server.shutdown)
    tcp = (
        f"{server.tcp_address[0]}:{server.tcp_address[1]}"
        if server.tcp_address
        else "-"
    )
    unix = str(server.unix_path) if server.unix_path else "-"
    store = str(args.store_dir) if args.store_dir else "-"
    print(
        f"repro-serve ready tcp={tcp} unix={unix} "
        f"workers={args.workers} store={store}",
        flush=True,
    )
    await server.serve_until_shutdown()
    print("repro-serve stopped", flush=True)
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.tcp is None and args.unix is None:
        build_parser().error("need at least one of --tcp or --unix")
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
