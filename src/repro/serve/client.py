"""Blocking client for the localization daemon.

One :class:`Client` holds one connection (TCP or unix socket) and issues
request/response frames over it.  The surface mirrors the daemon ops::

    from repro.serve import Client

    with Client(tcp=("127.0.0.1", 7711)) as client:
        compiled = client.compile(source, name="tcas-v1",
                                  options={"hard_functions": ["alt_sep_test"]})
        reply = client.localize(artifact=compiled["artifact"],
                                test=[3, 3, 7],
                                spec={"kind": "return-value", "expected": [-1]})
        for candidate in reply["report"]["candidates"]:
            print(candidate["lines"], candidate["description"])

Specifications may be passed as wire dicts (shown above) or as
:class:`~repro.spec.Specification` values; tests as int lists or
name→value mappings.  Failures come back as :class:`ServeError` carrying
the daemon's error string.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

from repro.serve import protocol
from repro.spec import Specification


class ServeError(RuntimeError):
    """The daemon answered ``ok: false`` (or the connection broke)."""


def _spec_wire(spec: Specification | Mapping[str, Any]) -> dict:
    if isinstance(spec, Specification):
        return protocol.spec_to_wire(spec)
    return dict(spec)


def _test_wire(test: Sequence[int] | Mapping[str, int]) -> Any:
    if isinstance(test, Mapping):
        return {str(name): int(value) for name, value in test.items()}
    return [int(value) for value in test]


class Client:
    """One blocking connection to a localization daemon."""

    def __init__(
        self,
        tcp: Optional[tuple[str, int]] = None,
        unix_path: Optional[Path | str] = None,
        timeout: float = 1000.0,
    ) -> None:
        # The default timeout deliberately exceeds the pool's shard_timeout
        # (900s): a legitimately slow localization the daemon still
        # considers healthy must not be cut off client-side first.
        if (tcp is None) == (unix_path is None):
            raise ValueError("pass exactly one of tcp=(host, port) or unix_path=...")
        self._tcp = tcp
        self._unix_path = Path(unix_path) if unix_path is not None else None
        self._timeout = timeout
        self._sock: Optional[socket.socket] = None

    # -------------------------------------------------------------- lifecycle

    def connect(self) -> "Client":
        if self._sock is not None:
            return self
        if self._tcp is not None:
            sock = socket.create_connection(self._tcp, timeout=self._timeout)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._timeout)
            sock.connect(str(self._unix_path))
        self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "Client":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def wait_until_ready(self, timeout: float = 30.0, interval: float = 0.05) -> "Client":
        """Poll until the daemon answers a ``stats`` request (startup gate)."""
        deadline = time.monotonic() + timeout
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                self.connect()
                self.stats()
                return self
            except (OSError, ServeError, protocol.ProtocolError) as exc:
                last_error = exc
                self.close()
                time.sleep(interval)
        raise ServeError(f"daemon not ready within {timeout}s: {last_error}")

    # --------------------------------------------------------------- plumbing

    def request(self, payload: Mapping[str, Any]) -> dict:
        """Send one frame, read one response, raise on ``ok: false``."""
        self.connect()
        try:
            protocol.send_frame(self._sock, payload)
            response = protocol.recv_frame(self._sock)
        except (OSError, protocol.ProtocolError) as exc:
            self.close()
            raise ServeError(f"connection to daemon failed: {exc}") from exc
        if response is None:
            self.close()
            raise ServeError("daemon closed the connection")
        if not response.get("ok", False):
            raise ServeError(response.get("error", "daemon reported an error"))
        return response

    # -------------------------------------------------------------------- ops

    def compile(
        self,
        program: str,
        name: Optional[str] = None,
        options: Optional[Mapping[str, Any]] = None,
        base_artifact: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> dict:
        merged = dict(options or {})
        if name is not None:
            merged["name"] = name
        payload: dict[str, Any] = {
            "op": "compile",
            "program": program,
            "options": merged,
        }
        if base_artifact is not None:
            payload["base_artifact"] = base_artifact
        if trace_id is not None:
            payload[protocol.TRACE_FIELD] = trace_id
        return self.request(payload)

    def localize(
        self,
        test: Sequence[int] | Mapping[str, int],
        spec: Specification | Mapping[str, Any],
        program: Optional[str] = None,
        artifact: Optional[str] = None,
        nondet: Sequence[int] = (),
        options: Optional[Mapping[str, Any]] = None,
        trace_id: Optional[str] = None,
    ) -> dict:
        if (program is None) == (artifact is None):
            raise ValueError("pass exactly one of program= or artifact=")
        payload: dict[str, Any] = {
            "op": "localize",
            "test": _test_wire(test),
            "spec": _spec_wire(spec),
        }
        if nondet:
            payload["nondet"] = [int(v) for v in nondet]
        if program is not None:
            payload["program"] = program
        else:
            payload["artifact"] = artifact
        if options:
            payload["options"] = dict(options)
        if trace_id is not None:
            payload[protocol.TRACE_FIELD] = trace_id
        return self.request(payload)

    def localize_batch(
        self,
        requests: Sequence[Mapping[str, Any]],
        trace_id: Optional[str] = None,
    ) -> dict:
        """Run a batch; each entry mirrors :meth:`localize` but with ``tests``.

        Entry shape: ``{"program": src | "artifact": key, "options": {...},
        "tests": [{"inputs": [...], "spec": {...}, "nondet": [...]}, ...]}``.
        ``spec`` values may be :class:`~repro.spec.Specification` objects.
        """
        wire_entries = []
        for entry in requests:
            wire_entry = dict(entry)
            wire_entry["tests"] = [
                {
                    "inputs": _test_wire(test["inputs"]),
                    "spec": _spec_wire(test["spec"]),
                    "nondet": [int(v) for v in test.get("nondet", ())],
                }
                for test in entry["tests"]
            ]
            wire_entries.append(wire_entry)
        payload: dict[str, Any] = {"op": "localize_batch", "requests": wire_entries}
        if trace_id is not None:
            payload[protocol.TRACE_FIELD] = trace_id
        return self.request(payload)

    def stats(self) -> dict:
        """Cumulative counters plus the windowed deltas since the last poll."""
        return self.request({"op": "stats"})

    def metrics(self) -> dict:
        """The daemon's metrics registry: Prometheus text plus a flat snapshot."""
        return self.request({"op": "metrics"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})
