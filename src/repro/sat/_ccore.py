"""Feature-checked loader for the C-accelerated solver cores.

The solver's hot paths exist twice: as pure-Python loops (always available,
always tested) and as ``search.c`` compiled to a tiny shared library at
first use.  The library exports two entry points over the same flat
``array``-backed buffers:

* ``repro_propagate`` — two-watched-literal unit propagation (one call per
  search step from the pure-Python search loop);
* ``repro_search`` — the full CDCL search kernel: propagation, first-UIP
  conflict analysis with clause learning and local minimization,
  backjumping, VSIDS bump/decay/rescale, the activity order heap, phase
  saving, assumption decisions and Luby restarts, returning to Python only
  for rare control events.

Both implement the same algorithms step for step as the Python fallbacks,
so every backend combination produces identical assignments, conflicts,
cores and statistics.

Selection is controlled by two environment variables with the same value
set (``auto`` / ``python`` / ``c``):

* ``REPRO_PROPAGATION`` — the propagation core.  ``auto`` (default) uses
  the compiled core when it can be built/loaded and falls back to pure
  Python otherwise; ``python`` forces the fallback; ``c`` requires the
  compiled core and raises when it cannot be loaded.
* ``REPRO_SEARCH`` — the search kernel, same semantics.  When it is *not
  set* it inherits the ``REPRO_PROPAGATION`` mode, so pinning
  ``REPRO_PROPAGATION=python`` keeps the whole solver interpreted (CI's
  fallback job stays pure) and the default ``auto`` build accelerates both
  layers.  Set it explicitly to mix backends — e.g.
  ``REPRO_PROPAGATION=python REPRO_SEARCH=auto`` runs the compiled search
  kernel above a Python root-level propagator.
* ``REPRO_ENCODE`` — the CNF emission core (``encode.c``, a separate tiny
  library built on demand through the same cache).  Same value set and the
  same inheritance rule: unset inherits ``REPRO_PROPAGATION``.  Both
  emission backends produce bit-identical artifacts, so this knob is purely
  a speed choice.

The compiled artifact is cached under ``_build/`` next to this module
(override the location with ``REPRO_SAT_BUILD_DIR``; CI's compiler-less job
points it at an empty directory so a stale artifact cannot mask a missing
compiler), keyed by a hash of the C source, so rebuilding only happens when
the source changes.  When the package directory is not writable, the core is compiled
into a fresh private per-process temporary directory instead — cached
artifacts are never loaded from shared locations other users could write.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

_SOURCE = Path(__file__).resolve().parent / "search.c"
_ENCODE_SOURCE = Path(__file__).resolve().parent / "encode.c"
_ENCODE_PY_SOURCE = Path(__file__).resolve().parent / "encode_py.c"

#: Why the C cores are unavailable (diagnostic; None when the library loaded).
unavailable_reason: Optional[str] = None

#: Why the C encode core is unavailable (diagnostic; None when it loaded).
encode_unavailable_reason: Optional[str] = None

_loaded: Optional[ctypes.CDLL] = None
_attempted = False

_encode_loaded: Optional[ctypes.CDLL] = None
_encode_attempted = False

_materialize_loaded: Optional[ctypes.CDLL] = None
_materialize_attempted = False

_MODES = ("auto", "python", "c")


def _env_mode(name: str) -> Optional[str]:
    raw = os.environ.get(name)
    if raw is None:
        return None
    mode = raw.strip().lower()
    if mode not in _MODES:
        raise ValueError(f"{name}={mode!r}: expected 'auto', 'python' or 'c'")
    return mode


def propagation_mode() -> str:
    """The requested propagation mode (``REPRO_PROPAGATION``, default auto)."""
    return _env_mode("REPRO_PROPAGATION") or "auto"


def search_mode() -> str:
    """The requested search-kernel mode.

    ``REPRO_SEARCH`` when set; otherwise inherited from
    ``REPRO_PROPAGATION`` so a pinned pure-Python propagation run stays
    pure end to end.
    """
    explicit = _env_mode("REPRO_SEARCH")
    return explicit if explicit is not None else propagation_mode()


def encode_mode() -> str:
    """The requested CNF-emission mode.

    ``REPRO_ENCODE`` when set; otherwise inherited from
    ``REPRO_PROPAGATION`` (like ``REPRO_SEARCH``) so a pinned pure-Python
    run stays interpreted across encoding, propagation and search without
    setting three variables.
    """
    explicit = _env_mode("REPRO_ENCODE")
    return explicit if explicit is not None else propagation_mode()


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


#: Sanitizers accepted in ``REPRO_SAT_SANITIZE`` (comma-separated) and the
#: cflags each one adds.  ``-fno-sanitize-recover=all`` turns any finding
#: into an abort, so a sanitizer CI job fails loudly instead of logging.
_SANITIZERS = {
    "asan": ("-fsanitize=address",),
    "ubsan": ("-fsanitize=undefined",),
}


def sanitize_flags() -> tuple[str, ...]:
    """Extra compile flags from ``REPRO_SAT_SANITIZE`` (empty = plain build).

    ``REPRO_SAT_SANITIZE=asan,ubsan`` builds the C cores under
    AddressSanitizer and UndefinedBehaviorSanitizer.  The flags participate
    in the build-cache key, so sanitized and plain artifacts occupy
    separate cache slots and never shadow each other.  Running under ASan
    typically also needs the sanitizer runtime preloaded into the host
    python (``LD_PRELOAD=$(cc -print-file-name=libasan.so)``) and, because
    CPython itself is not leak-clean, ``ASAN_OPTIONS=detect_leaks=0``.
    """
    raw = os.environ.get("REPRO_SAT_SANITIZE", "").strip().lower()
    if not raw:
        return ()
    flags: list[str] = []
    for name in raw.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in _SANITIZERS:
            raise ValueError(
                f"REPRO_SAT_SANITIZE={raw!r}: unknown sanitizer {name!r} "
                f"(expected a comma-separated subset of {sorted(_SANITIZERS)})"
            )
        flags.extend(_SANITIZERS[name])
    if flags:
        flags.extend(("-fno-sanitize-recover=all", "-g"))
    return tuple(flags)


def _build_dir() -> Optional[Path]:
    """The package-local cache directory, or ``None`` when not writable.

    Only the package-local directory is trusted for *reusing* a previously
    compiled artifact: a shared temp location could be pre-seeded by another
    local user with a malicious library of the expected name.  When the
    package is not writable the loader compiles into a fresh private
    per-process directory instead (no reuse).
    """
    override = os.environ.get("REPRO_SAT_BUILD_DIR")
    local = Path(override) if override else _SOURCE.parent / "_build"
    try:
        local.mkdir(parents=True, exist_ok=True)
        probe = local / ".writable"
        probe.touch()
        probe.unlink()
        return local
    except OSError:
        return None


def _compile_source(
    source_path: Path, prefix: str, extra_flags: tuple[str, ...] = ()
) -> Path:
    source = source_path.read_bytes()
    extra = sanitize_flags() + extra_flags
    # The sanitizer flags join the digest: a sanitized build lands in its
    # own cache slot and a later plain run never loads it by accident.
    digest = hashlib.sha256(source + b"\x00" + " ".join(extra).encode()).hexdigest()[:16]
    cache = _build_dir()
    out = None if cache is None else cache / f"_{prefix}_{digest}.so"
    if out is not None and out.exists():
        return out
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
    command = [compiler, "-O2", "-shared", "-fPIC", *extra]
    if out is None:
        # Private per-process directory (0700 by mkdtemp): built fresh every
        # process, never loaded from a path another user could pre-create.
        private = Path(tempfile.mkdtemp(prefix="repro-sat-"))
        target = private / f"_{prefix}_{digest}.so"
        subprocess.run(
            [*command, "-o", str(target), str(source_path)],
            check=True,
            capture_output=True,
        )
        return target
    with tempfile.TemporaryDirectory(dir=str(out.parent)) as workdir:
        staging = Path(workdir) / out.name
        subprocess.run(
            [*command, "-o", str(staging), str(source_path)],
            check=True,
            capture_output=True,
        )
        # Atomic move so concurrent builders never load a half-written .so.
        os.replace(staging, out)
    return out


def _compile() -> Path:
    return _compile_source(_SOURCE, "search")


def load_core() -> Optional[ctypes.CDLL]:
    """Load (building if needed) the C library, or ``None`` when unavailable.

    The library is only built when at least one of the two knobs wants a
    compiled core; pinning both to ``python`` never invokes a compiler.
    """
    global _loaded, _attempted, unavailable_reason
    if _attempted:
        return _loaded
    _attempted = True
    pmode = propagation_mode()
    smode = search_mode()
    if pmode == "python" and smode == "python":
        unavailable_reason = "disabled by REPRO_PROPAGATION/REPRO_SEARCH=python"
        return None
    try:
        library = ctypes.CDLL(str(_compile()))
        propagate = library.repro_propagate
        propagate.restype = ctypes.c_long
        propagate.argtypes = [ctypes.c_void_p] * 7
        search = library.repro_search
        search.restype = ctypes.c_long
        search.argtypes = [ctypes.c_void_p] * 18
        _loaded = library
    except Exception as error:  # compiler missing, sandboxed tmpdir, ...
        unavailable_reason = f"{type(error).__name__}: {error}"
        required = []
        if pmode == "c":
            required.append("REPRO_PROPAGATION=c")
        if smode == "c":
            required.append("REPRO_SEARCH=c")
        if required:
            raise RuntimeError(
                f"{' and '.join(required)} but the C core failed to load: "
                f"{unavailable_reason}"
            ) from error
        _loaded = None
    return _loaded


def load_encode_core() -> Optional[ctypes.CDLL]:
    """Load (building if needed) the C emission core, or ``None``.

    Separate library from the solver cores so ``REPRO_ENCODE=python`` never
    compiles ``encode.c`` and a missing compiler degrades each layer
    independently.  Raises only when ``REPRO_ENCODE`` (or the inherited
    ``REPRO_PROPAGATION``) is pinned to ``c`` and the build fails.
    """
    global _encode_loaded, _encode_attempted, encode_unavailable_reason
    if _encode_attempted:
        return _encode_loaded
    _encode_attempted = True
    mode = encode_mode()
    if mode == "python":
        encode_unavailable_reason = "disabled by REPRO_ENCODE/REPRO_PROPAGATION=python"
        return None
    try:
        library = ctypes.CDLL(str(_compile_source(_ENCODE_SOURCE, "encode")))
        gate = library.repro_enc_gate
        gate.restype = ctypes.c_longlong
        gate.argtypes = [ctypes.c_void_p] * 6 + [ctypes.c_longlong] * 4
        add = library.repro_enc_add
        add.restype = None
        add.argtypes = [ctypes.c_void_p] * 9 + [ctypes.c_longlong] * 2
        mul = library.repro_enc_mul
        mul.restype = None
        mul.argtypes = [ctypes.c_void_p] * 9 + [ctypes.c_longlong]
        equals = library.repro_enc_equals
        equals.restype = ctypes.c_longlong
        equals.argtypes = [ctypes.c_void_p] * 9 + [ctypes.c_longlong]
        uless = library.repro_enc_uless
        uless.restype = ctypes.c_longlong
        uless.argtypes = [ctypes.c_void_p] * 8 + [ctypes.c_longlong]
        mux = library.repro_enc_mux
        mux.restype = None
        mux.argtypes = [ctypes.c_void_p] * 6 + [ctypes.c_longlong] + [ctypes.c_void_p] * 3 + [ctypes.c_longlong]
        rehash = library.repro_enc_rehash
        rehash.restype = None
        rehash.argtypes = [
            ctypes.c_void_p,
            ctypes.c_longlong,
            ctypes.c_void_p,
            ctypes.c_longlong,
        ]
        _encode_loaded = library
    except Exception as error:  # compiler missing, sandboxed tmpdir, ...
        encode_unavailable_reason = f"{type(error).__name__}: {error}"
        if mode == "c":
            knob = (
                "REPRO_ENCODE=c"
                if _env_mode("REPRO_ENCODE") == "c"
                else "REPRO_PROPAGATION=c (inherited by REPRO_ENCODE)"
            )
            raise RuntimeError(
                f"{knob} but the C encode core failed to load: "
                f"{encode_unavailable_reason}"
            ) from error
        _encode_loaded = None
    return _encode_loaded


def encode_library() -> Optional[ctypes.CDLL]:
    """The loaded C emission library, or ``None`` when unavailable/pinned."""
    if encode_mode() == "python":
        return None
    return load_encode_core()


def encode_unavailable() -> Optional[str]:
    """Why the C emission core cannot be used (``None`` when it can)."""
    if encode_mode() == "python":
        if _env_mode("REPRO_ENCODE") == "python":
            return "disabled by REPRO_ENCODE=python"
        return "disabled by REPRO_PROPAGATION=python (inherited by REPRO_ENCODE)"
    load_encode_core()
    return encode_unavailable_reason


def encode_backend() -> str:
    """Which emission backend new compiles will use (``"c"`` or ``"python"``)."""
    return "c" if encode_library() is not None else "python"


def load_materialize_core() -> Optional[ctypes.CDLL]:
    """Load the CPython-API materialization core, or ``None``.

    Built from ``encode_py.c`` against the interpreter's own headers and
    loaded with :class:`ctypes.PyDLL` (the entry point manipulates Python
    objects under the GIL).  Follows the ``REPRO_ENCODE`` mode but never
    raises: a missing Python.h only costs speed — the pure-Python
    :meth:`GateArena.materialize` walk produces the identical object graph.
    """
    global _materialize_loaded, _materialize_attempted
    if _materialize_attempted:
        return _materialize_loaded
    _materialize_attempted = True
    if encode_mode() == "python":
        return None
    try:
        import sysconfig

        include = sysconfig.get_paths()["include"]
        if not (Path(include) / "Python.h").exists():
            return None
        library = ctypes.PyDLL(
            str(_compile_source(_ENCODE_PY_SOURCE, "encodepy", (f"-I{include}",)))
        )
        materialize = library.repro_materialize
        materialize.restype = ctypes.py_object
        materialize.argtypes = [
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_longlong,
            ctypes.c_void_p,
            ctypes.c_longlong,
            ctypes.py_object,
            ctypes.c_longlong,
            ctypes.c_longlong,
        ]
        _materialize_loaded = library
    except Exception:  # compiler or headers missing — fall back silently
        _materialize_loaded = None
    return _materialize_loaded


def materialize_function():
    """The raw ``repro_materialize`` entry point, or ``None``."""
    library = load_materialize_core()
    return None if library is None else library.repro_materialize


def propagate_function():
    """The raw ``repro_propagate`` C function, or ``None``."""
    if propagation_mode() == "python":
        return None
    library = load_core()
    return None if library is None else library.repro_propagate


def search_function():
    """The raw ``repro_search`` C function, or ``None``."""
    if search_mode() == "python":
        return None
    library = load_core()
    return None if library is None else library.repro_search


def propagate_unavailable_reason() -> Optional[str]:
    """Why ``repro_propagate`` cannot be used (``None`` when it can).

    Distinguishes an environment pin from a genuine build/load failure so
    error messages name the actual cause.
    """
    if propagation_mode() == "python":
        return "disabled by REPRO_PROPAGATION=python"
    load_core()
    return unavailable_reason


def search_unavailable_reason() -> Optional[str]:
    """Why ``repro_search`` cannot be used (``None`` when it can)."""
    if search_mode() == "python":
        if _env_mode("REPRO_SEARCH") == "python":
            return "disabled by REPRO_SEARCH=python"
        return "disabled by REPRO_PROPAGATION=python (inherited by REPRO_SEARCH)"
    load_core()
    return unavailable_reason


def backend() -> str:
    """Which propagation backend new :class:`Solver` instances will use."""
    return "c" if propagate_function() is not None else "python"


def search_backend(follow: Optional[str] = None) -> str:
    """Which search backend new :class:`Solver` instances will use.

    ``follow`` is the propagation backend a specific solver resolved to:
    when ``REPRO_SEARCH`` is not set explicitly, the solver's search
    backend follows its propagation backend, so ``Solver(backend="python")``
    is fully interpreted and ``Solver(backend="c")`` is fully compiled.
    """
    if _env_mode("REPRO_SEARCH") is None and follow is not None:
        if follow == "c" and search_function() is None:  # pragma: no cover
            return "python"
        return follow
    return "c" if search_function() is not None else "python"
