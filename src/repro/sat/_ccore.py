"""Feature-checked loader for the C-accelerated propagation core.

The solver's hottest loop — two-watched-literal unit propagation — exists
twice: as a pure-Python loop (:meth:`Solver._propagate_python`, always
available, always tested) and as ``propagate.c`` compiled to a tiny shared
library at first use.  Both operate on the same flat ``array('l')`` buffers
and implement the same algorithm step for step, so they produce identical
assignments, conflicts and statistics.

Selection is controlled by the ``REPRO_PROPAGATION`` environment variable:

* ``auto`` (default) — use the C core when it can be built/loaded, fall
  back to pure Python otherwise;
* ``python`` — force the pure-Python loop (useful for debugging and for CI
  to pin the fallback);
* ``c`` — require the C core; raise if it cannot be loaded.

The compiled artifact is cached under ``_build/`` next to this module,
keyed by a hash of the C source, so rebuilding only happens when the source
changes.  When the package directory is not writable, the core is compiled
into a fresh private per-process temporary directory instead — cached
artifacts are never loaded from shared locations other users could write.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

_SOURCE = Path(__file__).resolve().parent / "propagate.c"

#: Why the C core is unavailable (diagnostic; None when it loaded).
unavailable_reason: Optional[str] = None

_loaded: Optional[ctypes.CDLL] = None
_attempted = False


def _requested_mode() -> str:
    mode = os.environ.get("REPRO_PROPAGATION", "auto").strip().lower()
    if mode not in ("auto", "python", "c"):
        raise ValueError(
            f"REPRO_PROPAGATION={mode!r}: expected 'auto', 'python' or 'c'"
        )
    return mode


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build_dir() -> Optional[Path]:
    """The package-local cache directory, or ``None`` when not writable.

    Only the package-local directory is trusted for *reusing* a previously
    compiled artifact: a shared temp location could be pre-seeded by another
    local user with a malicious library of the expected name.  When the
    package is not writable the loader compiles into a fresh private
    per-process directory instead (no reuse).
    """
    local = _SOURCE.parent / "_build"
    try:
        local.mkdir(exist_ok=True)
        probe = local / ".writable"
        probe.touch()
        probe.unlink()
        return local
    except OSError:
        return None


def _compile() -> Path:
    source = _SOURCE.read_bytes()
    digest = hashlib.sha256(source).hexdigest()[:16]
    cache = _build_dir()
    out = None if cache is None else cache / f"_propagate_{digest}.so"
    if out is not None and out.exists():
        return out
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
    if out is None:
        # Private per-process directory (0700 by mkdtemp): built fresh every
        # process, never loaded from a path another user could pre-create.
        private = Path(tempfile.mkdtemp(prefix="repro-sat-"))
        target = private / f"_propagate_{digest}.so"
        subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-o", str(target), str(_SOURCE)],
            check=True,
            capture_output=True,
        )
        return target
    with tempfile.TemporaryDirectory(dir=str(out.parent)) as workdir:
        staging = Path(workdir) / out.name
        subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-o", str(staging), str(_SOURCE)],
            check=True,
            capture_output=True,
        )
        # Atomic move so concurrent builders never load a half-written .so.
        os.replace(staging, out)
    return out


def load_core() -> Optional[ctypes.CDLL]:
    """Load (building if needed) the C core, or ``None`` when unavailable."""
    global _loaded, _attempted, unavailable_reason
    if _attempted:
        return _loaded
    _attempted = True
    mode = _requested_mode()
    if mode == "python":
        unavailable_reason = "disabled by REPRO_PROPAGATION=python"
        return None
    try:
        library = ctypes.CDLL(str(_compile()))
        function = library.repro_propagate
        function.restype = ctypes.c_long
        function.argtypes = [ctypes.c_void_p] * 7
        _loaded = library
    except Exception as error:  # compiler missing, sandboxed tmpdir, ...
        unavailable_reason = f"{type(error).__name__}: {error}"
        if mode == "c":
            raise RuntimeError(
                f"REPRO_PROPAGATION=c but the C core failed to load: "
                f"{unavailable_reason}"
            ) from error
        _loaded = None
    return _loaded


def propagate_function():
    """The raw ``repro_propagate`` C function, or ``None``."""
    library = load_core()
    return None if library is None else library.repro_propagate


def backend() -> str:
    """Which propagation backend new :class:`Solver` instances will use."""
    return "c" if load_core() is not None else "python"
