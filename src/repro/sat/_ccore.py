"""Feature-checked loader for the C-accelerated solver cores.

The solver's hot paths exist twice: as pure-Python loops (always available,
always tested) and as ``search.c`` compiled to a tiny shared library at
first use.  The library exports two entry points over the same flat
``array``-backed buffers:

* ``repro_propagate`` — two-watched-literal unit propagation (one call per
  search step from the pure-Python search loop);
* ``repro_search`` — the full CDCL search kernel: propagation, first-UIP
  conflict analysis with clause learning and local minimization,
  backjumping, VSIDS bump/decay/rescale, the activity order heap, phase
  saving, assumption decisions and Luby restarts, returning to Python only
  for rare control events.

Both implement the same algorithms step for step as the Python fallbacks,
so every backend combination produces identical assignments, conflicts,
cores and statistics.

Selection is controlled by two environment variables with the same value
set (``auto`` / ``python`` / ``c``):

* ``REPRO_PROPAGATION`` — the propagation core.  ``auto`` (default) uses
  the compiled core when it can be built/loaded and falls back to pure
  Python otherwise; ``python`` forces the fallback; ``c`` requires the
  compiled core and raises when it cannot be loaded.
* ``REPRO_SEARCH`` — the search kernel, same semantics.  When it is *not
  set* it inherits the ``REPRO_PROPAGATION`` mode, so pinning
  ``REPRO_PROPAGATION=python`` keeps the whole solver interpreted (CI's
  fallback job stays pure) and the default ``auto`` build accelerates both
  layers.  Set it explicitly to mix backends — e.g.
  ``REPRO_PROPAGATION=python REPRO_SEARCH=auto`` runs the compiled search
  kernel above a Python root-level propagator.

The compiled artifact is cached under ``_build/`` next to this module
(override the location with ``REPRO_SAT_BUILD_DIR``; CI's compiler-less job
points it at an empty directory so a stale artifact cannot mask a missing
compiler), keyed by a hash of the C source, so rebuilding only happens when
the source changes.  When the package directory is not writable, the core is compiled
into a fresh private per-process temporary directory instead — cached
artifacts are never loaded from shared locations other users could write.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

_SOURCE = Path(__file__).resolve().parent / "search.c"

#: Why the C cores are unavailable (diagnostic; None when the library loaded).
unavailable_reason: Optional[str] = None

_loaded: Optional[ctypes.CDLL] = None
_attempted = False

_MODES = ("auto", "python", "c")


def _env_mode(name: str) -> Optional[str]:
    raw = os.environ.get(name)
    if raw is None:
        return None
    mode = raw.strip().lower()
    if mode not in _MODES:
        raise ValueError(f"{name}={mode!r}: expected 'auto', 'python' or 'c'")
    return mode


def propagation_mode() -> str:
    """The requested propagation mode (``REPRO_PROPAGATION``, default auto)."""
    return _env_mode("REPRO_PROPAGATION") or "auto"


def search_mode() -> str:
    """The requested search-kernel mode.

    ``REPRO_SEARCH`` when set; otherwise inherited from
    ``REPRO_PROPAGATION`` so a pinned pure-Python propagation run stays
    pure end to end.
    """
    explicit = _env_mode("REPRO_SEARCH")
    return explicit if explicit is not None else propagation_mode()


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


#: Sanitizers accepted in ``REPRO_SAT_SANITIZE`` (comma-separated) and the
#: cflags each one adds.  ``-fno-sanitize-recover=all`` turns any finding
#: into an abort, so a sanitizer CI job fails loudly instead of logging.
_SANITIZERS = {
    "asan": ("-fsanitize=address",),
    "ubsan": ("-fsanitize=undefined",),
}


def sanitize_flags() -> tuple[str, ...]:
    """Extra compile flags from ``REPRO_SAT_SANITIZE`` (empty = plain build).

    ``REPRO_SAT_SANITIZE=asan,ubsan`` builds the C cores under
    AddressSanitizer and UndefinedBehaviorSanitizer.  The flags participate
    in the build-cache key, so sanitized and plain artifacts occupy
    separate cache slots and never shadow each other.  Running under ASan
    typically also needs the sanitizer runtime preloaded into the host
    python (``LD_PRELOAD=$(cc -print-file-name=libasan.so)``) and, because
    CPython itself is not leak-clean, ``ASAN_OPTIONS=detect_leaks=0``.
    """
    raw = os.environ.get("REPRO_SAT_SANITIZE", "").strip().lower()
    if not raw:
        return ()
    flags: list[str] = []
    for name in raw.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in _SANITIZERS:
            raise ValueError(
                f"REPRO_SAT_SANITIZE={raw!r}: unknown sanitizer {name!r} "
                f"(expected a comma-separated subset of {sorted(_SANITIZERS)})"
            )
        flags.extend(_SANITIZERS[name])
    if flags:
        flags.extend(("-fno-sanitize-recover=all", "-g"))
    return tuple(flags)


def _build_dir() -> Optional[Path]:
    """The package-local cache directory, or ``None`` when not writable.

    Only the package-local directory is trusted for *reusing* a previously
    compiled artifact: a shared temp location could be pre-seeded by another
    local user with a malicious library of the expected name.  When the
    package is not writable the loader compiles into a fresh private
    per-process directory instead (no reuse).
    """
    override = os.environ.get("REPRO_SAT_BUILD_DIR")
    local = Path(override) if override else _SOURCE.parent / "_build"
    try:
        local.mkdir(parents=True, exist_ok=True)
        probe = local / ".writable"
        probe.touch()
        probe.unlink()
        return local
    except OSError:
        return None


def _compile() -> Path:
    source = _SOURCE.read_bytes()
    extra = sanitize_flags()
    # The sanitizer flags join the digest: a sanitized build lands in its
    # own cache slot and a later plain run never loads it by accident.
    digest = hashlib.sha256(source + b"\x00" + " ".join(extra).encode()).hexdigest()[:16]
    cache = _build_dir()
    out = None if cache is None else cache / f"_search_{digest}.so"
    if out is not None and out.exists():
        return out
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
    command = [compiler, "-O2", "-shared", "-fPIC", *extra]
    if out is None:
        # Private per-process directory (0700 by mkdtemp): built fresh every
        # process, never loaded from a path another user could pre-create.
        private = Path(tempfile.mkdtemp(prefix="repro-sat-"))
        target = private / f"_search_{digest}.so"
        subprocess.run(
            [*command, "-o", str(target), str(_SOURCE)],
            check=True,
            capture_output=True,
        )
        return target
    with tempfile.TemporaryDirectory(dir=str(out.parent)) as workdir:
        staging = Path(workdir) / out.name
        subprocess.run(
            [*command, "-o", str(staging), str(_SOURCE)],
            check=True,
            capture_output=True,
        )
        # Atomic move so concurrent builders never load a half-written .so.
        os.replace(staging, out)
    return out


def load_core() -> Optional[ctypes.CDLL]:
    """Load (building if needed) the C library, or ``None`` when unavailable.

    The library is only built when at least one of the two knobs wants a
    compiled core; pinning both to ``python`` never invokes a compiler.
    """
    global _loaded, _attempted, unavailable_reason
    if _attempted:
        return _loaded
    _attempted = True
    pmode = propagation_mode()
    smode = search_mode()
    if pmode == "python" and smode == "python":
        unavailable_reason = "disabled by REPRO_PROPAGATION/REPRO_SEARCH=python"
        return None
    try:
        library = ctypes.CDLL(str(_compile()))
        propagate = library.repro_propagate
        propagate.restype = ctypes.c_long
        propagate.argtypes = [ctypes.c_void_p] * 7
        search = library.repro_search
        search.restype = ctypes.c_long
        search.argtypes = [ctypes.c_void_p] * 18
        _loaded = library
    except Exception as error:  # compiler missing, sandboxed tmpdir, ...
        unavailable_reason = f"{type(error).__name__}: {error}"
        required = []
        if pmode == "c":
            required.append("REPRO_PROPAGATION=c")
        if smode == "c":
            required.append("REPRO_SEARCH=c")
        if required:
            raise RuntimeError(
                f"{' and '.join(required)} but the C core failed to load: "
                f"{unavailable_reason}"
            ) from error
        _loaded = None
    return _loaded


def propagate_function():
    """The raw ``repro_propagate`` C function, or ``None``."""
    if propagation_mode() == "python":
        return None
    library = load_core()
    return None if library is None else library.repro_propagate


def search_function():
    """The raw ``repro_search`` C function, or ``None``."""
    if search_mode() == "python":
        return None
    library = load_core()
    return None if library is None else library.repro_search


def propagate_unavailable_reason() -> Optional[str]:
    """Why ``repro_propagate`` cannot be used (``None`` when it can).

    Distinguishes an environment pin from a genuine build/load failure so
    error messages name the actual cause.
    """
    if propagation_mode() == "python":
        return "disabled by REPRO_PROPAGATION=python"
    load_core()
    return unavailable_reason


def search_unavailable_reason() -> Optional[str]:
    """Why ``repro_search`` cannot be used (``None`` when it can)."""
    if search_mode() == "python":
        if _env_mode("REPRO_SEARCH") == "python":
            return "disabled by REPRO_SEARCH=python"
        return "disabled by REPRO_PROPAGATION=python (inherited by REPRO_SEARCH)"
    load_core()
    return unavailable_reason


def backend() -> str:
    """Which propagation backend new :class:`Solver` instances will use."""
    return "c" if propagate_function() is not None else "python"


def search_backend(follow: Optional[str] = None) -> str:
    """Which search backend new :class:`Solver` instances will use.

    ``follow`` is the propagation backend a specific solver resolved to:
    when ``REPRO_SEARCH`` is not set explicitly, the solver's search
    backend follows its propagation backend, so ``Solver(backend="python")``
    is fully interpreted and ``Solver(backend="c")`` is fully compiled.
    """
    if _env_mode("REPRO_SEARCH") is None and follow is not None:
        if follow == "c" and search_function() is None:  # pragma: no cover
            return "python"
        return follow
    return "c" if search_function() is not None else "python"
