/* The C emission core of the flat gate-arena encoder.
 *
 * Operates on the same flat int64 buffers as the pure-Python arena
 * (repro/encoding/arena.py): the header scalar block, the clause literal
 * pool + end-offset/group-id indexes, the flat journal stream and the
 * open-addressed structure-hash gate table.  Every routine implements
 * exactly the same canonicalization, constant folding, clause order,
 * journal order and signature arithmetic as the Python mirror
 * (CircuitBuilder + GateArena), so a compile may interleave Python and C
 * emission freely and both backends produce bit-identical CNF, journals
 * and gate signatures.  Any divergence is a bug; the differential suite
 * (tests/test_encode_backends.py) compares whole compiles across backends.
 *
 * Exported entry points (buffers first, then operands):
 *
 *   repro_enc_gate     one scalar gate (and / xor / ite / xor3 / majority)
 *                      including all constant folds; returns the literal.
 *   repro_enc_add      ripple-carry adder chain (xor3 + majority per bit).
 *   repro_enc_mul      shift-and-add multiplier (control side = first arg).
 *   repro_enc_equals   MSB-first equality AND chain.
 *   repro_enc_uless    unsigned less-than mux chain.
 *   repro_enc_mux      per-bit if-then-else.
 *
 * Capacity contract: the Python caller reserves worst-case room (gates,
 * clauses, literals, journal words, gate-table load factor < 1/2) before
 * every call; the kernels never grow a buffer.  Vector lengths are capped
 * at 64 bits by the caller.
 */

#include <stdint.h>

typedef int64_t i64;
typedef uint64_t u64;

/* Header slots — keep in sync with repro/encoding/arena.py. */
enum {
    H_NUM_VARS = 0,
    H_PENDING = 1,
    H_GATES = 2,
    H_HITS = 3,
    H_SIG = 4,
    H_TRUE = 5,
    H_NCLAUSES = 6,
    H_LITS = 7,
    H_JLEN = 8,
    H_GMASK = 9,
    H_GUSED = 10,
    H_GID = 11,
    H_JOURNAL = 12,
    H_IFACE = 13
};

/* Flat journal tags — keep in sync with repro/encoding/arena.py. */
enum {
    TAG_V = 1,
    TAG_C = 2,
    TAG_G = 3,
    TAG_T = 4,
    TAG_RAW = 5,
    TAG_CE = 6,
    TAG_CX = 7,
    TAG_GRP = 8
};

/* Gate opcodes — keep in sync with repro/encoding/circuits.py. */
enum { OP_AND = 1, OP_XOR = 2, OP_ITE = 3, OP_XOR3 = 4, OP_MAJ = 5 };

typedef struct {
    i64 *hdr;
    i64 *lits;
    i64 *cend;
    i64 *cgid;
    i64 *js;
    i64 *gtab;
} Enc;

/* Position hash of a canonical gate key (mirror of arena._hash_key). */
static u64 hash_key(i64 op, i64 k1, i64 k2) {
    u64 h = ((u64)op * 0x9E3779B97F4A7C15ULL)
          ^ ((u64)k1 * 0xC2B2AE3D27D4EB4FULL)
          ^ ((u64)k2 * 0x165667B19E3779F9ULL);
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 32;
    return h;
}

static void flush_vars(Enc *e) {
    i64 *h = e->hdr;
    if (h[H_PENDING]) {
        i64 j = h[H_JLEN];
        e->js[j] = TAG_V;
        e->js[j + 1] = h[H_PENDING];
        h[H_JLEN] = j + 2;
        h[H_PENDING] = 0;
    }
}

static i64 new_var(Enc *e) {
    i64 *h = e->hdr;
    h[H_NUM_VARS] += 1;
    if (h[H_JOURNAL])
        h[H_PENDING] += 1;
    return h[H_NUM_VARS];
}

/* One gate-definition clause (always hard, group id -1). */
static void put_clause(Enc *e, const i64 *clause, int n) {
    i64 *h = e->hdr;
    i64 nc = h[H_NCLAUSES], off = h[H_LITS];
    for (int i = 0; i < n; i++)
        e->lits[off++] = clause[i];
    e->cend[nc] = off;
    e->cgid[nc] = -1;
    h[H_NCLAUSES] = nc + 1;
    h[H_LITS] = off;
}

static i64 lookup(Enc *e, i64 op, i64 k1, i64 k2) {
    i64 mask = e->hdr[H_GMASK];
    i64 *t = e->gtab;
    u64 p = hash_key(op, k1, k2) & (u64)mask;
    for (;;) {
        i64 *slot = t + p * 4;
        if (!slot[0])
            return 0;
        if (slot[0] == op && slot[1] == k1 && slot[2] == k2) {
            e->hdr[H_HITS] += 1;
            return slot[3];
        }
        p = (p + 1) & (u64)mask;
    }
}

static void insert(Enc *e, i64 op, i64 k1, i64 k2, i64 out) {
    i64 mask = e->hdr[H_GMASK];
    i64 *t = e->gtab;
    u64 p = hash_key(op, k1, k2) & (u64)mask;
    while (t[p * 4])
        p = (p + 1) & (u64)mask;
    i64 *slot = t + p * 4;
    slot[0] = op;
    slot[1] = k1;
    slot[2] = k2;
    slot[3] = out;
    e->hdr[H_GUSED] += 1;
}

/* Signature fold + "g" journal record for a fresh gate (mirror of
 * arena._observe: the gate owns its freshly allocated output variable). */
static void observe(Enc *e, i64 op, i64 k1, i64 k2, i64 out, i64 ncl) {
    i64 *h = e->hdr;
    u64 sig = (u64)h[H_SIG];
    sig = (sig ^ (u64)(uint32_t)op) * 0x100000001B3ULL;
    sig = (sig ^ (u64)(uint32_t)k1) * 0x100000001B3ULL;
    sig = (sig ^ (u64)(uint32_t)k2) * 0x100000001B3ULL;
    sig = (sig ^ (u64)(uint32_t)out) * 0x100000001B3ULL;
    h[H_SIG] = (i64)sig;
    h[H_GATES] += 1;
    if (h[H_JOURNAL]) {
        h[H_PENDING] -= 1;
        flush_vars(e);
        i64 j = h[H_JLEN];
        e->js[j] = TAG_G;
        e->js[j + 1] = op;
        e->js[j + 2] = k1;
        e->js[j + 3] = k2;
        e->js[j + 4] = out;
        e->js[j + 5] = ncl;
        h[H_JLEN] = j + 6;
    }
}

/* ------------------------------------------------------------ scalar gates
 *
 * Each mirrors the corresponding CircuitBuilder.bit_* method with
 * simplify=True, fold for fold and clause for clause.
 */

static i64 enc_xor(Enc *e, i64 a, i64 b);

static i64 enc_and(Enc *e, i64 a, i64 b) {
    i64 t = e->hdr[H_TRUE];
    if (a == t)
        return b;
    if (a == -t)
        return -t;
    if (b == t)
        return a;
    if (b == -t)
        return -t;
    if (a == b)
        return a;
    if (a == -b)
        return -t;
    if (a > b) {
        i64 swap = a;
        a = b;
        b = swap;
    }
    i64 out = lookup(e, OP_AND, a, b);
    if (out)
        return out;
    out = new_var(e);
    insert(e, OP_AND, a, b, out);
    observe(e, OP_AND, a, b, out, 3);
    {
        i64 c1[3] = {-a, -b, out};
        i64 c2[2] = {a, -out};
        i64 c3[2] = {b, -out};
        put_clause(e, c1, 3);
        put_clause(e, c2, 2);
        put_clause(e, c3, 2);
    }
    return out;
}

static i64 enc_or(Enc *e, i64 a, i64 b) {
    return -enc_and(e, -a, -b);
}

static i64 enc_xor(Enc *e, i64 a, i64 b) {
    i64 t = e->hdr[H_TRUE];
    if (a == t)
        return -b;
    if (a == -t)
        return b;
    if (b == t)
        return -a;
    if (b == -t)
        return a;
    if (a == b)
        return -t;
    if (a == -b)
        return t;
    int sign = (a < 0) != (b < 0);
    i64 pa = a < 0 ? -a : a;
    i64 pb = b < 0 ? -b : b;
    if (pa > pb) {
        i64 swap = pa;
        pa = pb;
        pb = swap;
    }
    i64 out = lookup(e, OP_XOR, pa, pb);
    if (!out) {
        out = new_var(e);
        insert(e, OP_XOR, pa, pb, out);
        observe(e, OP_XOR, pa, pb, out, 4);
        {
            i64 c1[3] = {-pa, -pb, -out};
            i64 c2[3] = {pa, pb, -out};
            i64 c3[3] = {-pa, pb, out};
            i64 c4[3] = {pa, -pb, out};
            put_clause(e, c1, 3);
            put_clause(e, c2, 3);
            put_clause(e, c3, 3);
            put_clause(e, c4, 3);
        }
    }
    return sign ? -out : out;
}

static i64 enc_ite(Enc *e, i64 cond, i64 tl, i64 el) {
    i64 t = e->hdr[H_TRUE];
    if (cond == t)
        return tl;
    if (cond == -t)
        return el;
    if (tl == el)
        return tl;
    /* Constant branches reduce to AND/OR/XNOR gates, which hash better. */
    if (tl == t)
        return enc_or(e, cond, el);
    if (tl == -t)
        return enc_and(e, -cond, el);
    if (el == t)
        return enc_or(e, -cond, tl);
    if (el == -t)
        return enc_and(e, cond, tl);
    if (tl == -el)
        return -enc_xor(e, cond, tl);
    if (cond < 0) {
        i64 swap = tl;
        cond = -cond;
        tl = el;
        el = swap;
    }
    i64 k1 = cond * (((i64)1) << 32) + tl;
    i64 out = lookup(e, OP_ITE, k1, el);
    if (out)
        return out;
    out = new_var(e);
    insert(e, OP_ITE, k1, el, out);
    observe(e, OP_ITE, k1, el, out, 4);
    {
        i64 c1[3] = {-cond, -tl, out};
        i64 c2[3] = {-cond, tl, -out};
        i64 c3[3] = {cond, -el, out};
        i64 c4[3] = {cond, el, -out};
        put_clause(e, c1, 3);
        put_clause(e, c2, 3);
        put_clause(e, c3, 3);
        put_clause(e, c4, 3);
    }
    return out;
}

static i64 enc_xor3(Enc *e, i64 a, i64 b, i64 c) {
    i64 t = e->hdr[H_TRUE];
    int sign = 0;
    i64 pos[3];
    int n = 0;
    i64 in[3] = {a, b, c};
    for (int i = 0; i < 3; i++) {
        i64 lit = in[i];
        if (lit == t) {
            sign = !sign;
        } else if (lit == -t) {
            /* constant false: drops out of the parity */
        } else {
            if (lit < 0) {
                sign = !sign;
                lit = -lit;
            }
            pos[n++] = lit;
        }
    }
    /* Keep the variables with odd multiplicity, ascending (mirror of the
     * by_var parity reduction). */
    i64 red[3];
    int m = 0;
    for (int i = 0; i < n; i++) {
        int count = 0, seen = 0;
        for (int j = 0; j < n; j++)
            if (pos[j] == pos[i])
                count++;
        for (int j = 0; j < i; j++)
            if (pos[j] == pos[i])
                seen = 1;
        if (!seen && (count & 1))
            red[m++] = pos[i];
    }
    for (int i = 0; i < m; i++)
        for (int j = i + 1; j < m; j++)
            if (red[j] < red[i]) {
                i64 swap = red[i];
                red[i] = red[j];
                red[j] = swap;
            }
    if (m == 0)
        return sign ? t : -t;
    if (m == 1)
        return sign ? -red[0] : red[0];
    if (m == 2) {
        i64 result = enc_xor(e, red[0], red[1]);
        return sign ? -result : result;
    }
    i64 pa = red[0], pb = red[1], pc = red[2];
    i64 k1 = pa * (((i64)1) << 32) + pb;
    i64 out = lookup(e, OP_XOR3, k1, pc);
    if (!out) {
        out = new_var(e);
        insert(e, OP_XOR3, k1, pc, out);
        observe(e, OP_XOR3, k1, pc, out, 8);
        {
            i64 c1[4] = {pa, pb, pc, -out};
            i64 c2[4] = {pa, -pb, -pc, -out};
            i64 c3[4] = {-pa, pb, -pc, -out};
            i64 c4[4] = {-pa, -pb, pc, -out};
            i64 c5[4] = {-pa, -pb, -pc, out};
            i64 c6[4] = {-pa, pb, pc, out};
            i64 c7[4] = {pa, -pb, pc, out};
            i64 c8[4] = {pa, pb, -pc, out};
            put_clause(e, c1, 4);
            put_clause(e, c2, 4);
            put_clause(e, c3, 4);
            put_clause(e, c4, 4);
            put_clause(e, c5, 4);
            put_clause(e, c6, 4);
            put_clause(e, c7, 4);
            put_clause(e, c8, 4);
        }
    }
    return sign ? -out : out;
}

static i64 enc_maj(Enc *e, i64 a, i64 b, i64 c) {
    i64 t = e->hdr[H_TRUE];
    i64 rot[3][3] = {{a, b, c}, {b, c, a}, {c, a, b}};
    for (int i = 0; i < 3; i++) {
        i64 first = rot[i][0], second = rot[i][1], third = rot[i][2];
        if (first == t)
            return enc_or(e, second, third);
        if (first == -t)
            return enc_and(e, second, third);
        if (second == third)
            return second;
        if (second == -third)
            return first;
    }
    int sign = 0;
    i64 lits[3] = {a, b, c};
    if ((a < 0) + (b < 0) + (c < 0) >= 2) {
        sign = 1;
        lits[0] = -a;
        lits[1] = -b;
        lits[2] = -c;
    }
    for (int i = 0; i < 3; i++)
        for (int j = i + 1; j < 3; j++)
            if (lits[j] < lits[i]) {
                i64 swap = lits[i];
                lits[i] = lits[j];
                lits[j] = swap;
            }
    i64 pa = lits[0], pb = lits[1], pc = lits[2];
    i64 k1 = pa * (((i64)1) << 32) + pb;
    i64 out = lookup(e, OP_MAJ, k1, pc);
    if (!out) {
        out = new_var(e);
        insert(e, OP_MAJ, k1, pc, out);
        observe(e, OP_MAJ, k1, pc, out, 6);
        {
            i64 c1[3] = {-pa, -pb, out};
            i64 c2[3] = {-pa, -pc, out};
            i64 c3[3] = {-pb, -pc, out};
            i64 c4[3] = {pa, pb, -out};
            i64 c5[3] = {pa, pc, -out};
            i64 c6[3] = {pb, pc, -out};
            put_clause(e, c1, 3);
            put_clause(e, c2, 3);
            put_clause(e, c3, 3);
            put_clause(e, c4, 3);
            put_clause(e, c5, 3);
            put_clause(e, c6, 3);
        }
    }
    return sign ? -out : out;
}

static i64 gate_dispatch(Enc *e, i64 op, i64 a, i64 b, i64 c) {
    switch (op) {
    case OP_AND:
        return enc_and(e, a, b);
    case OP_XOR:
        return enc_xor(e, a, b);
    case OP_ITE:
        return enc_ite(e, a, b, c);
    case OP_XOR3:
        return enc_xor3(e, a, b, c);
    case OP_MAJ:
        return enc_maj(e, a, b, c);
    }
    return 0;
}

/* ----------------------------------------------------------- entry points */

#define ENC_ARGS i64 *hdr, i64 *lits, i64 *cend, i64 *cgid, i64 *js, i64 *gtab
#define ENC_INIT Enc enc = {hdr, lits, cend, cgid, js, gtab}

i64 repro_enc_gate(ENC_ARGS, i64 op, i64 a, i64 b, i64 c) {
    ENC_INIT;
    return gate_dispatch(&enc, op, a, b, c);
}

/* Ripple-carry adder: out[i] = xor3(a, b, carry); carry = maj(a, b, carry).
 * Mirrors CircuitBuilder.add with simplify=True (carry already resolved by
 * the caller: the false constant, or the explicit carry-in literal). */
void repro_enc_add(ENC_ARGS, i64 *va, i64 *vb, i64 *vout, i64 n, i64 carry) {
    ENC_INIT;
    for (i64 i = 0; i < n; i++) {
        i64 bit_a = va[i], bit_b = vb[i];
        vout[i] = enc_xor3(&enc, bit_a, bit_b, carry);
        carry = enc_maj(&enc, bit_a, bit_b, carry);
    }
}

/* Shift-and-add multiplier over zero-extended operands: va is the control
 * side (the caller already swapped a constant operand into it).  Mirrors
 * the CircuitBuilder.multiply accumulation loop exactly: skip rows with a
 * known-false control bit, AND-mask the partial product, ripple-add. */
void repro_enc_mul(ENC_ARGS, i64 *va, i64 *vb, i64 *vout, i64 n) {
    ENC_INIT;
    i64 t = hdr[H_TRUE];
    i64 acc[64];
    i64 part[64];
    for (i64 i = 0; i < n; i++)
        acc[i] = -t;
    for (i64 shift = 0; shift < n; shift++) {
        i64 control = va[shift];
        if (control == -t)
            continue;
        for (i64 j = 0; j < shift; j++)
            part[j] = -t;
        for (i64 j = 0; j < n - shift; j++)
            part[shift + j] = enc_and(&enc, control, vb[j]);
        i64 carry = -t;
        for (i64 i = 0; i < n; i++) {
            i64 bit_a = acc[i], bit_b = part[i];
            acc[i] = enc_xor3(&enc, bit_a, bit_b, carry);
            carry = enc_maj(&enc, bit_a, bit_b, carry);
        }
    }
    for (i64 i = 0; i < n; i++)
        vout[i] = acc[i];
}

/* Equality: per-bit XNORs LSB-first (gate creation order), then the
 * MSB-first AND chain seeded with the true constant. */
i64 repro_enc_equals(ENC_ARGS, i64 *va, i64 *vb, i64 *scratch, i64 n) {
    ENC_INIT;
    for (i64 i = 0; i < n; i++)
        scratch[i] = -enc_xor(&enc, va[i], vb[i]);
    i64 result = hdr[H_TRUE];
    for (i64 i = n - 1; i >= 0; i--)
        result = enc_and(&enc, result, scratch[i]);
    return result;
}

/* Unsigned less-than: LSB-to-MSB mux chain over the per-bit XORs. */
i64 repro_enc_uless(ENC_ARGS, i64 *va, i64 *vb, i64 n) {
    ENC_INIT;
    i64 less = -hdr[H_TRUE];
    for (i64 i = 0; i < n; i++)
        less = enc_ite(&enc, enc_xor(&enc, va[i], vb[i]), vb[i], less);
    return less;
}

/* Per-bit if-then-else over two vectors. */
void repro_enc_mux(ENC_ARGS, i64 cond, i64 *va, i64 *vb, i64 *vout, i64 n) {
    ENC_INIT;
    for (i64 i = 0; i < n; i++)
        vout[i] = enc_ite(&enc, cond, va[i], vb[i]);
}

/* Rehash the gate table into a fresh zeroed table (Python grew it).
 * Scans old slots in order and re-inserts with linear probing — the same
 * procedure as the Python fallback, so both produce the same layout. */
void repro_enc_rehash(const i64 *old_tab, i64 old_slots, i64 *new_tab,
                      i64 new_mask) {
    for (i64 s = 0; s < old_slots; s++) {
        const i64 *slot = old_tab + s * 4;
        i64 op = slot[0];
        if (!op)
            continue;
        u64 p = hash_key(op, slot[1], slot[2]) & (u64)new_mask;
        while (new_tab[p * 4])
            p = (p + 1) & (u64)new_mask;
        i64 *dst = new_tab + p * 4;
        dst[0] = op;
        dst[1] = slot[1];
        dst[2] = slot[2];
        dst[3] = slot[3];
    }
}
