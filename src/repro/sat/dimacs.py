"""Reading and writing DIMACS CNF and (old-style) WCNF files.

These are used for interoperability (dumping trace formulas for inspection
or for external solvers) and by the test-suite to round-trip formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, TextIO


@dataclass
class CnfFormula:
    """A plain CNF formula: a clause list plus the declared variable count."""

    num_vars: int = 0
    clauses: list[list[int]] = field(default_factory=list)

    def add_clause(self, lits: Iterable[int]) -> None:
        clause = list(lits)
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self.num_vars = max(self.num_vars, abs(lit))
        self.clauses.append(clause)


@dataclass
class WcnfFormula:
    """A weighted partial CNF formula in the classic WCNF convention.

    ``hard`` clauses carry weight ``top``; every soft clause carries a
    positive weight strictly below ``top``.
    """

    num_vars: int = 0
    hard: list[list[int]] = field(default_factory=list)
    soft: list[tuple[int, list[int]]] = field(default_factory=list)

    @property
    def top(self) -> int:
        return sum(weight for weight, _ in self.soft) + 1

    def add_hard(self, lits: Iterable[int]) -> None:
        clause = list(lits)
        self._bump_vars(clause)
        self.hard.append(clause)

    def add_soft(self, lits: Iterable[int], weight: int = 1) -> None:
        if weight <= 0:
            raise ValueError("soft clause weight must be positive")
        clause = list(lits)
        self._bump_vars(clause)
        self.soft.append((weight, clause))

    def _bump_vars(self, clause: list[int]) -> None:
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self.num_vars = max(self.num_vars, abs(lit))


def parse_cnf(text: str) -> CnfFormula:
    """Parse a DIMACS CNF document from a string."""
    formula = CnfFormula()
    declared_vars = 0
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) < 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            declared_vars = int(parts[2])
            continue
        tokens = [int(token) for token in line.split()]
        if tokens and tokens[-1] == 0:
            tokens = tokens[:-1]
        if tokens:
            formula.add_clause(tokens)
    formula.num_vars = max(formula.num_vars, declared_vars)
    return formula


def read_cnf(path: str | Path) -> CnfFormula:
    """Read a DIMACS CNF file."""
    return parse_cnf(Path(path).read_text())


def write_cnf(formula: CnfFormula, target: str | Path | TextIO) -> None:
    """Write a DIMACS CNF file."""
    lines = [f"p cnf {formula.num_vars} {len(formula.clauses)}"]
    lines.extend(" ".join(str(lit) for lit in clause) + " 0" for clause in formula.clauses)
    _write_lines(lines, target)


def parse_wcnf(text: str) -> WcnfFormula:
    """Parse a classic (pre-2022) WCNF document from a string."""
    formula = WcnfFormula()
    top = None
    declared_vars = 0
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) < 4 or parts[1] != "wcnf":
                raise ValueError(f"malformed problem line: {line!r}")
            declared_vars = int(parts[2])
            top = int(parts[4]) if len(parts) > 4 else None
            continue
        tokens = line.split()
        weight = int(tokens[0])
        lits = [int(token) for token in tokens[1:]]
        if lits and lits[-1] == 0:
            lits = lits[:-1]
        if top is not None and weight >= top:
            formula.add_hard(lits)
        else:
            formula.add_soft(lits, weight)
    formula.num_vars = max(formula.num_vars, declared_vars)
    return formula


def read_wcnf(path: str | Path) -> WcnfFormula:
    """Read a classic WCNF file."""
    return parse_wcnf(Path(path).read_text())


def write_wcnf(formula: WcnfFormula, target: str | Path | TextIO) -> None:
    """Write a classic WCNF file (hard clauses carry the ``top`` weight)."""
    top = formula.top
    total = len(formula.hard) + len(formula.soft)
    lines = [f"p wcnf {formula.num_vars} {total} {top}"]
    lines.extend(
        f"{top} " + " ".join(str(lit) for lit in clause) + " 0" for clause in formula.hard
    )
    lines.extend(
        f"{weight} " + " ".join(str(lit) for lit in clause) + " 0"
        for weight, clause in formula.soft
    )
    _write_lines(lines, target)


def _write_lines(lines: list[int | str], target: str | Path | TextIO) -> None:
    text = "\n".join(str(line) for line in lines) + "\n"
    if isinstance(target, (str, Path)):
        Path(target).write_text(text)
    else:
        target.write(text)
