"""Indexed max-heap ordered by variable activity (MiniSAT-style order heap).

The solver keeps every unassigned variable in this heap and always decides on
the variable with the highest VSIDS activity.  The heap supports the three
operations CDCL needs: insert, pop-max, and "bubble up after an activity
bump" (:meth:`ActivityHeap.update`).
"""

from __future__ import annotations


class ActivityHeap:
    """Binary max-heap over variable indices keyed by an activity array.

    The ``activity`` list is owned by the solver and mutated in place; the
    heap only reads it.  ``positions[var]`` is the index of ``var`` inside
    ``self._heap`` or ``-1`` when the variable is not currently in the heap.
    """

    def __init__(self, activity: list[float]) -> None:
        self._activity = activity
        self._heap: list[int] = []
        self._positions: list[int] = []

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, var: int) -> bool:
        return var < len(self._positions) and self._positions[var] >= 0

    def grow_to(self, num_vars: int) -> None:
        """Make room for variables ``1..num_vars``."""
        while len(self._positions) <= num_vars:
            self._positions.append(-1)

    def insert(self, var: int) -> None:
        """Insert ``var`` if it is not already present."""
        self.grow_to(var)
        if self._positions[var] >= 0:
            return
        self._heap.append(var)
        self._positions[var] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def pop_max(self) -> int:
        """Remove and return the variable with the highest activity."""
        top = self._heap[0]
        last = self._heap.pop()
        self._positions[top] = -1
        if self._heap:
            self._heap[0] = last
            self._positions[last] = 0
            self._sift_down(0)
        return top

    def update(self, var: int) -> None:
        """Restore heap order after ``var``'s activity increased."""
        pos = self._positions[var] if var < len(self._positions) else -1
        if pos >= 0:
            self._sift_up(pos)

    def rebuild(self) -> None:
        """Re-heapify after a global activity rescale."""
        heap = self._heap
        for i in range(len(heap) // 2 - 1, -1, -1):
            self._sift_down(i)

    def _sift_up(self, pos: int) -> None:
        heap, positions, activity = self._heap, self._positions, self._activity
        var = heap[pos]
        act = activity[var]
        while pos > 0:
            parent = (pos - 1) >> 1
            pvar = heap[parent]
            if activity[pvar] >= act:
                break
            heap[pos] = pvar
            positions[pvar] = pos
            pos = parent
        heap[pos] = var
        positions[var] = pos

    def _sift_down(self, pos: int) -> None:
        heap, positions, activity = self._heap, self._positions, self._activity
        size = len(heap)
        var = heap[pos]
        act = activity[var]
        while True:
            left = 2 * pos + 1
            if left >= size:
                break
            right = left + 1
            child = left
            if right < size and activity[heap[right]] > activity[heap[left]]:
                child = right
            cvar = heap[child]
            if act >= activity[cvar]:
                break
            heap[pos] = cvar
            positions[cvar] = pos
            pos = child
        heap[pos] = var
        positions[var] = pos
