"""Indexed max-heap ordered by variable activity (MiniSAT-style order heap).

The solver keeps every unassigned variable in this heap and always decides on
the variable with the highest VSIDS activity.  The heap supports the three
operations CDCL needs: insert, pop-max, and "bubble up after an activity
bump" (:meth:`ActivityHeap.update`).

The heap's storage is *shareable with the C search kernel*: when constructed
with ``flat=True`` the heap entries and the per-variable position index live
in ``array('l')`` buffers (and the activity values the solver owns live in an
``array('d')``), so the compiled kernel in ``search.c`` performs the exact
sift-up/sift-down/rebuild sequence over the very same memory.  To make that
possible the logical heap size is held in an explicit counter
(:attr:`_size`) decoupled from the physical buffer length — the buffers are
grown to one slot per variable up front and never shrink, and the C side
reports the post-call size back through its state array
(:meth:`set_size`).  The pure-Python methods below implement the identical
algorithm over either storage type.
"""

from __future__ import annotations

from array import array


class ActivityHeap:
    """Binary max-heap over variable indices keyed by an activity array.

    The ``activity`` buffer is owned by the solver and mutated in place; the
    heap only reads it.  ``positions[var]`` is the index of ``var`` inside
    the heap storage or ``-1`` when the variable is not currently in the
    heap.  Only the first :attr:`_size` entries of the heap buffer are live.
    """

    def __init__(self, activity, flat: bool = False) -> None:
        self._activity = activity
        if flat:
            self._heap = array("l")
            self._positions = array("l")
        else:
            self._heap: list[int] = []
            self._positions: list[int] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, var: int) -> bool:
        return var < len(self._positions) and self._positions[var] >= 0

    # ------------------------------------------------------- C buffer access

    @property
    def size(self) -> int:
        """The logical number of live heap entries."""
        return self._size

    def set_size(self, size: int) -> None:
        """Adopt the heap size the C kernel reports after a search stint."""
        self._size = size

    def heap_buffer(self):
        """The raw heap-entry storage (an ``array('l')`` when flat)."""
        return self._heap

    def positions_buffer(self):
        """The raw per-variable position storage."""
        return self._positions

    # -------------------------------------------------------------- mutation

    def grow_to(self, num_vars: int) -> None:
        """Make room for variables ``1..num_vars``."""
        while len(self._positions) <= num_vars:
            self._positions.append(-1)
        while len(self._heap) < num_vars:
            self._heap.append(0)

    def insert(self, var: int) -> None:
        """Insert ``var`` if it is not already present."""
        self.grow_to(var)
        if self._positions[var] >= 0:
            return
        self._heap[self._size] = var
        self._positions[var] = self._size
        self._sift_up(self._size)
        self._size += 1

    def pop_max(self) -> int:
        """Remove and return the variable with the highest activity."""
        if not self._size:
            # The flat buffers are pre-padded, so without this guard an
            # empty pop would silently hand back a stale entry.
            raise IndexError("pop from an empty activity heap")
        top = self._heap[0]
        self._size -= 1
        last = self._heap[self._size]
        self._positions[top] = -1
        if self._size:
            self._heap[0] = last
            self._positions[last] = 0
            self._sift_down(0)
        return top

    def update(self, var: int) -> None:
        """Restore heap order after ``var``'s activity increased."""
        pos = self._positions[var] if var < len(self._positions) else -1
        if pos >= 0:
            self._sift_up(pos)

    def rebuild(self) -> None:
        """Re-heapify after a global activity rescale."""
        for i in range(self._size // 2 - 1, -1, -1):
            self._sift_down(i)

    def _sift_up(self, pos: int) -> None:
        heap, positions, activity = self._heap, self._positions, self._activity
        var = heap[pos]
        act = activity[var]
        while pos > 0:
            parent = (pos - 1) >> 1
            pvar = heap[parent]
            if activity[pvar] >= act:
                break
            heap[pos] = pvar
            positions[pvar] = pos
            pos = parent
        heap[pos] = var
        positions[var] = pos

    def _sift_down(self, pos: int) -> None:
        heap, positions, activity = self._heap, self._positions, self._activity
        size = self._size
        var = heap[pos]
        act = activity[var]
        while True:
            left = 2 * pos + 1
            if left >= size:
                break
            right = left + 1
            child = left
            if right < size and activity[heap[right]] > activity[heap[left]]:
                child = right
            cvar = heap[child]
            if act >= activity[cvar]:
                break
            heap[pos] = cvar
            positions[cvar] = pos
            pos = child
        heap[pos] = var
        positions[var] = pos
