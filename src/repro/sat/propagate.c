/* The C-accelerated unit-propagation core of repro.sat.solver.
 *
 * This file implements exactly the same algorithm, over exactly the same
 * flat data layout, as Solver._propagate_python — the pure-Python fallback.
 * Any behavioural divergence between the two is a bug; the differential
 * test suite (tests/test_sat_solver.py) compares models, conflicts and
 * statistics of full solver runs across both backends.
 *
 * Data layout (all "long" words, allocated and owned by the Python side):
 *
 *   arena   clause arena.  A clause at offset `ref` occupies
 *             arena[ref]     header: size << 2 | dead << 1 | learnt
 *             arena[ref+1]   next watch pointer for watch slot 0
 *             arena[ref+2]   next watch pointer for watch slot 1
 *             arena[ref+3]   blocker literal for watch slot 0
 *             arena[ref+4]   blocker literal for watch slot 1
 *             arena[ref+5..] the literals (internal 2*var+sign encoding)
 *           A watch pointer packs (ref << 1) | slot; 0 is the list end
 *           (offset 0 of the arena is a sentinel, so no clause has ref 0).
 *   heads   per-literal heads of the intrusive watcher lists.
 *   assigns per-variable value: -1 unassigned, 0 false, 1 true (signed char).
 *   levels  per-variable decision level.
 *   reasons per-variable reason clause ref (0 = decision / no reason).
 *   trail   the assignment trail (fixed capacity: one slot per variable).
 *   state   [qhead, trail_len, current_level, propagation_counter].
 *
 * Returns the conflicting clause ref, or 0 when propagation completes.
 */

long repro_propagate(long *arena, long *heads, signed char *assigns,
                     long *levels, long *reasons, long *trail, long *state)
{
    long qhead = state[0];
    long trail_len = state[1];
    long current_level = state[2];
    long propagated = 0;

    while (qhead < trail_len) {
        long p = trail[qhead++];
        propagated++;
        long false_lit = p ^ 1;
        long *prev = &heads[false_lit];
        long ptr = *prev;
        while (ptr) {
            long ref = ptr >> 1;
            long slot = ptr & 1;
            long next = arena[ref + 1 + slot];
            /* Blocker literal: when the cached literal is already true the
             * clause is satisfied and needs no inspection at all. */
            long blocker = arena[ref + 3 + slot];
            signed char bval = assigns[blocker >> 1];
            if (bval >= 0 && (bval ^ (blocker & 1)) == 1) {
                prev = &arena[ref + 1 + slot];
                ptr = next;
                continue;
            }
            long base = ref + 5;
            long other = arena[base + (1 - slot)];
            if (other != blocker) {
                signed char oval = assigns[other >> 1];
                if (oval >= 0 && (oval ^ (other & 1)) == 1) {
                    arena[ref + 3 + slot] = other; /* refresh the blocker */
                    prev = &arena[ref + 1 + slot];
                    ptr = next;
                    continue;
                }
            }
            long size = arena[ref] >> 2;
            int moved = 0;
            for (long k = 2; k < size; k++) {
                long lit = arena[base + k];
                signed char v = assigns[lit >> 1];
                if (v < 0 || (v ^ (lit & 1)) == 1) {
                    /* Move this watch slot to `lit`. */
                    arena[base + slot] = lit;
                    arena[base + k] = false_lit;
                    arena[ref + 3 + slot] = other;
                    arena[ref + 1 + slot] = heads[lit];
                    heads[lit] = ptr;
                    *prev = next;
                    moved = 1;
                    break;
                }
            }
            if (moved) {
                ptr = next;
                continue;
            }
            /* No replacement: the clause is unit on `other` or conflicting. */
            {
                signed char oval = assigns[other >> 1];
                if (oval >= 0 && (oval ^ (other & 1)) == 0) {
                    state[0] = trail_len; /* consume the queue */
                    state[1] = trail_len;
                    state[3] += propagated;
                    return ref;
                }
            }
            {
                long var = other >> 1;
                assigns[var] = (signed char) ((other & 1) ^ 1);
                levels[var] = current_level;
                reasons[var] = ref;
                trail[trail_len++] = other;
            }
            prev = &arena[ref + 1 + slot];
            ptr = next;
        }
    }
    state[0] = qhead;
    state[1] = trail_len;
    state[3] += propagated;
    return 0;
}
