/* The C-accelerated solver cores of repro.sat.solver.
 *
 * Two entry points are exported, both operating on flat buffers allocated
 * and owned by the Python side:
 *
 *   repro_propagate   two-watched-literal unit propagation (the PR-3 core,
 *                     called once per search step by the pure-Python loop);
 *   repro_search      the full CDCL search kernel: propagation, first-UIP
 *                     conflict analysis with clause learning and local
 *                     minimization, backjumping, VSIDS bump/decay/rescale,
 *                     the activity order heap, phase saving, assumption
 *                     decisions and Luby restarts.
 *
 * Each implements exactly the same algorithm, over exactly the same data
 * layout, as its pure-Python mirror (Solver._propagate_python and
 * Solver._search_python).  Any behavioural divergence between the two is a
 * bug; the differential suites (tests/test_propagation_backends.py,
 * tests/test_search_backends.py) compare models, conflicts, cores and
 * statistics of full solver runs across every backend combination.
 *
 * Data layout (all "long" words unless noted):
 *
 *   arena    clause arena.  A clause at offset `ref` occupies
 *              arena[ref]     header: size << 2 | dead << 1 | learnt
 *              arena[ref+1]   next watch pointer for watch slot 0
 *              arena[ref+2]   next watch pointer for watch slot 1
 *              arena[ref+3]   blocker literal for watch slot 0
 *              arena[ref+4]   blocker literal for watch slot 1
 *              arena[ref+5..] the literals (internal 2*var+sign encoding)
 *            A watch pointer packs (ref << 1) | slot; 0 is the list end
 *            (offset 0 of the arena is a sentinel, so no clause has ref 0).
 *            The arena's *logical* length may trail its physical capacity:
 *            the kernel appends learnt clauses into the preallocated slack
 *            and exits with EXIT_CAPACITY before it could overflow.
 *   heads    per-literal heads of the intrusive watcher lists.
 *   assigns  per-variable value: -1 unassigned, 0 false, 1 true (signed char).
 *   levels   per-variable decision level.
 *   reasons  per-variable reason clause ref (0 = decision / no reason).
 *   trail    the assignment trail (fixed capacity: one slot per variable).
 *   trail_lim   per-decision-level trail bounds (capacity provisioned by the
 *            driver: one slot per variable plus one per assumption).
 *   polarity per-variable saved phase (signed char 0/1).
 *   seen     per-variable conflict-analysis marker (signed char 0/1).
 *   activity per-variable VSIDS activity (double).
 *   heap / heap_pos   the activity order heap and its position index
 *            (heap_pos[var] is -1 when var is not in the heap).
 *   assumptions   the solve call's assumption literals (internal encoding).
 *   scratch  out-buffer receiving the refs of newly learnt clauses; the
 *            driver drains it into Solver._learnts after every call.
 *   bumplog  out-buffer recording clause-activity events in execution
 *            order: a positive entry is a learnt clause ref that was
 *            bumped, a 0 entry is the per-conflict decay marker.  Clause
 *            activities only influence Python-side database reduction, so
 *            the driver replays the log through Solver._clause_bump for a
 *            bit-identical activity table without the kernel needing the
 *            activity dict.
 *   tmp      analysis scratch: the first num_vars+2 words hold the raw
 *            learnt clause, the second num_vars+2 words the minimized one.
 *   state    the 32-word bookkeeping block (see _S_* in solver.py).
 *   fp       [var_inc, var_decay] (doubles, var_inc written back).
 *
 * repro_search returns (and stores in state) one of the EXIT_* codes.
 */

#define HDR 5
#define FLAG_LEARNT 1

#define EXIT_SAT 1
#define EXIT_UNSAT 2
#define EXIT_ASSUMPTION 3
#define EXIT_REDUCE 4
#define EXIT_CAPACITY 5
#define EXIT_CONFLICT_BUDGET 6
#define EXIT_DECISION_BUDGET 7

/* ------------------------------------------------------------ propagation */

static long propagate(long *arena, long *heads, signed char *assigns,
                      long *levels, long *reasons, long *trail,
                      long *qhead_io, long *trail_len_io, long current_level,
                      long *count_io)
{
    long qhead = *qhead_io;
    long trail_len = *trail_len_io;
    long propagated = 0;
    long conflict = 0;

    while (qhead < trail_len) {
        long p = trail[qhead++];
        propagated++;
        long false_lit = p ^ 1;
        long *prev = &heads[false_lit];
        long ptr = *prev;
        while (ptr) {
            long ref = ptr >> 1;
            long slot = ptr & 1;
            long next = arena[ref + 1 + slot];
            /* Blocker literal: when the cached literal is already true the
             * clause is satisfied and needs no inspection at all. */
            long blocker = arena[ref + 3 + slot];
            signed char bval = assigns[blocker >> 1];
            if (bval >= 0 && (bval ^ (blocker & 1)) == 1) {
                prev = &arena[ref + 1 + slot];
                ptr = next;
                continue;
            }
            long base = ref + HDR;
            long other = arena[base + (1 - slot)];
            if (other != blocker) {
                signed char oval = assigns[other >> 1];
                if (oval >= 0 && (oval ^ (other & 1)) == 1) {
                    arena[ref + 3 + slot] = other; /* refresh the blocker */
                    prev = &arena[ref + 1 + slot];
                    ptr = next;
                    continue;
                }
            }
            long size = arena[ref] >> 2;
            int moved = 0;
            for (long k = 2; k < size; k++) {
                long lit = arena[base + k];
                signed char v = assigns[lit >> 1];
                if (v < 0 || (v ^ (lit & 1)) == 1) {
                    /* Move this watch slot to `lit`. */
                    arena[base + slot] = lit;
                    arena[base + k] = false_lit;
                    arena[ref + 3 + slot] = other;
                    arena[ref + 1 + slot] = heads[lit];
                    heads[lit] = ptr;
                    *prev = next;
                    moved = 1;
                    break;
                }
            }
            if (moved) {
                ptr = next;
                continue;
            }
            /* No replacement: the clause is unit on `other` or conflicting. */
            {
                signed char oval = assigns[other >> 1];
                if (oval >= 0 && (oval ^ (other & 1)) == 0) {
                    qhead = trail_len; /* consume the queue */
                    conflict = ref;
                    goto done;
                }
            }
            {
                long var = other >> 1;
                assigns[var] = (signed char) ((other & 1) ^ 1);
                levels[var] = current_level;
                reasons[var] = ref;
                trail[trail_len++] = other;
            }
            prev = &arena[ref + 1 + slot];
            ptr = next;
        }
    }
done:
    *qhead_io = qhead;
    *trail_len_io = trail_len;
    *count_io += propagated;
    return conflict;
}

long repro_propagate(long *arena, long *heads, signed char *assigns,
                     long *levels, long *reasons, long *trail, long *state)
{
    long qhead = state[0];
    long trail_len = state[1];
    long conflict = propagate(arena, heads, assigns, levels, reasons, trail,
                              &qhead, &trail_len, state[2], &state[3]);
    state[0] = qhead;
    state[1] = trail_len;
    return conflict;
}

/* ------------------------------------------------------------- order heap */

static void heap_sift_up(long *heap, long *pos, double *act, long i)
{
    long var = heap[i];
    double a = act[var];
    while (i > 0) {
        long parent = (i - 1) >> 1;
        long pvar = heap[parent];
        if (act[pvar] >= a)
            break;
        heap[i] = pvar;
        pos[pvar] = i;
        i = parent;
    }
    heap[i] = var;
    pos[var] = i;
}

static void heap_sift_down(long *heap, long *pos, double *act, long size, long i)
{
    long var = heap[i];
    double a = act[var];
    for (;;) {
        long left = 2 * i + 1;
        if (left >= size)
            break;
        long right = left + 1;
        long child = left;
        if (right < size && act[heap[right]] > act[heap[left]])
            child = right;
        long cvar = heap[child];
        if (a >= act[cvar])
            break;
        heap[i] = cvar;
        pos[cvar] = i;
        i = child;
    }
    heap[i] = var;
    pos[var] = i;
}

static void heap_insert(long *heap, long *pos, double *act, long *size, long var)
{
    if (pos[var] >= 0)
        return;
    heap[*size] = var;
    pos[var] = *size;
    heap_sift_up(heap, pos, act, *size);
    (*size)++;
}

static long heap_pop(long *heap, long *pos, double *act, long *size)
{
    long top = heap[0];
    (*size)--;
    long last = heap[*size];
    pos[top] = -1;
    if (*size) {
        heap[0] = last;
        pos[last] = 0;
        heap_sift_down(heap, pos, act, *size, 0);
    }
    return top;
}

static void var_bump(double *act, double *fp, long num_vars,
                     long *heap, long *pos, long *heap_size, long var)
{
    act[var] += fp[0];
    if (act[var] > 1e100) {
        for (long v = 1; v <= num_vars; v++)
            act[v] *= 1e-100;
        fp[0] *= 1e-100;
        for (long i = *heap_size / 2 - 1; i >= 0; i--)
            heap_sift_down(heap, pos, act, *heap_size, i);
    }
    if (pos[var] >= 0)
        heap_sift_up(heap, pos, act, pos[var]);
}

/* --------------------------------------------------------- search helpers */

static void attach(long *arena, long *heads, long ref)
{
    long base = ref + HDR;
    long lit0 = arena[base];
    long lit1 = arena[base + 1];
    arena[ref + 3] = lit1;
    arena[ref + 4] = lit0;
    arena[ref + 1] = heads[lit0];
    heads[lit0] = ref << 1;
    arena[ref + 2] = heads[lit1];
    heads[lit1] = (ref << 1) | 1;
}

static void enqueue(signed char *assigns, long *levels, long *reasons,
                    long *trail, long *trail_len, long level_count,
                    long ilit, long reason_ref)
{
    long var = ilit >> 1;
    if (assigns[var] >= 0)
        return; /* mirror Solver._enqueue: already assigned, nothing to do */
    assigns[var] = (signed char) ((ilit & 1) ^ 1);
    levels[var] = level_count;
    reasons[var] = reason_ref;
    trail[(*trail_len)++] = ilit;
}

static void cancel_until(long *trail, long *trail_lim, signed char *assigns,
                         signed char *polarity, long *reasons,
                         long *heap, long *pos, double *act, long *heap_size,
                         long *trail_len, long *qhead, long *level_count,
                         long *search_floor, long level)
{
    if (*level_count <= level)
        return;
    if (level < *search_floor)
        *search_floor = level;
    long bound = trail_lim[level];
    for (long index = *trail_len - 1; index >= bound; index--) {
        long ilit = trail[index];
        long var = ilit >> 1;
        assigns[var] = -1;
        polarity[var] = (signed char) (((ilit & 1) == 0) ? 1 : 0);
        reasons[var] = 0;
        heap_insert(heap, pos, act, heap_size, var);
    }
    *trail_len = bound;
    *level_count = level;
    *qhead = bound;
}

static long luby(long index)
{
    /* The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ... (0-based index). */
    long size = 1, sequence = 0;
    while (size < index + 1) {
        sequence++;
        size = 2 * size + 1;
    }
    while (size - 1 != index) {
        size = (size - 1) / 2;
        sequence--;
        index %= size;
    }
    return 1L << sequence;
}

/* First-UIP conflict analysis with seen-buffer local minimization.  The raw
 * learnt clause is assembled in tmp[0..], the minimized clause (asserting
 * literal first, deepest remaining literal second) in tmp[num_vars+2..].
 * Returns the backjump level and stores the minimized length in *out_len. */
static long analyze(long *arena, long *levels, long *reasons, long *trail,
                    signed char *seen, double *act, double *fp, long num_vars,
                    long *heap, long *pos, long *heap_size,
                    long trail_len, long level_count, long conflict,
                    long *tmp, long *bumplog, long *log_len,
                    long *out_len, long *minimized_count)
{
    long *learnt = tmp;
    long *minimized = tmp + num_vars + 2;
    long llen = 1;
    long counter = 0;
    long p = -1;
    long index = trail_len - 1;
    long clause = conflict;

    for (;;) {
        if (arena[clause] & FLAG_LEARNT)
            bumplog[(*log_len)++] = clause;
        long base = clause + HDR;
        long size = arena[clause] >> 2;
        for (long k = 0; k < size; k++) {
            long q = arena[base + k];
            if (p != -1 && (q >> 1) == (p >> 1))
                continue;
            long var = q >> 1;
            if (!seen[var] && levels[var] > 0) {
                seen[var] = 1;
                var_bump(act, fp, num_vars, heap, pos, heap_size, var);
                if (levels[var] >= level_count)
                    counter++;
                else
                    learnt[llen++] = q;
            }
        }
        while (!seen[trail[index] >> 1])
            index--;
        p = trail[index];
        clause = reasons[p >> 1];
        seen[p >> 1] = 0;
        counter--;
        index--;
        if (counter == 0)
            break;
    }
    learnt[0] = p ^ 1;

    /* Local minimization over the shared seen buffer: seen[var] == 1 holds
     * exactly for the vars of learnt[1..] here (the UIP was cleared when
     * dequeued and cannot occur in a lower-level literal's reason).  A
     * literal is redundant when every other literal of its reason clause
     * is already in the learnt clause or fixed at level 0. */
    long mlen = 1;
    minimized[0] = learnt[0];
    for (long i = 1; i < llen; i++) {
        long q = learnt[i];
        long reason = reasons[q >> 1];
        if (!reason) {
            minimized[mlen++] = q;
            continue;
        }
        int redundant = 1;
        long rbase = reason + HDR;
        long rsize = arena[reason] >> 2;
        for (long k = 0; k < rsize; k++) {
            long var = arena[rbase + k] >> 1;
            if (var != (q >> 1) && !seen[var] && levels[var] > 0) {
                redundant = 0;
                break;
            }
        }
        if (redundant)
            continue;
        minimized[mlen++] = q;
    }
    for (long i = 1; i < llen; i++)
        seen[learnt[i] >> 1] = 0;
    *minimized_count += llen - mlen;

    long backjump = 0;
    if (mlen > 1) {
        long max_index = 1;
        long max_level = levels[minimized[1] >> 1];
        for (long i = 2; i < mlen; i++) {
            long lvl = levels[minimized[i] >> 1];
            if (lvl > max_level) {
                max_level = lvl;
                max_index = i;
            }
        }
        long swap = minimized[1];
        minimized[1] = minimized[max_index];
        minimized[max_index] = swap;
        backjump = max_level;
    }
    *out_len = mlen;
    return backjump;
}

/* ------------------------------------------------------------ the kernel */

long repro_search(long *arena, long *heads, signed char *assigns, long *levels,
                  long *reasons, long *trail, long *trail_lim,
                  signed char *polarity, signed char *seen, double *activity,
                  long *heap, long *heap_pos, long *assumptions,
                  long *scratch, long *bumplog, long *tmp,
                  long *state, double *fp)
{
    long qhead = state[0];
    long trail_len = state[1];
    long level_count = state[2];
    long arena_len = state[4];
    long arena_cap = state[5];
    long heap_size = state[6];
    long num_vars = state[7];
    long n_assumptions = state[8];
    long learnt_count = state[9];
    long max_learnts = state[10];
    long restart_index = state[11];
    long conflict_budget = state[12];
    long conflicts_since_restart = state[13];
    long total_conflicts = state[14];
    long max_conflicts = state[15];
    long free_decisions = state[16];
    long max_decisions = state[17];
    long search_floor = state[18];
    long scratch_len = state[28];
    long scratch_cap = state[29];
    long log_len = state[30];
    long log_cap = state[31];
    long exit_reason = 0;
    long exit_payload = 0;

    for (;;) {
        /* One conflict analysis may allocate a learnt clause of up to
         * num_vars literals, log one bump per resolved clause plus the
         * learnt ref and the decay sentinel, and push one scratch ref:
         * leave for Python before any of that could overflow. */
        if (arena_cap - arena_len < num_vars + HDR + 2 ||
            scratch_len >= scratch_cap ||
            log_cap - log_len < num_vars + 3) {
            exit_reason = EXIT_CAPACITY;
            break;
        }

        long conflict = propagate(arena, heads, assigns, levels, reasons,
                                  trail, &qhead, &trail_len, level_count,
                                  &state[3]);
        if (conflict) {
            state[21]++; /* conflicts */
            conflicts_since_restart++;
            total_conflicts++;
            if (max_conflicts >= 0 && total_conflicts > max_conflicts) {
                exit_reason = EXIT_CONFLICT_BUDGET;
                break;
            }
            if (level_count == 0) {
                exit_reason = EXIT_UNSAT;
                break;
            }
            long mlen = 0;
            long backjump = analyze(arena, levels, reasons, trail, seen,
                                    activity, fp, num_vars, heap, heap_pos,
                                    &heap_size, trail_len, level_count,
                                    conflict, tmp, bumplog, &log_len,
                                    &mlen, &state[26]);
            state[25]++; /* analyses */
            state[27] += level_count - backjump; /* backjumped levels */
            cancel_until(trail, trail_lim, assigns, polarity, reasons,
                         heap, heap_pos, activity, &heap_size,
                         &trail_len, &qhead, &level_count, &search_floor,
                         backjump);
            long *clause = tmp + num_vars + 2;
            if (mlen == 1) {
                enqueue(assigns, levels, reasons, trail, &trail_len,
                        level_count, clause[0], 0);
            } else {
                long ref = arena_len;
                arena[ref] = (mlen << 2) | FLAG_LEARNT;
                arena[ref + 1] = 0;
                arena[ref + 2] = 0;
                arena[ref + 3] = 0;
                arena[ref + 4] = 0;
                for (long i = 0; i < mlen; i++)
                    arena[ref + HDR + i] = clause[i];
                arena_len += HDR + mlen;
                attach(arena, heads, ref);
                scratch[scratch_len++] = ref;
                bumplog[log_len++] = ref;
                state[24]++; /* learnt clauses */
                learnt_count++;
                enqueue(assigns, levels, reasons, trail, &trail_len,
                        level_count, clause[0], ref);
            }
            bumplog[log_len++] = 0; /* per-conflict clause-decay marker */
            fp[0] /= fp[1];         /* VSIDS decay: var_inc /= var_decay */
            continue;
        }

        if (conflicts_since_restart >= conflict_budget) {
            state[23]++; /* restarts */
            restart_index++;
            conflict_budget = 100 * luby(restart_index);
            conflicts_since_restart = 0;
            /* Assumption-aware restart: keep the established assumption
             * levels and their propagations, undoing only the free
             * decisions above them. */
            cancel_until(trail, trail_lim, assigns, polarity, reasons,
                         heap, heap_pos, activity, &heap_size,
                         &trail_len, &qhead, &level_count, &search_floor,
                         level_count < n_assumptions ? level_count
                                                     : n_assumptions);
            continue;
        }

        if (learnt_count >= max_learnts + trail_len) {
            exit_reason = EXIT_REDUCE;
            break;
        }

        long next_lit = -1;
        while (level_count < n_assumptions) {
            long assumption = assumptions[level_count];
            signed char av = assigns[assumption >> 1];
            long value = (av < 0) ? -1 : (av ^ (assumption & 1));
            if (value == 1) {
                trail_lim[level_count++] = trail_len;
            } else if (value == 0) {
                exit_reason = EXIT_ASSUMPTION;
                exit_payload = assumption;
                goto out;
            } else {
                next_lit = assumption;
                break;
            }
        }
        if (next_lit < 0) {
            while (heap_size > 0) {
                long var = heap_pop(heap, heap_pos, activity, &heap_size);
                if (assigns[var] < 0) {
                    state[22]++; /* decisions */
                    next_lit = 2 * var + (polarity[var] ? 0 : 1);
                    break;
                }
            }
            if (next_lit < 0) {
                exit_reason = EXIT_SAT;
                break;
            }
            free_decisions++;
            if (max_decisions >= 0 && free_decisions > max_decisions) {
                /* The branch variable was popped but never enqueued:
                 * reinsert it so it is not lost to future searches
                 * (mirrors Solver._search_python). */
                heap_insert(heap, heap_pos, activity, &heap_size,
                            next_lit >> 1);
                exit_reason = EXIT_DECISION_BUDGET;
                break;
            }
        }
        trail_lim[level_count++] = trail_len;
        enqueue(assigns, levels, reasons, trail, &trail_len, level_count,
                next_lit, 0);
    }
out:
    state[0] = qhead;
    state[1] = trail_len;
    state[2] = level_count;
    state[4] = arena_len;
    state[6] = heap_size;
    state[9] = learnt_count;
    state[11] = restart_index;
    state[12] = conflict_budget;
    state[13] = conflicts_since_restart;
    state[14] = total_conflicts;
    state[16] = free_decisions;
    state[18] = search_floor;
    state[19] = exit_reason;
    state[20] = exit_payload;
    state[28] = scratch_len;
    state[30] = log_len;
    return exit_reason;
}
