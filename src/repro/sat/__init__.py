"""Conflict-driven clause learning (CDCL) SAT solver substrate.

The paper's tool chain relies on MiniSAT2 and on the SAT engine inside the
MSUnCORE MaxSAT solver.  Neither is available here, so this package provides
a self-contained CDCL solver with the features the rest of the reproduction
needs:

* incremental solving under *assumptions* (used to implement selector
  variables / clause groups),
* extraction of an unsatisfiable core over the assumptions (used by the
  core-guided MaxSAT algorithms),
* DIMACS CNF and WCNF reading/writing for interoperability and debugging.

The public entry points are :class:`Solver`, :data:`TRUE_LIT` helpers in
:mod:`repro.sat.literals`, and the DIMACS helpers in :mod:`repro.sat.dimacs`.
"""

from repro.sat.literals import neg, lit_to_var, var_to_lit
from repro.sat.solver import Solver, SolveResult

__all__ = ["Solver", "SolveResult", "neg", "lit_to_var", "var_to_lit"]
