"""Conflict-driven clause learning (CDCL) SAT solver substrate.

The paper's tool chain relies on MiniSAT2 and on the SAT engine inside the
MSUnCORE MaxSAT solver.  Neither is available here, so this package provides
a self-contained CDCL solver with the features the rest of the reproduction
needs:

* incremental solving under *assumptions* (used to implement selector
  variables / clause groups),
* extraction of an unsatisfiable core over the assumptions (used by the
  core-guided MaxSAT algorithms),
* DIMACS CNF and WCNF reading/writing for interoperability and debugging.

The hottest loop — unit propagation — optionally runs in a small C core
compiled on first use (see :mod:`repro.sat._ccore` and ``propagate.c``);
:func:`propagation_backend` reports which implementation new solvers will
use (``"c"`` or ``"python"``), and the ``REPRO_PROPAGATION`` environment
variable (``auto``/``python``/``c``) controls the selection.  Both backends
implement the identical algorithm over the same flat clause-arena layout
and produce identical models, conflicts and statistics.

The public entry points are :class:`Solver`, :data:`TRUE_LIT` helpers in
:mod:`repro.sat.literals`, and the DIMACS helpers in :mod:`repro.sat.dimacs`.
"""

from repro.sat.literals import neg, lit_to_var, var_to_lit
from repro.sat.solver import Solver, SolveResult, SolverStats


def propagation_backend() -> str:
    """Which propagation core new :class:`Solver` instances use by default.

    ``"c"`` when the compiled core is (or can be) loaded, ``"python"``
    otherwise.  Force the fallback with ``REPRO_PROPAGATION=python``;
    require the C core with ``REPRO_PROPAGATION=c``.
    """
    from repro.sat import _ccore

    return _ccore.backend()


def propagation_core_unavailable_reason():
    """Why the C core is unavailable (``None`` when it loaded fine)."""
    from repro.sat import _ccore

    _ccore.load_core()
    return _ccore.unavailable_reason


__all__ = [
    "Solver",
    "SolveResult",
    "SolverStats",
    "neg",
    "lit_to_var",
    "var_to_lit",
    "propagation_backend",
    "propagation_core_unavailable_reason",
]
