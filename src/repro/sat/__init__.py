"""Conflict-driven clause learning (CDCL) SAT solver substrate.

The paper's tool chain relies on MiniSAT2 and on the SAT engine inside the
MSUnCORE MaxSAT solver.  Neither is available here, so this package provides
a self-contained CDCL solver with the features the rest of the reproduction
needs:

* incremental solving under *assumptions* (used to implement selector
  variables / clause groups),
* extraction of an unsatisfiable core over the assumptions (used by the
  core-guided MaxSAT algorithms),
* DIMACS CNF and WCNF reading/writing for interoperability and debugging.

The solver's hot loops optionally run in a small C library compiled on
first use (see :mod:`repro.sat._ccore` and ``search.c``), with two
independently selectable layers:

* **propagation** — two-watched-literal unit propagation
  (``REPRO_PROPAGATION``, reported by :func:`propagation_backend`);
* **search** — the full CDCL search kernel: propagation plus first-UIP
  conflict analysis with clause learning and minimization, backjumping,
  VSIDS activities, the order heap, phase saving, assumption decisions and
  restarts (``REPRO_SEARCH``, reported by :func:`search_backend`; when the
  variable is unset the search backend follows the propagation backend).

Every backend combination implements the identical algorithms over the same
flat buffers and produces identical models, conflicts, cores and
statistics; the pure-Python loops remain the always-tested fallback.

The public entry points are :class:`Solver`, :data:`TRUE_LIT` helpers in
:mod:`repro.sat.literals`, and the DIMACS helpers in :mod:`repro.sat.dimacs`.
"""

from repro.sat.literals import neg, lit_to_var, var_to_lit
from repro.sat.solver import Solver, SolveResult, SolverStats


def propagation_backend() -> str:
    """Which propagation core new :class:`Solver` instances use by default.

    ``"c"`` when the compiled core is (or can be) loaded, ``"python"``
    otherwise.  Force the fallback with ``REPRO_PROPAGATION=python``;
    require the C core with ``REPRO_PROPAGATION=c``.
    """
    from repro.sat import _ccore

    return _ccore.backend()


def search_backend() -> str:
    """Which search kernel new :class:`Solver` instances use by default.

    ``"c"`` when the compiled search kernel is (or can be) loaded,
    ``"python"`` otherwise.  Controlled by ``REPRO_SEARCH``
    (``auto``/``python``/``c``); when unset it inherits the
    ``REPRO_PROPAGATION`` mode so a pinned pure-Python run stays pure end
    to end.
    """
    from repro.sat import _ccore

    return _ccore.search_backend()


def propagation_core_unavailable_reason():
    """Why the C library is unavailable (``None`` when it loaded fine)."""
    from repro.sat import _ccore

    _ccore.load_core()
    return _ccore.unavailable_reason


__all__ = [
    "Solver",
    "SolveResult",
    "SolverStats",
    "neg",
    "lit_to_var",
    "var_to_lit",
    "propagation_backend",
    "search_backend",
    "propagation_core_unavailable_reason",
]
