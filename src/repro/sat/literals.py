"""Literal and variable helpers.

Externally (user-facing API, DIMACS files) literals are non-zero signed
integers: ``+v`` is the positive literal of variable ``v`` and ``-v`` its
negation, exactly as in the DIMACS convention.  This module provides the
small helpers shared by the solver, the encoders and the MaxSAT layer.
"""

from __future__ import annotations

from typing import Iterable


def neg(lit: int) -> int:
    """Return the negation of a signed literal."""
    return -lit


def lit_to_var(lit: int) -> int:
    """Return the (positive) variable index underlying ``lit``."""
    return lit if lit > 0 else -lit


def var_to_lit(var: int, positive: bool = True) -> int:
    """Build a literal for ``var`` with the requested polarity."""
    if var <= 0:
        raise ValueError(f"variable index must be positive, got {var}")
    return var if positive else -var


def is_positive(lit: int) -> bool:
    """True when ``lit`` is a positive literal."""
    return lit > 0


def normalize_clause(lits: Iterable[int]) -> list[int] | None:
    """Sort a clause, drop duplicate literals, and detect tautologies.

    Returns ``None`` when the clause is a tautology (contains both ``l`` and
    ``-l``), otherwise the deduplicated literal list in ascending order of
    variable index.
    """
    seen: set[int] = set()
    out: list[int] = []
    for lit in lits:
        if lit == 0:
            raise ValueError("0 is not a valid literal")
        if -lit in seen:
            return None
        if lit not in seen:
            seen.add(lit)
            out.append(lit)
    out.sort(key=lambda l: (lit_to_var(l), l < 0))
    return out
