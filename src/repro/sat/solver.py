"""A conflict-driven clause-learning (CDCL) SAT solver.

The solver follows the classic MiniSAT architecture: two-literal watching,
first-UIP conflict analysis with clause learning, VSIDS variable activities,
phase saving, Luby restarts and activity-based deletion of learnt clauses.

Two features beyond plain satisfiability are load-bearing for the rest of
the reproduction:

* **Assumptions.**  :meth:`Solver.solve` accepts a sequence of literals that
  are treated as temporary decisions.  The BugAssist encoding attaches one
  *selector variable* per program statement; solving under assumptions over
  the selectors is how the MaxSAT layer enables and disables statements.
* **Assumption cores.**  When the instance is unsatisfiable under the given
  assumptions, :meth:`Solver.unsat_core` returns a subset of the assumptions
  that is already contradictory.  The core-guided MaxSAT algorithms
  (Fu–Malik, MSU3) are built directly on this facility.
* **Clause-database retention.**  :meth:`Solver.add_clause` may be called
  again after any number of :meth:`Solver.solve` calls (solving always
  returns to decision level 0): problem clauses, learnt clauses, variable
  activities and saved phases all persist, so the MaxSAT layer can block a
  correction set with a new hard clause and re-solve incrementally instead
  of rebuilding the instance from scratch.

Literals use the DIMACS convention (non-zero signed integers) at the API
boundary and a packed even/odd encoding internally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.sat.heap import ActivityHeap

_UNDEF = -1
_FALSE = 0
_TRUE = 1


class _Clause(list):
    """A clause: a list of internal literals plus learnt-clause metadata."""

    __slots__ = ("learnt", "activity")

    def __init__(self, lits: Iterable[int], learnt: bool = False) -> None:
        super().__init__(lits)
        self.learnt = learnt
        self.activity = 0.0


@dataclass
class SolveResult:
    """Outcome of a single :meth:`Solver.solve` call."""

    satisfiable: bool
    model: Optional[dict[int, bool]] = None
    core: Optional[list[int]] = None


@dataclass
class SolverStats:
    """Cumulative solver statistics, exposed for benchmarks and ablations."""

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learnt_clauses: int = 0
    deleted_clauses: int = 0
    solve_calls: int = 0
    max_vars: int = 0
    extra: dict = field(default_factory=dict)


class Solver:
    """Incremental CDCL SAT solver with assumption support.

    Typical use::

        solver = Solver()
        x, y = solver.new_var(), solver.new_var()
        solver.add_clause([x, y])
        solver.add_clause([-x, y])
        assert solver.solve()
        assert solver.model_value(y) is True
    """

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: list[_Clause] = []
        self._learnts: list[_Clause] = []
        self._watches: list[list[_Clause]] = [[], []]
        self._assigns: list[int] = [_UNDEF]
        self._level: list[int] = [0]
        self._reason: list[Optional[_Clause]] = [None]
        self._polarity: list[bool] = [False]
        self._activity: list[float] = [0.0]
        self._seen: list[int] = [0]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._order = ActivityHeap(self._activity)
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._ok = True
        self._model: Optional[list[int]] = None
        self._core: Optional[list[int]] = None
        self.stats = SolverStats()
        self.max_conflicts: Optional[int] = None

    # ------------------------------------------------------------------ API

    @property
    def num_vars(self) -> int:
        """Number of variables allocated so far."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of problem (non-learnt) clauses currently stored."""
        return len(self._clauses)

    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self._num_vars += 1
        self._assigns.append(_UNDEF)
        self._level.append(0)
        self._reason.append(None)
        self._polarity.append(False)
        self._activity.append(0.0)
        self._seen.append(0)
        self._watches.append([])
        self._watches.append([])
        self._order.insert(self._num_vars)
        self.stats.max_vars = max(self.stats.max_vars, self._num_vars)
        return self._num_vars

    def ensure_vars(self, max_var: int) -> None:
        """Allocate variables up to ``max_var`` (inclusive) if needed."""
        while self._num_vars < max_var:
            self.new_var()

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause of signed literals.

        Returns ``False`` when the clause makes the formula trivially
        unsatisfiable at the top level (and the solver becomes permanently
        unsatisfiable), ``True`` otherwise.
        """
        if not self._ok:
            return False
        if self._trail_lim:
            raise RuntimeError("clauses may only be added at decision level 0")
        seen: set[int] = set()
        internal: list[int] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self.ensure_vars(abs(lit))
            ilit = self._to_internal(lit)
            if ilit ^ 1 in seen:
                return True  # tautology: trivially satisfied
            if ilit in seen:
                continue
            value = self._lit_value(ilit)
            if value == _TRUE and self._level[ilit >> 1] == 0:
                return True  # already satisfied at top level
            if value == _FALSE and self._level[ilit >> 1] == 0:
                continue  # falsified at top level: drop the literal
            seen.add(ilit)
            internal.append(ilit)
        if not internal:
            self._ok = False
            return False
        if len(internal) == 1:
            if not self._enqueue(internal[0], None):
                self._ok = False
                return False
            self._ok = self._propagate() is None
            return self._ok
        clause = _Clause(internal, learnt=False)
        self._attach(clause)
        self._clauses.append(clause)
        return True

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> bool:
        """Add many clauses; returns ``False`` if any made the formula unsat."""
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Solve under the given assumption literals.

        Returns ``True`` if satisfiable (a model is then available through
        :meth:`model_value` / :meth:`get_model`), ``False`` otherwise (an
        assumption core is then available through :meth:`unsat_core`).
        """
        self.stats.solve_calls += 1
        self._model = None
        self._core = None
        if not self._ok:
            self._core = []
            return False
        for lit in assumptions:
            if lit == 0:
                raise ValueError("0 is not a valid assumption literal")
            self.ensure_vars(abs(lit))
        internal_assumptions = [self._to_internal(lit) for lit in assumptions]
        result = self._search(internal_assumptions)
        self._cancel_until(0)
        return result

    def solve_result(self, assumptions: Sequence[int] = ()) -> SolveResult:
        """Like :meth:`solve` but returning a :class:`SolveResult` record."""
        sat = self.solve(assumptions)
        if sat:
            return SolveResult(True, model=self.get_model())
        return SolveResult(False, core=self.unsat_core())

    def model_value(self, lit: int) -> Optional[bool]:
        """Value of a signed literal in the last model (None if unknown var)."""
        if self._model is None:
            raise RuntimeError("no model available; last solve was UNSAT or never ran")
        var = abs(lit)
        if var > self._num_vars or var >= len(self._model):
            return None
        value = self._model[var]
        if value == _UNDEF:
            return None
        truth = value == _TRUE
        return truth if lit > 0 else not truth

    def get_model(self, complete: bool = False) -> dict[int, bool]:
        """Return the last model as a ``{var: bool}`` dictionary.

        With ``complete=True`` variables the search left unassigned (don't
        cares, or variables allocated after the solve) take their saved
        phase instead of being omitted, yielding a total assignment.
        """
        if self._model is None:
            raise RuntimeError("no model available; last solve was UNSAT or never ran")
        model: dict[int, bool] = {}
        for var in range(1, self._num_vars + 1):
            value = self._model[var] if var < len(self._model) else _UNDEF
            if value != _UNDEF:
                model[var] = value == _TRUE
            elif complete:
                model[var] = self._polarity[var]
        return model

    def root_value(self, lit: int) -> Optional[bool]:
        """Value of a literal fixed at decision level 0, or ``None``.

        Unlike :meth:`model_value` this does not depend on the last solve:
        it reports only permanent consequences of the clause database (unit
        clauses and their propagations).
        """
        var = lit if lit > 0 else -lit
        if var > self._num_vars:
            return None
        assign = self._assigns[var]
        if assign == _UNDEF or self._level[var] != 0:
            return None
        truth = assign == _TRUE
        return truth if lit > 0 else not truth

    def unsat_core(self) -> list[int]:
        """Subset of the assumptions that is unsatisfiable with the clauses."""
        if self._core is None:
            raise RuntimeError("no core available; last solve was SAT or never ran")
        return list(self._core)

    # ------------------------------------------------------------ internals

    @staticmethod
    def _to_internal(lit: int) -> int:
        var = lit if lit > 0 else -lit
        return 2 * var + (0 if lit > 0 else 1)

    @staticmethod
    def _to_external(ilit: int) -> int:
        var = ilit >> 1
        return var if (ilit & 1) == 0 else -var

    def _lit_value(self, ilit: int) -> int:
        assign = self._assigns[ilit >> 1]
        if assign == _UNDEF:
            return _UNDEF
        return assign ^ (ilit & 1)

    def _attach(self, clause: _Clause) -> None:
        self._watches[clause[0]].append(clause)
        self._watches[clause[1]].append(clause)

    def _enqueue(self, ilit: int, reason: Optional[_Clause]) -> bool:
        value = self._lit_value(ilit)
        if value != _UNDEF:
            return value == _TRUE
        var = ilit >> 1
        self._assigns[var] = (ilit & 1) ^ 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(ilit)
        return True

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or ``None``.

        This is the solver's hottest loop: literal evaluation is inlined
        (``assigns[var] ^ (lit & 1)`` instead of :meth:`_lit_value` calls)
        and the trail/watch structures are bound to locals.
        """
        watches = self._watches
        assigns = self._assigns
        trail = self._trail
        level = self._level
        reason = self._reason
        current_level = len(self._trail_lim)
        qhead = self._qhead
        propagated = 0
        while qhead < len(trail):
            p = trail[qhead]
            qhead += 1
            propagated += 1
            false_lit = p ^ 1
            old_watchers = watches[false_lit]
            watches[false_lit] = []
            keep = watches[false_lit]
            num = len(old_watchers)
            index = 0
            while index < num:
                clause = old_watchers[index]
                index += 1
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                first_assign = assigns[first >> 1]
                if first_assign != _UNDEF and first_assign ^ (first & 1) == _TRUE:
                    keep.append(clause)
                    continue
                found_watch = False
                for k in range(2, len(clause)):
                    lit = clause[k]
                    value = assigns[lit >> 1]
                    if value == _UNDEF or value ^ (lit & 1) != _FALSE:
                        clause[1], clause[k] = clause[k], clause[1]
                        watches[lit].append(clause)
                        found_watch = True
                        break
                if found_watch:
                    continue
                keep.append(clause)
                if first_assign != _UNDEF:
                    # first is falsified: conflict.
                    keep.extend(old_watchers[index:])
                    self._qhead = len(trail)
                    self.stats.propagations += propagated
                    return clause
                # Inlined _enqueue: first is known to be unassigned here.
                var = first >> 1
                assigns[var] = (first & 1) ^ 1
                level[var] = current_level
                reason[var] = clause
                trail.append(first)
        self._qhead = qhead
        self.stats.propagations += propagated
        return None

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        bound = self._trail_lim[level]
        trail = self._trail
        assigns = self._assigns
        polarity = self._polarity
        reason = self._reason
        order_insert = self._order.insert
        for index in range(len(trail) - 1, bound - 1, -1):
            ilit = trail[index]
            var = ilit >> 1
            assigns[var] = _UNDEF
            polarity[var] = (ilit & 1) == 0
            reason[var] = None
            order_insert(var)
        del trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(trail)

    def _var_bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for index in range(1, self._num_vars + 1):
                self._activity[index] *= 1e-100
            self._var_inc *= 1e-100
            self._order.rebuild()
        self._order.update(var)

    def _var_decay_activity(self) -> None:
        self._var_inc /= self._var_decay

    def _clause_bump(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for learnt in self._learnts:
                learnt.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: _Clause) -> tuple[list[int], int]:
        """First-UIP conflict analysis; returns (learnt clause, backjump level)."""
        learnt: list[int] = [0]
        seen = self._seen
        counter = 0
        p = -1
        index = len(self._trail) - 1
        current_level = self._decision_level()
        clause: Optional[_Clause] = conflict
        while True:
            assert clause is not None
            if clause.learnt:
                self._clause_bump(clause)
            for q in clause:
                if p != -1 and (q >> 1) == (p >> 1):
                    continue
                var = q >> 1
                if not seen[var] and self._level[var] > 0:
                    seen[var] = 1
                    self._var_bump(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[self._trail[index] >> 1]:
                index -= 1
            p = self._trail[index]
            var = p >> 1
            clause = self._reason[var]
            seen[var] = 0
            counter -= 1
            index -= 1
            if counter == 0:
                break
        learnt[0] = p ^ 1

        # Local (non-recursive) clause minimization: drop literals whose
        # reason clause is entirely covered by other literals in the learnt
        # clause.
        marked = {q >> 1 for q in learnt}
        minimized = [learnt[0]]
        for q in learnt[1:]:
            reason = self._reason[q >> 1]
            if reason is None:
                minimized.append(q)
                continue
            redundant = True
            for r in reason:
                var = r >> 1
                if var == (q >> 1):
                    continue
                if var not in marked and self._level[var] > 0:
                    redundant = False
                    break
            if not redundant:
                minimized.append(q)
        for q in learnt:
            seen[q >> 1] = 0
        learnt = minimized

        if len(learnt) == 1:
            backjump = 0
        else:
            max_index = 1
            max_level = self._level[learnt[1] >> 1]
            for position in range(2, len(learnt)):
                lvl = self._level[learnt[position] >> 1]
                if lvl > max_level:
                    max_level = lvl
                    max_index = position
            learnt[1], learnt[max_index] = learnt[max_index], learnt[1]
            backjump = max_level
        return learnt, backjump

    def _analyze_final(self, failed: int) -> list[int]:
        """Compute an assumption core given a falsified assumption literal."""
        core_internal = {failed}
        if self._decision_level() == 0:
            return [self._to_external(lit) for lit in core_internal]
        seen = self._seen
        seen[failed >> 1] = 1
        bound = self._trail_lim[0]
        for index in range(len(self._trail) - 1, bound - 1, -1):
            ilit = self._trail[index]
            var = ilit >> 1
            if not seen[var]:
                continue
            reason = self._reason[var]
            if reason is None:
                core_internal.add(ilit)
            else:
                for q in reason:
                    qvar = q >> 1
                    if qvar != var and self._level[qvar] > 0:
                        seen[qvar] = 1
            seen[var] = 0
        seen[failed >> 1] = 0
        return [self._to_external(lit) for lit in core_internal]

    def _pick_branch_literal(self) -> Optional[int]:
        while len(self._order):
            var = self._order.pop_max()
            if self._assigns[var] == _UNDEF:
                self.stats.decisions += 1
                return 2 * var + (0 if self._polarity[var] else 1)
        return None

    def _reduce_db(self) -> None:
        learnts = self._learnts
        learnts.sort(key=lambda c: c.activity)
        threshold = self._cla_inc / max(len(learnts), 1)
        keep: list[_Clause] = []
        removed = 0
        half = len(learnts) // 2
        for index, clause in enumerate(learnts):
            locked = (
                self._reason[clause[0] >> 1] is clause
                and self._lit_value(clause[0]) == _TRUE
            )
            if locked or len(clause) <= 2:
                keep.append(clause)
            elif index < half or clause.activity < threshold:
                self._detach(clause)
                removed += 1
            else:
                keep.append(clause)
        self._learnts = keep
        self.stats.deleted_clauses += removed

    def _detach(self, clause: _Clause) -> None:
        for watched in (clause[0], clause[1]):
            watchers = self._watches[watched]
            try:
                watchers.remove(clause)
            except ValueError:
                pass

    @staticmethod
    def _luby(index: int) -> int:
        """The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ... (0-based index)."""
        # Find the finite subsequence containing `index` and its size.
        size, sequence = 1, 0
        while size < index + 1:
            sequence += 1
            size = 2 * size + 1
        while size - 1 != index:
            size = (size - 1) // 2
            sequence -= 1
            index %= size
        return 1 << sequence

    def _search(self, assumptions: list[int]) -> bool:
        restart_index = 0
        conflict_budget = 100 * self._luby(restart_index)
        conflicts_since_restart = 0
        max_learnts = max(len(self._clauses) // 3, 2000)
        total_conflicts = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                total_conflicts += 1
                if self.max_conflicts is not None and total_conflicts > self.max_conflicts:
                    self._core = []
                    self._cancel_until(0)
                    raise ConflictBudgetExceeded(
                        f"exceeded conflict budget of {self.max_conflicts}"
                    )
                if self._decision_level() == 0:
                    self._ok = False
                    self._core = []
                    return False
                learnt, backjump_level = self._analyze(conflict)
                self._cancel_until(max(backjump_level, 0))
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    clause = _Clause(learnt, learnt=True)
                    self._attach(clause)
                    self._learnts.append(clause)
                    self._clause_bump(clause)
                    self.stats.learnt_clauses += 1
                    self._enqueue(learnt[0], clause)
                self._var_decay_activity()
                self._cla_inc /= self._cla_decay
                continue

            if conflicts_since_restart >= conflict_budget:
                self.stats.restarts += 1
                restart_index += 1
                conflict_budget = 100 * self._luby(restart_index)
                conflicts_since_restart = 0
                # Assumption-aware restart: keep the established assumption
                # levels and their propagations, undoing only the free
                # decisions above them.  The assumption prefix would be
                # re-decided in the same order anyway, and on trace formulas
                # it forces most of the circuit — restarting to level 0
                # would re-propagate tens of thousands of literals per
                # restart.
                self._cancel_until(min(self._decision_level(), len(assumptions)))
                continue

            if len(self._learnts) >= max_learnts + len(self._trail):
                self._reduce_db()
                max_learnts = int(max_learnts * 1.3)

            next_lit: Optional[int] = None
            while self._decision_level() < len(assumptions):
                assumption = assumptions[self._decision_level()]
                value = self._lit_value(assumption)
                if value == _TRUE:
                    self._new_decision_level()
                elif value == _FALSE:
                    self._core = self._analyze_final(assumption)
                    return False
                else:
                    next_lit = assumption
                    break
            if next_lit is None:
                next_lit = self._pick_branch_literal()
                if next_lit is None:
                    self._model = list(self._assigns)
                    return True
            self._new_decision_level()
            self._enqueue(next_lit, None)


class ConflictBudgetExceeded(RuntimeError):
    """Raised when ``Solver.max_conflicts`` is exhausted during search."""
