"""A conflict-driven clause-learning (CDCL) SAT solver.

The solver follows the classic MiniSAT architecture: two-literal watching,
first-UIP conflict analysis with clause learning, VSIDS variable activities,
phase saving, Luby restarts and activity-based deletion of learnt clauses.

Two features beyond plain satisfiability are load-bearing for the rest of
the reproduction:

* **Assumptions.**  :meth:`Solver.solve` accepts a sequence of literals that
  are treated as temporary decisions.  The BugAssist encoding attaches one
  *selector variable* per program statement; solving under assumptions over
  the selectors is how the MaxSAT layer enables and disables statements.
* **Assumption cores.**  When the instance is unsatisfiable under the given
  assumptions, :meth:`Solver.unsat_core` returns a subset of the assumptions
  that is already contradictory.  The core-guided MaxSAT algorithms
  (Fu–Malik, MSU3) are built directly on this facility.
* **Clause-database retention.**  :meth:`Solver.add_clause` may be called
  again after any number of :meth:`Solver.solve` calls (solving always
  returns to decision level 0): problem clauses, learnt clauses, variable
  activities and saved phases all persist, so the MaxSAT layer can block a
  correction set with a new hard clause and re-solve incrementally instead
  of rebuilding the instance from scratch.
* **Retractable layers.**  :meth:`Solver.push` opens a *layer*: clauses
  added while a layer is active can later be retracted with
  :meth:`Solver.pop`.  A layer is implemented with a fresh selector
  variable ``s`` — every clause of the layer gets ``-s`` appended and every
  solve assumes ``s`` — so retraction is sound by construction: popping
  adds the permanent unit ``-s``, which subsumes every clause of the layer,
  and therefore keeps all learnt clauses valid.  The session API uses this
  to load one whole-program encoding and swap per-test input/specification
  units in and out without rebuilding the solver.
* **Assumption-trail keeping.**  On trace formulas almost the entire
  circuit is forced by the assumptions, so re-deciding the same assumption
  prefix on every :meth:`Solver.solve` call re-propagates thousands of
  literals.  The solver therefore *keeps* the assumption decision levels
  (and all their propagations) between solve calls and, on the next call,
  backtracks only to the first assumption that differs.  Clauses added
  between calls attach in place when they are neither unit nor conflicting
  under the kept trail; otherwise the solver transparently falls back to
  a full restart from level 0.

**Clause storage and the search kernel.**  Clauses live in one flat *arena*
(a ``long`` array) rather than as per-clause Python objects: a clause is an
integer offset, its two watcher-list links and *blocker literals* are part
of its header, and the per-literal watch lists are intrusive linked lists
threaded through the arena.  The arena's *logical* length
(:attr:`Solver._arena_len`) is tracked separately from the physical buffer
length so the compiled kernel can append learnt clauses into preallocated
slack without returning to Python.

The whole search state — arena, watch heads, assignments, levels, reasons,
trail, saved phases, VSIDS activities, the analysis ``seen`` buffer and the
order heap — is held in flat ``array``-backed buffers whenever either
compiled backend is active (see :mod:`repro.sat._ccore`).  Two compiled
entry points operate over that memory:

* ``repro_propagate`` — the unit-propagation core (``REPRO_PROPAGATION``),
  called once per search step by the pure-Python loop;
* ``repro_search`` — the full CDCL *search kernel* (``REPRO_SEARCH``):
  propagation, first-UIP conflict analysis with clause learning and local
  minimization, backjumping, VSIDS bump/decay/rescale, the activity order
  heap, phase saving, assumption decisions and Luby restarts all run inside
  C, returning to Python only for the rare control events (SAT/UNSAT
  answers, assumption-core extraction, learnt-database reduction, budget
  exhaustion, and buffer-capacity growth).

The pure-Python loop implements the identical algorithm over plain lists
and remains the always-tested fallback; every backend combination produces
bit-identical models, conflicts, cores and statistics.

Literals use the DIMACS convention (non-zero signed integers) at the API
boundary and a packed even/odd encoding internally.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence

from repro.sat import _ccore
from repro.sat.heap import ActivityHeap

_UNDEF = -1
_FALSE = 0
_TRUE = 1

#: Arena words preceding a clause's literals: header, two watch links, two
#: blocker literals.
_HDR = 5

#: Arena header flag bits.
_FLAG_LEARNT = 1
_FLAG_DEAD = 2

#: Exit reasons the C search kernel reports back through its state buffer.
#: They mirror the control points where the pure-Python loop leaves its
#: ``while True`` body (or needs services only Python provides).
_EXIT_SAT = 1  # every variable assigned: a model is on the trail
_EXIT_UNSAT = 2  # conflict at decision level 0: permanently unsatisfiable
_EXIT_ASSUMPTION = 3  # an assumption is falsified: extract a core
_EXIT_REDUCE = 4  # the learnt database hit its size budget
_EXIT_CAPACITY = 5  # arena/scratch/log slack too small for another conflict
_EXIT_CONFLICT_BUDGET = 6  # Solver.max_conflicts exhausted
_EXIT_DECISION_BUDGET = 7  # Solver.max_decisions exhausted

#: Layout of the search kernel's ``state`` array (one slot per line).
_S_QHEAD = 0
_S_TRAIL_LEN = 1
_S_LEVELS = 2
_S_PROPAGATIONS = 3
_S_ARENA_LEN = 4
_S_ARENA_CAP = 5
_S_HEAP_SIZE = 6
_S_NUM_VARS = 7
_S_NUM_ASSUMPTIONS = 8
_S_LEARNT_COUNT = 9
_S_MAX_LEARNTS = 10
_S_RESTART_INDEX = 11
_S_CONFLICT_BUDGET = 12
_S_CONFLICTS_SINCE_RESTART = 13
_S_TOTAL_CONFLICTS = 14
_S_MAX_CONFLICTS = 15
_S_FREE_DECISIONS = 16
_S_MAX_DECISIONS = 17
_S_SEARCH_FLOOR = 18
_S_EXIT_REASON = 19
_S_EXIT_PAYLOAD = 20
_S_D_CONFLICTS = 21
_S_D_DECISIONS = 22
_S_D_RESTARTS = 23
_S_D_LEARNTS = 24
_S_D_ANALYSES = 25
_S_D_MINIMIZED = 26
_S_D_BACKJUMPED = 27
_S_SCRATCH_LEN = 28
_S_SCRATCH_CAP = 29
_S_LOG_LEN = 30
_S_LOG_CAP = 31
_S_WORDS = 32


@dataclass
class _Layer:
    """One retractable clause layer opened by :meth:`Solver.push`.

    ``selector`` is the layer's fresh selector variable; ``clauses`` are the
    arena refs of the attached (length >= 2) clauses carrying ``-selector``
    that must be detached again when the layer is popped.
    """

    selector: int
    clauses: list[int] = field(default_factory=list)
    clause_mark: int = 0  # len(solver._clauses) when the layer opened


@dataclass
class SolveResult:
    """Outcome of a single :meth:`Solver.solve` call."""

    satisfiable: bool
    model: Optional[dict[int, bool]] = None
    core: Optional[list[int]] = None


@dataclass
class SolverStats:
    """Cumulative solver statistics, exposed for benchmarks and ablations.

    Counters only ever grow; per-phase numbers are obtained by
    :meth:`snapshot` at the phase boundary and :meth:`since` afterwards,
    which is how the MaxSAT engine reports clean per-layer (per-test)
    statistics on a long-lived session solver.

    Conflict analysis has its own counters so the Table 3 benchmarks can
    report analysis throughput (``conflicts_per_second``) and how much work
    first-UIP resolution and minimization actually do: ``analyses`` counts
    conflicts analyzed (conflicts at level 0 terminate the search without
    analysis), ``minimized_literals`` counts literals dropped by local
    clause minimization, and ``backjumped_levels`` sums the decision levels
    undone by conflict-driven backjumps.  All three are bit-identical
    between the Python and C search backends.
    """

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learnt_clauses: int = 0
    deleted_clauses: int = 0
    solve_calls: int = 0
    max_vars: int = 0
    analyses: int = 0
    minimized_literals: int = 0
    backjumped_levels: int = 0
    extra: dict = field(default_factory=dict)

    def snapshot(self) -> "SolverStats":
        """An immutable copy of the current counter values."""
        return replace(self, extra=dict(self.extra))

    def since(self, earlier: "SolverStats") -> "SolverStats":
        """The counter deltas accumulated after ``earlier`` was snapshot."""
        return SolverStats(
            conflicts=self.conflicts - earlier.conflicts,
            decisions=self.decisions - earlier.decisions,
            propagations=self.propagations - earlier.propagations,
            restarts=self.restarts - earlier.restarts,
            learnt_clauses=self.learnt_clauses - earlier.learnt_clauses,
            deleted_clauses=self.deleted_clauses - earlier.deleted_clauses,
            solve_calls=self.solve_calls - earlier.solve_calls,
            max_vars=self.max_vars,
            analyses=self.analyses - earlier.analyses,
            minimized_literals=self.minimized_literals - earlier.minimized_literals,
            backjumped_levels=self.backjumped_levels - earlier.backjumped_levels,
        )


class Solver:
    """Incremental CDCL SAT solver with assumption support.

    Typical use::

        solver = Solver()
        x, y = solver.new_var(), solver.new_var()
        solver.add_clause([x, y])
        solver.add_clause([-x, y])
        assert solver.solve()
        assert solver.model_value(y) is True

    ``backend`` selects the propagation core: ``"c"`` (the compiled core;
    raises when unavailable), ``"python"`` (the pure-Python loop), or
    ``None`` for the process-wide default reported by
    :func:`repro.sat.propagation_backend`.

    ``search`` selects the search kernel the same way (``"c"``,
    ``"python"``, or ``None`` for the default reported by
    :func:`repro.sat.search_backend`).  When ``REPRO_SEARCH`` is not set
    explicitly the search backend follows the propagation backend, so
    ``Solver(backend="python")`` is the fully interpreted solver and
    ``Solver(backend="c")`` runs the whole inner loop compiled.  Note that
    with ``search="c"`` the kernel performs its own propagation inline;
    the ``backend`` knob then only governs propagation triggered outside
    the search loop (root-level :meth:`add_clause` simplification).
    """

    def __init__(
        self, backend: Optional[str] = None, search: Optional[str] = None
    ) -> None:
        if backend is None:
            backend = _ccore.backend()
        if backend not in ("c", "python"):
            raise ValueError(f"unknown propagation backend {backend!r}")
        if backend == "c" and _ccore.propagate_function() is None:
            raise RuntimeError(
                "C propagation core unavailable: "
                f"{_ccore.propagate_unavailable_reason()}"
            )
        if search is None:
            search = _ccore.search_backend(follow=backend)
        if search not in ("c", "python"):
            raise ValueError(f"unknown search backend {search!r}")
        if search == "c" and _ccore.search_function() is None:
            raise RuntimeError(
                f"C search kernel unavailable: {_ccore.search_unavailable_reason()}"
            )
        self.backend = backend
        self.search_backend = search
        self._use_c = backend == "c"
        self._use_c_search = search == "c"
        flat = self._use_c or self._use_c_search
        self._flat = flat
        if flat:
            # Flat C-addressable buffers: the compiled cores walk these via
            # raw pointers, the Python control plane via normal indexing.
            self._arena = array("l", [0])
            self._heads = array("l", [0, 0])
            self._assigns = array("b", [_UNDEF])
            self._level = array("l", [0])
            self._reason = array("l", [0])
            self._trail = array("l")
            self._polarity = array("b", [0])
            self._activity = array("d", [0.0])
            self._seen = array("b", [0])
        else:
            self._arena = [0]
            self._heads = [0, 0]
            self._assigns = [_UNDEF]
            self._level = [0]
            self._reason = [0]
            self._trail = []
            self._polarity = [False]
            self._activity = [0.0]
            self._seen = [0]
        self._state = array("l", [0, 0, 0, 0]) if self._use_c else None
        self._cfn = _ccore.propagate_function() if self._use_c else None
        if self._use_c_search:
            self._sstate = array("l", [0] * _S_WORDS)
            self._sfloat = array("d", [0.0, 0.0])
            self._csearch = _ccore.search_function()
        else:
            self._sstate = None
            self._sfloat = None
            self._csearch = None
        # Scratch buffers marshalled in/out around each kernel call; grown
        # lazily and reused across solves.
        self._assump_buf: Optional[array] = None
        self._lim_buf: Optional[array] = None
        self._scratch_buf: Optional[array] = None
        self._bump_log: Optional[array] = None
        self._analyze_buf: Optional[array] = None
        self._arena_len = 1
        self._num_vars = 0
        self._clauses: list[int] = []
        self._learnts: list[int] = []
        self._activity_of: dict[int, float] = {}
        self._garbage = 0
        self._trail_len = 0
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._order = ActivityHeap(self._activity, flat=flat)
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._ok = True
        self._model: Optional[list[int]] = None
        self._core: Optional[list[int]] = None
        self._layers: list[_Layer] = []
        # External assumption literals whose decision levels (1..len) are
        # still on the trail from the previous solve (trail keeping).
        self._kept_assumptions: list[int] = []
        # Lowest decision level reached since the current solve started;
        # used to record which kept assumption decisions survived an
        # optimistic full-trail resume.
        self._search_floor = 0
        self.stats = SolverStats()
        self.max_conflicts: Optional[int] = None
        self.max_decisions: Optional[int] = None

    # ------------------------------------------------------------------ API

    @property
    def num_vars(self) -> int:
        """Number of variables allocated so far."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of problem (non-learnt) clauses currently stored."""
        return len(self._clauses)

    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self._num_vars += 1
        self._assigns.append(_UNDEF)
        self._level.append(0)
        self._reason.append(0)
        self._polarity.append(False)
        self._activity.append(0.0)
        self._seen.append(0)
        self._heads.append(0)
        self._heads.append(0)
        self._trail.append(0)  # trail capacity: one slot per variable
        self._order.insert(self._num_vars)
        self.stats.max_vars = max(self.stats.max_vars, self._num_vars)
        return self._num_vars

    def ensure_vars(self, max_var: int) -> None:
        """Allocate variables up to ``max_var`` (inclusive) if needed."""
        while self._num_vars < max_var:
            self.new_var()

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause of signed literals.

        While a layer opened by :meth:`push` is active the clause belongs to
        that layer and is retracted again by the matching :meth:`pop`.  The
        clause may be added while an assumption trail is kept from the
        previous solve: it attaches in place when it has two non-false
        literals under the kept trail and otherwise triggers a transparent
        backtrack to level 0.

        Returns ``False`` when the clause makes the formula trivially
        unsatisfiable at the top level (and the solver becomes permanently
        unsatisfiable), ``True`` otherwise.
        """
        if not self._ok:
            return False
        layer = self._layers[-1] if self._layers else None
        if layer is not None:
            lits = list(lits) + [-layer.selector]
        seen: set[int] = set()
        internal: list[int] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self.ensure_vars(abs(lit))
            ilit = self._to_internal(lit)
            if ilit ^ 1 in seen:
                return True  # tautology: trivially satisfied
            if ilit in seen:
                continue
            value = self._lit_value(ilit)
            if value == _TRUE and self._level[ilit >> 1] == 0:
                return True  # already satisfied at top level
            if value == _FALSE and self._level[ilit >> 1] == 0:
                continue  # falsified at top level: drop the literal
            seen.add(ilit)
            internal.append(ilit)
        if not internal:
            self._cancel_to_root()
            self._ok = False
            return False
        if len(internal) == 1:
            # Unit clauses are root facts: give up the kept trail so the
            # literal is fixed at level 0.
            self._cancel_to_root()
            if not self._enqueue(internal[0], 0):
                self._ok = False
                return False
            self._ok = self._propagate() is None
            return self._ok
        ref = self._alloc(internal, learnt=False)
        if self._trail_lim and not self._place_under_trail(ref):
            # No placement kept the trail: restart from the root, where the
            # clause (its literals now unassigned or root-false) attaches
            # with the standard level-0 machinery.
            self._cancel_to_root()
        self._attach(ref)
        self._clauses.append(ref)
        if layer is not None:
            layer.clauses.append(ref)
        return True

    def _place_under_trail(self, ref: int) -> bool:
        """Position a new clause's watches under a kept assumption trail.

        Backjumps just far enough that the clause is not conflicting: to
        attach it needs two non-false literals (then it is inert for now);
        a clause that is unit after the backjump is enqueued so the next
        propagation processes it.  Returns ``False`` when only a full
        root restart can place the clause (some literal is false at level
        0 in a way the simplification has not already removed).
        """
        arena = self._arena
        base = ref + _HDR
        size = arena[ref] >> 2
        while True:
            first = second = -1
            max_level = 0
            for position in range(size):
                ilit = arena[base + position]
                if self._lit_value(ilit) == _FALSE:
                    level = self._level[ilit >> 1]
                    if level > max_level:
                        max_level = level
                elif first < 0:
                    first = position
                else:
                    second = position
                    break
            if second >= 0:
                # Two non-false literals: watch them; the clause cannot be
                # unit or conflicting right now.  ``second > first`` always,
                # so the two swaps cannot collide.
                arena[base], arena[base + first] = arena[base + first], arena[base]
                arena[base + 1], arena[base + second] = (
                    arena[base + second],
                    arena[base + 1],
                )
                return True
            if max_level == 0:
                return False
            if first >= 0:
                # Unit under the trail: backtrack to the deepest false level
                # and enqueue there, watching the unit literal and one of the
                # deepest false literals.
                self._cancel_keeping(max_level)
                unit = arena[base + first]
                if self._lit_value(unit) == _UNDEF:
                    if not self._enqueue(unit, ref):  # pragma: no cover
                        return False
                    self._qhead = min(self._qhead, self._trail_len - 1)
                arena[base], arena[base + first] = arena[base + first], arena[base]
                for position in range(1, size):
                    ilit = arena[base + position]
                    if (
                        self._lit_value(ilit) == _FALSE
                        and self._level[ilit >> 1] == max_level
                    ):
                        arena[base + 1], arena[base + position] = (
                            arena[base + position],
                            arena[base + 1],
                        )
                        break
                return True
            # Conflicting: unassign the deepest false literals and retry.
            self._cancel_keeping(max_level - 1)

    def _cancel_keeping(self, level: int) -> None:
        """Backtrack to ``level``, truncating the kept assumption prefix."""
        if level < len(self._kept_assumptions):
            del self._kept_assumptions[level:]
        self._cancel_until(level)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> bool:
        """Add many clauses; returns ``False`` if any made the formula unsat."""
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Solve under the given assumption literals.

        Selectors of the layers currently open via :meth:`push` are assumed
        automatically (so layered clauses are enforced); they may therefore
        show up in :meth:`unsat_core`.

        Returns ``True`` if satisfiable (a model is then available through
        :meth:`model_value` / :meth:`get_model`), ``False`` otherwise (an
        assumption core is then available through :meth:`unsat_core`).
        """
        self.stats.solve_calls += 1
        self._model = None
        self._core = None
        if not self._ok:
            self._kept_assumptions = []
            self._core = []
            return False
        for lit in assumptions:
            if lit == 0:
                raise ValueError("0 is not a valid assumption literal")
            self.ensure_vars(abs(lit))
        all_assumptions = [layer.selector for layer in self._layers]
        all_assumptions.extend(assumptions)
        # Trail keeping: reuse the decision levels of the longest assumption
        # prefix shared with the previous solve — their propagations (on
        # trace formulas, most of the circuit) are still on the trail.
        kept = self._kept_assumptions
        keep = 0
        limit = min(len(kept), len(all_assumptions))
        while keep < limit and kept[keep] == all_assumptions[keep]:
            keep += 1
        # Optimistic full-trail resume: when the assumption list has the
        # same layout and every *changed* assumption already holds on the
        # kept trail, the previous solve's entire trail — free decisions
        # included — remains a plausible starting point.  The answer is
        # only trusted when it is SAT *and* the final assignment satisfies
        # every current assumption (a backjump may unassign a changed slot
        # that no decision level re-pins); anything else is re-derived
        # conservatively from the true shared prefix.
        optimistic = False
        if keep < len(all_assumptions) and len(kept) == len(all_assumptions):
            optimistic = True
            for index in range(keep, len(all_assumptions)):
                if kept[index] != all_assumptions[index]:
                    ilit = self._to_internal(all_assumptions[index])
                    if self._lit_value(ilit) != _TRUE:
                        optimistic = False
                        break
        self._kept_assumptions = []
        resumed_full = False
        if keep == limit and len(kept) == len(all_assumptions) == keep:
            pass  # identical assumptions: resume with the full trail
        elif optimistic:
            resumed_full = True  # changed slots satisfied: resume in place
        else:
            self._cancel_until(keep)
        internal_assumptions = [self._to_internal(lit) for lit in all_assumptions]
        self._search_floor = self._decision_level()
        result = self._search(internal_assumptions)
        if resumed_full and (
            not result
            or any(
                self._lit_value(ilit) != _TRUE for ilit in internal_assumptions
            )
        ):
            # The optimistic answer may rest on stale decisions kept from
            # the previous assumption set (UNSAT case) or on a model that
            # silently dropped a changed assumption (SAT case): redo from
            # the true shared prefix.
            resumed_full = False
            self._cancel_until(keep)
            self._search_floor = self._decision_level()
            result = self._search(internal_assumptions)
        count = len(all_assumptions)
        if result:
            level = self._decision_level()
        else:
            level = min(self._decision_level(), count)
            self._cancel_until(level)
        if resumed_full and result:
            # Levels below the search's lowest backtrack point still hold
            # the previous call's assumption decisions; levels above were
            # re-established from the current list.  Record what is
            # actually on the trail, not the list we were asked for.
            floor = min(self._search_floor, count)
            on_trail = kept[:floor] + all_assumptions[floor:count]
            self._kept_assumptions = on_trail[: min(level, count)]
        else:
            self._kept_assumptions = list(all_assumptions[: min(level, count)])
        return result

    def solve_result(self, assumptions: Sequence[int] = ()) -> SolveResult:
        """Like :meth:`solve` but returning a :class:`SolveResult` record."""
        sat = self.solve(assumptions)
        if sat:
            return SolveResult(True, model=self.get_model())
        return SolveResult(False, core=self.unsat_core())

    def solve_limited(
        self, assumptions: Sequence[int] = (), max_decisions: Optional[int] = None
    ) -> Optional[bool]:
        """Budgeted probe: solve, but give up after ``max_decisions`` free
        decisions and return ``None``.

        Cheap UNSAT proofs (assumption cones that conflict almost
        immediately) complete well inside a small budget; anything that
        needs a real model search exhausts it.  Used to re-validate
        candidate cores across session layers without paying for full
        solves.
        """
        self.max_decisions = max_decisions
        try:
            return self.solve(assumptions)
        except DecisionBudgetExceeded:
            return None
        finally:
            self.max_decisions = None

    def model_value(self, lit: int) -> Optional[bool]:
        """Value of a signed literal in the last model (None if unknown var)."""
        if self._model is None:
            raise RuntimeError("no model available; last solve was UNSAT or never ran")
        var = abs(lit)
        if var > self._num_vars or var >= len(self._model):
            return None
        value = self._model[var]
        if value == _UNDEF:
            return None
        truth = value == _TRUE
        return truth if lit > 0 else not truth

    def get_model(self, complete: bool = False) -> dict[int, bool]:
        """Return the last model as a ``{var: bool}`` dictionary.

        With ``complete=True`` variables the search left unassigned (don't
        cares, or variables allocated after the solve) take their saved
        phase instead of being omitted, yielding a total assignment.
        """
        if self._model is None:
            raise RuntimeError("no model available; last solve was UNSAT or never ran")
        if not complete:
            return {
                var: value == _TRUE
                for var, value in enumerate(self._model)
                if var and value != _UNDEF
            }
        model: dict[int, bool] = {}
        for var in range(1, self._num_vars + 1):
            value = self._model[var] if var < len(self._model) else _UNDEF
            if value != _UNDEF:
                model[var] = value == _TRUE
            elif complete:
                model[var] = bool(self._polarity[var])
        return model

    def root_value(self, lit: int) -> Optional[bool]:
        """Value of a literal fixed at decision level 0, or ``None``.

        Unlike :meth:`model_value` this does not depend on the last solve:
        it reports only permanent consequences of the clause database (unit
        clauses and their propagations).
        """
        var = lit if lit > 0 else -lit
        if var > self._num_vars:
            return None
        assign = self._assigns[var]
        if assign == _UNDEF or self._level[var] != 0:
            return None
        truth = assign == _TRUE
        return truth if lit > 0 else not truth

    def unsat_core(self) -> list[int]:
        """Subset of the assumptions that is unsatisfiable with the clauses."""
        if self._core is None:
            raise RuntimeError("no core available; last solve was SAT or never ran")
        return list(self._core)

    # --------------------------------------------------------------- layers

    @property
    def num_layers(self) -> int:
        """Number of retractable layers currently open."""
        return len(self._layers)

    def push(self) -> int:
        """Open a retractable clause layer; returns its selector variable.

        Every clause added until the matching :meth:`pop` is tagged with the
        layer's fresh selector and only enforced while the layer is open
        (the selector is assumed automatically by :meth:`solve`).  Layers
        nest LIFO.  Learnt clauses, activities and saved phases acquired
        while the layer is open remain valid after popping.
        """
        self._cancel_to_root()
        selector = self.new_var()
        self._layers.append(_Layer(selector, clause_mark=len(self._clauses)))
        return selector

    def pop(self) -> None:
        """Retract the most recently pushed layer.

        The layer's clauses are detached and the permanent unit clause
        ``-selector`` is added.  Because each retracted clause contained
        ``-selector``, the unit subsumes them all — so every clause learnt
        from them stays implied by the remaining database.  Learnt clauses
        that mention the dead selector are garbage-collected; the rest (the
        reusable program-structure lemmas) survive.
        """
        if not self._layers:
            raise RuntimeError("no layer to pop")
        self._cancel_to_root()
        layer = self._layers.pop()
        removed = set(layer.clauses)
        for ref in layer.clauses:
            self._detach(ref)
            self._free(ref)
        # Every problem clause added since the layer opened belongs to it
        # (add_clause tags them all), so the layer's clauses are exactly the
        # tail of the clause list.
        del self._clauses[layer.clause_mark:]
        # Learnt clauses mentioning the dead selector are permanently
        # satisfied once ``-selector`` is fixed; drop them so the watch
        # lists do not silt up over a long session.
        dead_lit = self._to_internal(-layer.selector)
        arena = self._arena
        stale: list[int] = []
        for ref in self._learnts:
            base = ref + _HDR
            for index in range(base, base + (arena[ref] >> 2)):
                if arena[index] == dead_lit:
                    stale.append(ref)
                    break
        if stale:
            for ref in stale:
                self._detach(ref)
                self._free(ref)
                removed.add(ref)
            self._learnts = [ref for ref in self._learnts if ref not in removed]
        if removed:
            # Level-0 propagations may still name a retracted clause as their
            # reason; those reasons are never resolved against again, but the
            # dangling references are cleared so compaction cannot remap them
            # to a recycled slot.
            reason = self._reason
            for var in range(1, self._num_vars + 1):
                if reason[var] in removed:
                    reason[var] = 0
        self._maybe_compact()
        # The retraction unit is permanent even when outer layers are still
        # open (a popped layer can never be re-entered), so it must bypass
        # the layer tagging of add_clause.
        remaining = self._layers
        self._layers = []
        try:
            self.add_clause([-layer.selector])
        finally:
            self._layers = remaining

    def _cancel_to_root(self) -> None:
        """Backtrack to level 0, giving up any kept assumption trail."""
        self._kept_assumptions = []
        self._cancel_until(0)

    def set_phases(self, phases) -> None:
        """Seed the saved phase of variables (warm start).

        ``phases`` maps variable index to the Boolean the next decision on
        that variable should try first.  Used to prime the search with the
        concrete values of a known failing execution.
        """
        for var, value in phases.items():
            if 1 <= var <= self._num_vars:
                self._polarity[var] = bool(value)

    # ------------------------------------------------------------ internals

    @staticmethod
    def _to_internal(lit: int) -> int:
        var = lit if lit > 0 else -lit
        return 2 * var + (0 if lit > 0 else 1)

    @staticmethod
    def _to_external(ilit: int) -> int:
        var = ilit >> 1
        return var if (ilit & 1) == 0 else -var

    def _lit_value(self, ilit: int) -> int:
        assign = self._assigns[ilit >> 1]
        if assign == _UNDEF:
            return _UNDEF
        return assign ^ (ilit & 1)

    # ------------------------------------------------------- clause storage

    def _alloc(self, lits: Sequence[int], learnt: bool) -> int:
        """Write a clause at the arena's logical end; returns its ref.

        The logical length (:attr:`_arena_len`) may trail the physical
        buffer length: the C search kernel appends learnt clauses into the
        preallocated slack, and compaction rebuilds the buffer exactly.
        """
        arena = self._arena
        ref = self._arena_len
        end = ref + _HDR + len(lits)
        if len(arena) < end:
            if self._flat:
                arena.frombytes(bytes((end - len(arena)) * arena.itemsize))
            else:
                arena.extend([0] * (end - len(arena)))
        arena[ref] = len(lits) << 2 | (_FLAG_LEARNT if learnt else 0)
        arena[ref + 1] = 0
        arena[ref + 2] = 0
        arena[ref + 3] = 0
        arena[ref + 4] = 0
        index = ref + _HDR
        for lit in lits:
            arena[index] = lit
            index += 1
        self._arena_len = end
        return ref

    def _attach(self, ref: int) -> None:
        """Link the clause's two watch slots into the watcher lists.

        Slot ``s`` watches the literal at position ``s``; its blocker is
        initialised to the other watched literal.
        """
        arena = self._arena
        heads = self._heads
        base = ref + _HDR
        lit0 = arena[base]
        lit1 = arena[base + 1]
        arena[ref + 3] = lit1
        arena[ref + 4] = lit0
        arena[ref + 1] = heads[lit0]
        heads[lit0] = ref << 1
        arena[ref + 2] = heads[lit1]
        heads[lit1] = (ref << 1) | 1

    def _detach(self, ref: int) -> None:
        """Unlink both watch slots of a clause from the watcher lists."""
        arena = self._arena
        heads = self._heads
        base = ref + _HDR
        for slot in (0, 1):
            lit = arena[base + slot]
            target = (ref << 1) | slot
            current = heads[lit]
            if current == target:
                heads[lit] = arena[ref + 1 + slot]
                continue
            while current:
                link = (current >> 1) + 1 + (current & 1)
                following = arena[link]
                if following == target:
                    arena[link] = arena[ref + 1 + slot]
                    break
                current = following

    def _free(self, ref: int) -> None:
        """Mark a detached clause dead; its arena span becomes garbage."""
        header = self._arena[ref]
        self._arena[ref] = header | _FLAG_DEAD
        self._activity_of.pop(ref, None)
        self._garbage += (header >> 2) + _HDR

    def _maybe_compact(self) -> None:
        """Compact the arena when dead clauses dominate it.

        The trigger compares against the *logical* length: the physical
        buffer may carry preallocated slack for the C kernel, and the
        compaction decision must be identical across backends.
        """
        if self._garbage > 16384 and self._garbage * 2 > self._arena_len:
            self._compact()

    def _compact(self) -> None:
        """Rewrite the arena without dead clauses and remap every ref.

        Runs only from safe points (layer pops, learnt-clause reduction),
        never mid-propagation; reasons on the trail are remapped, watcher
        lists are rebuilt.
        """
        old = self._arena
        fresh = array("l", [0]) if self._flat else [0]
        remap: dict[int, int] = {}
        position = 1
        end = self._arena_len
        while position < end:
            header = old[position]
            size = header >> 2
            if not (header & _FLAG_DEAD):
                remap[position] = len(fresh)
                fresh.append(header)
                fresh.extend((0, 0, 0, 0))
                fresh.extend(old[position + _HDR : position + _HDR + size])
            position += _HDR + size
        self._arena = fresh
        self._arena_len = len(fresh)
        self._garbage = 0
        self._clauses = [remap[ref] for ref in self._clauses]
        self._learnts = [remap[ref] for ref in self._learnts]
        self._activity_of = {
            remap[ref]: activity for ref, activity in self._activity_of.items()
        }
        for layer in self._layers:
            layer.clauses = [remap[ref] for ref in layer.clauses]
        reason = self._reason
        for var in range(1, self._num_vars + 1):
            if reason[var]:
                reason[var] = remap.get(reason[var], 0)
        heads = self._heads
        for index in range(len(heads)):
            heads[index] = 0
        for ref in self._clauses:
            self._attach(ref)
        for ref in self._learnts:
            self._attach(ref)

    # ----------------------------------------------------------- invariants

    def check_invariants(self) -> None:
        """Assert the solver's core data-structure invariants.

        A debugging aid for tests (the backend differential matrix calls it
        after forced compaction and after C-kernel re-entry), not a hot-path
        check: it walks the whole arena, every watcher list, the trail and
        the order heap in O(arena + vars) and raises ``AssertionError`` on
        the first inconsistency.  Safe to call at any quiescent point (never
        mid-propagation).
        """
        arena = self._arena
        end = self._arena_len
        assert end <= len(arena), (
            f"logical arena length {end} exceeds buffer {len(arena)}"
        )
        # Arena walk: clause spans tile [1, end) exactly and the dead spans
        # sum to the garbage counter.
        live_refs: set[int] = set()
        position = 1
        garbage = 0
        while position < end:
            header = arena[position]
            size = header >> 2
            assert size >= 0 and position + _HDR + size <= end, (
                f"clause at ref {position} overruns the arena"
            )
            if header & _FLAG_DEAD:
                garbage += _HDR + size
            else:
                live_refs.add(position)
            position += _HDR + size
        assert position == end, "arena clause spans do not tile the logical length"
        assert garbage == self._garbage, (
            f"garbage counter {self._garbage} != dead span total {garbage}"
        )
        listed = list(self._clauses) + list(self._learnts)
        listed_set = set(listed)
        assert len(listed) == len(listed_set), "duplicate ref in clause lists"
        assert live_refs <= listed_set, (
            "live arena clause missing from the clause lists"
        )
        # Watcher lists: under each literal, every link names a live clause
        # actually watching that literal in that slot, exactly once; and
        # every live clause of two or more literals is linked in both slots.
        heads = self._heads
        seen_watches: set[tuple[int, int]] = set()
        bound = 2 * len(live_refs) + 1
        for lit in range(2, 2 * self._num_vars + 2):
            current = heads[lit]
            steps = 0
            while current:
                ref = current >> 1
                slot = current & 1
                assert ref in live_refs, (
                    f"watcher of literal {lit} points at dead/unknown ref {ref}"
                )
                assert arena[ref + _HDR + slot] == lit, (
                    f"clause {ref} slot {slot} watches "
                    f"{arena[ref + _HDR + slot]}, linked under {lit}"
                )
                key = (ref, slot)
                assert key not in seen_watches, (
                    f"clause {ref} slot {slot} linked twice"
                )
                seen_watches.add(key)
                current = arena[ref + 1 + slot]
                steps += 1
                assert steps <= bound, f"watcher list of literal {lit} cycles"
        for ref in live_refs:
            if (arena[ref] >> 2) >= 2:
                assert (ref, 0) in seen_watches and (ref, 1) in seen_watches, (
                    f"clause {ref} is live but not linked in both watch slots"
                )
        # Trail and levels: limits are monotone, trail variables are unique
        # and true, and each sits at the decision level of its segment.
        assert 0 <= self._qhead <= self._trail_len, "qhead outside the trail"
        lims = list(self._trail_lim)
        assert lims == sorted(lims) and all(
            0 <= lim <= self._trail_len for lim in lims
        ), f"trail limits {lims} not monotone within the trail"
        trail_vars: set[int] = set()
        level = 0
        for index in range(self._trail_len):
            while level < len(lims) and lims[level] <= index:
                level += 1
            ilit = self._trail[index]
            var = ilit >> 1
            assert 1 <= var <= self._num_vars, f"trail literal {ilit} out of range"
            assert var not in trail_vars, f"variable {var} on the trail twice"
            trail_vars.add(var)
            assert self._lit_value(ilit) == _TRUE, (
                f"trail literal at {index} is not satisfied"
            )
            assert self._level[var] == level, (
                f"variable {var} stored at level {self._level[var]}, "
                f"sits in trail segment {level}"
            )
            reason = self._reason[var]
            assert reason == 0 or reason in live_refs, (
                f"variable {var} has dead/unknown reason ref {reason}"
            )
        assigned = {
            var
            for var in range(1, self._num_vars + 1)
            if self._assigns[var] != _UNDEF
        }
        assert assigned == trail_vars, (
            "assignment map and trail disagree: "
            f"{sorted(assigned ^ trail_vars)} in one but not the other"
        )
        # Order heap: position map and storage agree, the max-heap property
        # holds, and every unassigned variable is present (ready to branch).
        heap_buf = self._order.heap_buffer()
        pos_buf = self._order.positions_buffer()
        size = self._order.size
        assert size <= len(heap_buf), "heap size exceeds its storage"
        for index in range(size):
            var = heap_buf[index]
            assert 1 <= var <= self._num_vars, f"heap holds bad variable {var}"
            assert pos_buf[var] == index, (
                f"position map says {pos_buf[var]} for variable {var} at "
                f"heap index {index}"
            )
            if index:
                parent = heap_buf[(index - 1) >> 1]
                assert self._activity[parent] >= self._activity[var], (
                    f"heap property violated at index {index}"
                )
        for var in range(1, self._num_vars + 1):
            pos = pos_buf[var] if var < len(pos_buf) else -1
            if pos >= 0:
                assert pos < size and heap_buf[pos] == var, (
                    f"stale heap position {pos} for variable {var}"
                )
            else:
                assert var in assigned, (
                    f"unassigned variable {var} missing from the order heap"
                )

    # ---------------------------------------------------------- propagation

    def _enqueue(self, ilit: int, reason_ref: int) -> bool:
        value = self._lit_value(ilit)
        if value != _UNDEF:
            return value == _TRUE
        var = ilit >> 1
        self._assigns[var] = (ilit & 1) ^ 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason_ref
        self._trail[self._trail_len] = ilit
        self._trail_len += 1
        return True

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause ref or ``None``.

        Dispatches to the C core when this solver uses the ``"c"`` backend;
        the pure-Python loop below implements the identical algorithm.
        """
        if self._use_c:
            state = self._state
            state[0] = self._qhead
            state[1] = self._trail_len
            state[2] = len(self._trail_lim)
            state[3] = 0
            conflict = self._cfn(
                self._arena.buffer_info()[0],
                self._heads.buffer_info()[0],
                self._assigns.buffer_info()[0],
                self._level.buffer_info()[0],
                self._reason.buffer_info()[0],
                self._trail.buffer_info()[0],
                state.buffer_info()[0],
            )
            self._qhead = state[0]
            self._trail_len = state[1]
            self.stats.propagations += state[3]
            return conflict if conflict else None
        return self._propagate_python()

    def _propagate_python(self) -> Optional[int]:
        """The pure-Python propagation loop (mirror of ``search.c``).

        Walks the intrusive watcher list of each newly falsified literal:
        a watcher whose cached *blocker* literal is already true is skipped
        without touching the clause body; otherwise the clause either moves
        the watch, keeps it (refreshing the blocker), propagates its other
        watched literal, or reports the conflict.
        """
        arena = self._arena
        heads = self._heads
        assigns = self._assigns
        levels = self._level
        reasons = self._reason
        trail = self._trail
        current_level = len(self._trail_lim)
        qhead = self._qhead
        trail_len = self._trail_len
        propagated = 0
        while qhead < trail_len:
            p = trail[qhead]
            qhead += 1
            propagated += 1
            false_lit = p ^ 1
            prev_link = -1  # -1: the list head; otherwise an arena index
            ptr = heads[false_lit]
            while ptr:
                ref = ptr >> 1
                slot = ptr & 1
                next_link = ref + 1 + slot
                nxt = arena[next_link]
                blocker = arena[ref + 3 + slot]
                bval = assigns[blocker >> 1]
                if bval >= 0 and bval ^ (blocker & 1) == 1:
                    prev_link = next_link
                    ptr = nxt
                    continue
                base = ref + _HDR
                other = arena[base + 1 - slot]
                if other != blocker:
                    oval = assigns[other >> 1]
                    if oval >= 0 and oval ^ (other & 1) == 1:
                        arena[ref + 3 + slot] = other  # refresh the blocker
                        prev_link = next_link
                        ptr = nxt
                        continue
                size = arena[ref] >> 2
                moved = False
                for index in range(base + 2, base + size):
                    lit = arena[index]
                    value = assigns[lit >> 1]
                    if value < 0 or value ^ (lit & 1) == 1:
                        arena[base + slot] = lit
                        arena[index] = false_lit
                        arena[ref + 3 + slot] = other
                        arena[next_link] = heads[lit]
                        heads[lit] = ptr
                        if prev_link < 0:
                            heads[false_lit] = nxt
                        else:
                            arena[prev_link] = nxt
                        moved = True
                        break
                if moved:
                    ptr = nxt
                    continue
                oval = assigns[other >> 1]
                if oval >= 0 and oval ^ (other & 1) == 0:
                    # other is falsified: conflict.
                    self._qhead = trail_len
                    self._trail_len = trail_len
                    self.stats.propagations += propagated
                    return ref
                var = other >> 1
                assigns[var] = (other & 1) ^ 1
                levels[var] = current_level
                reasons[var] = ref
                trail[trail_len] = other
                trail_len += 1
                prev_link = next_link
                ptr = nxt
        self._qhead = qhead
        self._trail_len = trail_len
        self.stats.propagations += propagated
        return None

    # --------------------------------------------------------------- search

    def _new_decision_level(self) -> None:
        self._trail_lim.append(self._trail_len)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        if level < self._search_floor:
            self._search_floor = level
        bound = self._trail_lim[level]
        trail = self._trail
        assigns = self._assigns
        polarity = self._polarity
        reason = self._reason
        order_insert = self._order.insert
        for index in range(self._trail_len - 1, bound - 1, -1):
            ilit = trail[index]
            var = ilit >> 1
            assigns[var] = _UNDEF
            polarity[var] = (ilit & 1) == 0
            reason[var] = 0
            order_insert(var)
        self._trail_len = bound
        del self._trail_lim[level:]
        self._qhead = bound

    def _var_bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for index in range(1, self._num_vars + 1):
                self._activity[index] *= 1e-100
            self._var_inc *= 1e-100
            self._order.rebuild()
        self._order.update(var)

    def _var_decay_activity(self) -> None:
        self._var_inc /= self._var_decay

    def _clause_bump(self, ref: int) -> None:
        activity = self._activity_of.get(ref, 0.0) + self._cla_inc
        self._activity_of[ref] = activity
        if activity > 1e20:
            for learnt in self._activity_of:
                self._activity_of[learnt] *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP conflict analysis; returns (learnt clause, backjump level)."""
        arena = self._arena
        learnt: list[int] = [0]
        seen = self._seen
        counter = 0
        p = -1
        index = self._trail_len - 1
        current_level = self._decision_level()
        clause = conflict
        while True:
            assert clause != 0
            if arena[clause] & _FLAG_LEARNT:
                self._clause_bump(clause)
            base = clause + _HDR
            for position in range(base, base + (arena[clause] >> 2)):
                q = arena[position]
                if p != -1 and (q >> 1) == (p >> 1):
                    continue
                var = q >> 1
                if not seen[var] and self._level[var] > 0:
                    seen[var] = 1
                    self._var_bump(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[self._trail[index] >> 1]:
                index -= 1
            p = self._trail[index]
            var = p >> 1
            clause = self._reason[var]
            seen[var] = 0
            counter -= 1
            index -= 1
            if counter == 0:
                break
        learnt[0] = p ^ 1

        # Local (non-recursive) clause minimization over the shared ``seen``
        # buffer: at this point ``seen[var] == 1`` exactly for the variables
        # of ``learnt[1:]`` (the UIP's variable was cleared when it was
        # dequeued, and it cannot occur in the reason of a lower-level
        # literal, so no separate marker set is needed).  A literal is
        # redundant when every other literal of its reason clause is already
        # in the learnt clause or fixed at level 0.
        levels = self._level
        reasons = self._reason
        minimized = [learnt[0]]
        for q in learnt[1:]:
            reason = reasons[q >> 1]
            if not reason:
                minimized.append(q)
                continue
            redundant = True
            base = reason + _HDR
            for position in range(base, base + (arena[reason] >> 2)):
                var = arena[position] >> 1
                if var != (q >> 1) and not seen[var] and levels[var] > 0:
                    redundant = False
                    break
            if not redundant:
                minimized.append(q)
        for q in learnt[1:]:
            seen[q >> 1] = 0
        self.stats.analyses += 1
        self.stats.minimized_literals += len(learnt) - len(minimized)
        learnt = minimized

        if len(learnt) == 1:
            backjump = 0
        else:
            max_index = 1
            max_level = levels[learnt[1] >> 1]
            for position in range(2, len(learnt)):
                lvl = levels[learnt[position] >> 1]
                if lvl > max_level:
                    max_level = lvl
                    max_index = position
            learnt[1], learnt[max_index] = learnt[max_index], learnt[1]
            backjump = max_level
        return learnt, backjump

    def _analyze_final(self, failed: int) -> list[int]:
        """Compute an assumption core given a falsified assumption literal."""
        core_internal = {failed}
        if self._decision_level() == 0:
            return [self._to_external(lit) for lit in core_internal]
        arena = self._arena
        seen = self._seen
        seen[failed >> 1] = 1
        bound = self._trail_lim[0]
        for index in range(self._trail_len - 1, bound - 1, -1):
            ilit = self._trail[index]
            var = ilit >> 1
            if not seen[var]:
                continue
            reason = self._reason[var]
            if not reason:
                core_internal.add(ilit)
            else:
                base = reason + _HDR
                for position in range(base, base + (arena[reason] >> 2)):
                    qvar = arena[position] >> 1
                    if qvar != var and self._level[qvar] > 0:
                        seen[qvar] = 1
            seen[var] = 0
        seen[failed >> 1] = 0
        return [self._to_external(lit) for lit in core_internal]

    def _pick_branch_literal(self) -> Optional[int]:
        while len(self._order):
            var = self._order.pop_max()
            if self._assigns[var] == _UNDEF:
                self.stats.decisions += 1
                return 2 * var + (0 if self._polarity[var] else 1)
        return None

    def _reduce_db(self) -> None:
        arena = self._arena
        reasons = self._reason
        activity_of = self._activity_of
        learnts = self._learnts
        learnts.sort(key=lambda ref: activity_of.get(ref, 0.0))
        threshold = self._cla_inc / max(len(learnts), 1)
        keep: list[int] = []
        removed = 0
        half = len(learnts) // 2
        for index, ref in enumerate(learnts):
            base = ref + _HDR
            lit0 = arena[base]
            lit1 = arena[base + 1]
            locked = (
                reasons[lit0 >> 1] == ref and self._lit_value(lit0) == _TRUE
            ) or (reasons[lit1 >> 1] == ref and self._lit_value(lit1) == _TRUE)
            if locked or (arena[ref] >> 2) <= 2:
                keep.append(ref)
            elif index < half or activity_of.get(ref, 0.0) < threshold:
                self._detach(ref)
                self._free(ref)
                removed += 1
            else:
                keep.append(ref)
        self._learnts = keep
        self.stats.deleted_clauses += removed
        self._maybe_compact()

    @staticmethod
    def _luby(index: int) -> int:
        """The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ... (0-based index)."""
        # Find the finite subsequence containing `index` and its size.
        size, sequence = 1, 0
        while size < index + 1:
            sequence += 1
            size = 2 * size + 1
        while size - 1 != index:
            size = (size - 1) // 2
            sequence -= 1
            index %= size
        return 1 << sequence

    def _search(self, assumptions: list[int]) -> bool:
        if self._use_c_search:
            return self._search_c(assumptions)
        return self._search_python(assumptions)

    def _search_python(self, assumptions: list[int]) -> bool:
        """The pure-Python search loop (mirror of ``repro_search``)."""
        restart_index = 0
        conflict_budget = 100 * self._luby(restart_index)
        conflicts_since_restart = 0
        max_learnts = max(len(self._clauses) // 3, 2000)
        total_conflicts = 0
        free_decisions = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                total_conflicts += 1
                if self.max_conflicts is not None and total_conflicts > self.max_conflicts:
                    self._core = []
                    self._cancel_until(0)
                    raise ConflictBudgetExceeded(
                        f"exceeded conflict budget of {self.max_conflicts}"
                    )
                if self._decision_level() == 0:
                    self._ok = False
                    self._core = []
                    return False
                learnt, backjump_level = self._analyze(conflict)
                self.stats.backjumped_levels += self._decision_level() - backjump_level
                self._cancel_until(max(backjump_level, 0))
                if len(learnt) == 1:
                    self._enqueue(learnt[0], 0)
                else:
                    ref = self._alloc(learnt, learnt=True)
                    self._attach(ref)
                    self._learnts.append(ref)
                    self._clause_bump(ref)
                    self.stats.learnt_clauses += 1
                    self._enqueue(learnt[0], ref)
                self._var_decay_activity()
                self._cla_inc /= self._cla_decay
                continue

            if conflicts_since_restart >= conflict_budget:
                self.stats.restarts += 1
                restart_index += 1
                conflict_budget = 100 * self._luby(restart_index)
                conflicts_since_restart = 0
                # Assumption-aware restart: keep the established assumption
                # levels and their propagations, undoing only the free
                # decisions above them.  The assumption prefix would be
                # re-decided in the same order anyway, and on trace formulas
                # it forces most of the circuit — restarting to level 0
                # would re-propagate tens of thousands of literals per
                # restart.
                self._cancel_until(min(self._decision_level(), len(assumptions)))
                continue

            if len(self._learnts) >= max_learnts + self._trail_len:
                self._reduce_db()
                max_learnts = int(max_learnts * 1.3)

            next_lit: Optional[int] = None
            while self._decision_level() < len(assumptions):
                assumption = assumptions[self._decision_level()]
                value = self._lit_value(assumption)
                if value == _TRUE:
                    self._new_decision_level()
                elif value == _FALSE:
                    self._core = self._analyze_final(assumption)
                    return False
                else:
                    next_lit = assumption
                    break
            if next_lit is None:
                next_lit = self._pick_branch_literal()
                if next_lit is None:
                    self._model = list(self._assigns)
                    return True
                free_decisions += 1
                if self.max_decisions is not None and free_decisions > self.max_decisions:
                    # The branch variable was popped from the order heap but
                    # never enqueued; without reinsertion it would be lost
                    # to every future search on this solver.
                    self._order.insert(next_lit >> 1)
                    self._cancel_to_root()
                    raise DecisionBudgetExceeded(
                        f"exceeded decision budget of {self.max_decisions}"
                    )
            self._new_decision_level()
            self._enqueue(next_lit, 0)

    # ------------------------------------------------------- C search kernel

    def _ensure_buf(self, name: str, size: int) -> array:
        """A cached ``array('l')`` scratch buffer of at least ``size`` slots."""
        buf = getattr(self, name)
        if buf is None or len(buf) < size:
            buf = array("l", [0]) * max(size, 16)
            setattr(self, name, buf)
        return buf

    def _search_c(self, assumptions: list[int]) -> bool:
        """Drive the compiled search kernel (mirror of :meth:`_search_python`).

        The kernel runs the entire inner CDCL loop — propagation, analysis,
        learning, backjumping, VSIDS, restarts, decisions — over the shared
        flat buffers and returns only for control events.  This driver
        provisions buffer capacity, marshals the per-search bookkeeping in
        and out through the state array, drains the refs of newly learnt
        clauses, and replays the clause-activity bump log (clause activities
        only influence Python-side database reduction, so the kernel records
        *which* learnt clauses were bumped and Python applies the
        bump/decay/rescale arithmetic — bit-identically, since the log
        preserves execution order).
        """
        stats = self.stats
        n_assumptions = len(assumptions)
        restart_index = 0
        conflict_budget = 100 * self._luby(restart_index)
        conflicts_since_restart = 0
        max_learnts = max(len(self._clauses) // 3, 2000)
        total_conflicts = 0
        free_decisions = 0
        state = self._sstate
        floats = self._sfloat
        assump_buf = self._ensure_buf("_assump_buf", n_assumptions)
        for index, ilit in enumerate(assumptions):
            assump_buf[index] = ilit

        while True:
            num_vars = self._num_vars
            arena = self._arena
            # A single conflict analysis may allocate one learnt clause of
            # up to num_vars literals, log one bump per resolved clause plus
            # the learnt ref and a decay sentinel, and push one scratch ref.
            # The kernel re-checks this margin before every analysis and
            # exits with _EXIT_CAPACITY instead of overflowing.
            needed = self._arena_len + num_vars + _HDR + 2
            if len(arena) < needed:
                target = max(
                    needed,
                    len(arena) + (len(arena) >> 1),
                    self._arena_len + 65536,
                )
                arena.frombytes(bytes((target - len(arena)) * arena.itemsize))
            scratch = self._ensure_buf("_scratch_buf", max(num_vars, 8192))
            bump_log = self._ensure_buf(
                "_bump_log", max(2 * num_vars + 4096, 16384)
            )
            analyze_buf = self._ensure_buf("_analyze_buf", 2 * num_vars + 4)
            lim_buf = self._ensure_buf(
                "_lim_buf", num_vars + n_assumptions + 2
            )
            for index, bound in enumerate(self._trail_lim):
                lim_buf[index] = bound
            order = self._order
            order.grow_to(num_vars)
            state[_S_QHEAD] = self._qhead
            state[_S_TRAIL_LEN] = self._trail_len
            state[_S_LEVELS] = len(self._trail_lim)
            state[_S_PROPAGATIONS] = 0
            state[_S_ARENA_LEN] = self._arena_len
            state[_S_ARENA_CAP] = len(arena)
            state[_S_HEAP_SIZE] = order.size
            state[_S_NUM_VARS] = num_vars
            state[_S_NUM_ASSUMPTIONS] = n_assumptions
            state[_S_LEARNT_COUNT] = len(self._learnts)
            state[_S_MAX_LEARNTS] = max_learnts
            state[_S_RESTART_INDEX] = restart_index
            state[_S_CONFLICT_BUDGET] = conflict_budget
            state[_S_CONFLICTS_SINCE_RESTART] = conflicts_since_restart
            state[_S_TOTAL_CONFLICTS] = total_conflicts
            state[_S_MAX_CONFLICTS] = (
                -1 if self.max_conflicts is None else self.max_conflicts
            )
            state[_S_FREE_DECISIONS] = free_decisions
            state[_S_MAX_DECISIONS] = (
                -1 if self.max_decisions is None else self.max_decisions
            )
            state[_S_SEARCH_FLOOR] = self._search_floor
            state[_S_EXIT_REASON] = 0
            state[_S_EXIT_PAYLOAD] = 0
            for index in range(_S_D_CONFLICTS, _S_D_BACKJUMPED + 1):
                state[index] = 0
            state[_S_SCRATCH_LEN] = 0
            state[_S_SCRATCH_CAP] = len(scratch)
            state[_S_LOG_LEN] = 0
            state[_S_LOG_CAP] = len(bump_log)
            floats[0] = self._var_inc
            floats[1] = self._var_decay
            self._csearch(
                arena.buffer_info()[0],
                self._heads.buffer_info()[0],
                self._assigns.buffer_info()[0],
                self._level.buffer_info()[0],
                self._reason.buffer_info()[0],
                self._trail.buffer_info()[0],
                lim_buf.buffer_info()[0],
                self._polarity.buffer_info()[0],
                self._seen.buffer_info()[0],
                self._activity.buffer_info()[0],
                order.heap_buffer().buffer_info()[0],
                order.positions_buffer().buffer_info()[0],
                assump_buf.buffer_info()[0],
                scratch.buffer_info()[0],
                bump_log.buffer_info()[0],
                analyze_buf.buffer_info()[0],
                state.buffer_info()[0],
                floats.buffer_info()[0],
            )
            # Marshal the kernel's bookkeeping back out.
            self._qhead = state[_S_QHEAD]
            self._trail_len = state[_S_TRAIL_LEN]
            self._trail_lim = list(lim_buf[: state[_S_LEVELS]])
            stats.propagations += state[_S_PROPAGATIONS]
            self._arena_len = state[_S_ARENA_LEN]
            order.set_size(state[_S_HEAP_SIZE])
            restart_index = state[_S_RESTART_INDEX]
            conflict_budget = state[_S_CONFLICT_BUDGET]
            conflicts_since_restart = state[_S_CONFLICTS_SINCE_RESTART]
            total_conflicts = state[_S_TOTAL_CONFLICTS]
            free_decisions = state[_S_FREE_DECISIONS]
            self._search_floor = state[_S_SEARCH_FLOOR]
            stats.conflicts += state[_S_D_CONFLICTS]
            stats.decisions += state[_S_D_DECISIONS]
            stats.restarts += state[_S_D_RESTARTS]
            stats.learnt_clauses += state[_S_D_LEARNTS]
            stats.analyses += state[_S_D_ANALYSES]
            stats.minimized_literals += state[_S_D_MINIMIZED]
            stats.backjumped_levels += state[_S_D_BACKJUMPED]
            self._var_inc = floats[0]
            learnts = self._learnts
            for index in range(state[_S_SCRATCH_LEN]):
                learnts.append(scratch[index])
            for index in range(state[_S_LOG_LEN]):
                entry = bump_log[index]
                if entry:
                    self._clause_bump(entry)
                else:
                    self._cla_inc /= self._cla_decay
            reason = state[_S_EXIT_REASON]
            if reason == _EXIT_SAT:
                self._model = list(self._assigns)
                return True
            if reason == _EXIT_UNSAT:
                self._ok = False
                self._core = []
                return False
            if reason == _EXIT_ASSUMPTION:
                self._core = self._analyze_final(state[_S_EXIT_PAYLOAD])
                return False
            if reason == _EXIT_REDUCE:
                self._reduce_db()
                max_learnts = int(max_learnts * 1.3)
            elif reason == _EXIT_CONFLICT_BUDGET:
                self._core = []
                self._cancel_until(0)
                raise ConflictBudgetExceeded(
                    f"exceeded conflict budget of {self.max_conflicts}"
                )
            elif reason == _EXIT_DECISION_BUDGET:
                self._cancel_to_root()
                raise DecisionBudgetExceeded(
                    f"exceeded decision budget of {self.max_decisions}"
                )
            elif reason != _EXIT_CAPACITY:  # pragma: no cover
                raise RuntimeError(f"C search kernel returned bad exit {reason}")
            # _EXIT_REDUCE and _EXIT_CAPACITY re-enter: the next iteration
            # re-provisions capacity and resumes at the loop top, where an
            # empty propagation queue makes re-entry a no-op.


class ConflictBudgetExceeded(RuntimeError):
    """Raised when ``Solver.max_conflicts`` is exhausted during search."""


class DecisionBudgetExceeded(RuntimeError):
    """Raised when ``Solver.max_decisions`` is exhausted during search."""
