/* CPython-API materialization of the flat gate arena.
 *
 * The one arena routine that must create Python objects: at the end of a
 * compile the flat clause store and journal stream are turned back into
 * the legacy structures — clause ``list`` objects (shared between the
 * hard/grouped partitions and the journal's "c" events exactly as the
 * legacy emitter shares them) and the tuple journal.  Doing this walk in C
 * removes the dominant cost of large cold compiles, without changing a
 * byte of the result: the object graph built here is identical to the one
 * :meth:`GateArena.materialize` builds in pure Python, which remains the
 * always-available fallback.
 *
 * Unlike the other cores this library includes Python.h, so it is built
 * only when the interpreter's headers are present and is loaded with
 * ``ctypes.PyDLL`` (the GIL stays held; every entry point runs Python
 * allocation machinery).
 *
 * Entry point:
 *   repro_materialize(lits, cend, cgid, nclauses, js, jlen, raw, ngroups,
 *                     journaling)
 *     -> (clauses, hard, grouped, journal | None)
 */

#include <Python.h>
#include <stdint.h>

typedef int64_t i64;

enum {
    TAG_V = 1,
    TAG_C = 2,
    TAG_G = 3,
    TAG_T = 4,
    TAG_RAW = 5,
    TAG_CE = 6,
    TAG_CX = 7,
    TAG_GRP = 8
};

/* Interned event-kind strings, created once per process. */
static PyObject *s_c, *s_g, *s_v, *s_grp, *s_t;

static int init_strings(void) {
    if (s_c)
        return 0;
    s_c = PyUnicode_InternFromString("c");
    s_g = PyUnicode_InternFromString("g");
    s_v = PyUnicode_InternFromString("v");
    s_grp = PyUnicode_InternFromString("grp");
    s_t = PyUnicode_InternFromString("t");
    if (!s_c || !s_g || !s_v || !s_grp || !s_t)
        return -1;
    return 0;
}

/* A journal tuple whose first slot is an interned kind string and whose
 * remaining slots are freshly built values (references are stolen). */
static PyObject *event2(PyObject *kind, PyObject *a) {
    if (!a)
        return NULL;
    PyObject *tuple = PyTuple_New(2);
    if (!tuple) {
        Py_XDECREF(a);
        return NULL;
    }
    Py_INCREF(kind);
    PyTuple_SET_ITEM(tuple, 0, kind);
    PyTuple_SET_ITEM(tuple, 1, a);
    return tuple;
}

static PyObject *event3(PyObject *kind, PyObject *a, PyObject *b) {
    if (!a || !b) {
        Py_XDECREF(a);
        Py_XDECREF(b);
        return NULL;
    }
    PyObject *tuple = PyTuple_New(3);
    if (!tuple) {
        Py_XDECREF(a);
        Py_XDECREF(b);
        return NULL;
    }
    Py_INCREF(kind);
    PyTuple_SET_ITEM(tuple, 0, kind);
    PyTuple_SET_ITEM(tuple, 1, a);
    PyTuple_SET_ITEM(tuple, 2, b);
    return tuple;
}

PyObject *repro_materialize(i64 *lits, i64 *cend, i64 *cgid, i64 nclauses,
                            i64 *js, i64 jlen, PyObject *raw, i64 ngroups,
                            i64 journaling) {
    PyObject *clauses = NULL, *hard = NULL, *grouped = NULL, *journal = NULL;
    PyObject *result = NULL;

    if (init_strings() < 0)
        return NULL;

    /* ---- clause store -> list-of-list, partitioned by owning group ---- */
    clauses = PyList_New(nclauses);
    hard = PyList_New(0);
    grouped = PyList_New(ngroups);
    if (!clauses || !hard || !grouped)
        goto fail;
    for (i64 g = 0; g < ngroups; g++) {
        PyObject *bucket = PyList_New(0);
        if (!bucket)
            goto fail;
        PyList_SET_ITEM(grouped, g, bucket);
    }
    i64 start = 0;
    for (i64 i = 0; i < nclauses; i++) {
        i64 end = cend[i];
        PyObject *clause = PyList_New(end - start);
        if (!clause)
            goto fail;
        for (i64 k = start; k < end; k++) {
            PyObject *lit = PyLong_FromLongLong(lits[k]);
            if (!lit) {
                Py_DECREF(clause);
                goto fail;
            }
            PyList_SET_ITEM(clause, k - start, lit);
        }
        PyList_SET_ITEM(clauses, i, clause); /* owns the reference */
        i64 gid = cgid[i];
        PyObject *bucket = gid < 0 ? hard : PyList_GET_ITEM(grouped, gid);
        if (PyList_Append(bucket, clause) < 0)
            goto fail;
        start = end;
    }

    /* ---- flat journal stream -> legacy tuple journal ---- */
    if (journaling) {
        journal = PyList_New(0);
        if (!journal)
            goto fail;
        i64 cursor = 0;
        i64 pos = 0;
        while (pos < jlen) {
            i64 tag = js[pos];
            PyObject *event = NULL;
            if (tag == TAG_C) {
                PyObject *clause = PyList_GET_ITEM(clauses, cursor);
                Py_INCREF(clause); /* event3 steals this reference */
                event = event3(s_c, PyLong_FromLongLong(cgid[cursor]), clause);
                cursor += 1;
                pos += 1;
            } else if (tag == TAG_G) {
                i64 count = js[pos + 5];
                event = PyTuple_New(6);
                if (!event)
                    goto fail;
                Py_INCREF(s_g);
                PyTuple_SET_ITEM(event, 0, s_g);
                for (int k = 1; k <= 5; k++) {
                    PyObject *word = PyLong_FromLongLong(js[pos + k]);
                    if (!word) {
                        Py_DECREF(event);
                        goto fail;
                    }
                    PyTuple_SET_ITEM(event, k, word);
                }
                if (PyList_Append(journal, event) < 0) {
                    Py_DECREF(event);
                    goto fail;
                }
                Py_DECREF(event);
                event = NULL;
                pos += 6;
                for (i64 d = 0; d < count; d++) {
                    PyObject *clause = PyList_GET_ITEM(clauses, cursor);
                    Py_INCREF(clause); /* event3 steals this reference */
                    PyObject *def = event3(s_c, PyLong_FromLongLong(-1), clause);
                    if (!def)
                        goto fail;
                    cursor += 1;
                    if (PyList_Append(journal, def) < 0) {
                        Py_DECREF(def);
                        goto fail;
                    }
                    Py_DECREF(def);
                }
                continue;
            } else if (tag == TAG_V) {
                event = event2(s_v, PyLong_FromLongLong(js[pos + 1]));
                pos += 2;
            } else if (tag == TAG_RAW || tag == TAG_CE || tag == TAG_CX) {
                event = PyList_GetItem(raw, (Py_ssize_t)js[pos + 1]);
                if (!event)
                    goto fail;
                Py_INCREF(event);
                pos += 3 + js[pos + 2];
            } else if (tag == TAG_GRP) {
                event = event2(s_grp, PyLong_FromLongLong(js[pos + 1]));
                pos += 2;
            } else if (tag == TAG_T) {
                event = event2(s_t, PyLong_FromLongLong(js[pos + 1]));
                cursor += 1; /* the constant's hard unit occupies one slot */
                pos += 2;
            } else {
                PyErr_Format(PyExc_AssertionError,
                             "corrupt journal stream tag %lld",
                             (long long)tag);
                goto fail;
            }
            if (!event)
                goto fail;
            if (PyList_Append(journal, event) < 0) {
                Py_DECREF(event);
                goto fail;
            }
            Py_DECREF(event);
        }
    } else {
        journal = Py_None;
        Py_INCREF(journal);
    }

    result = PyTuple_Pack(4, clauses, hard, grouped, journal);
fail:
    Py_XDECREF(clauses);
    Py_XDECREF(hard);
    Py_XDECREF(grouped);
    Py_XDECREF(journal);
    return result;
}
