"""The concolic tracer: concrete execution plus symbolic trace formula.

Given a program, a failing test input and a specification, the tracer
executes the program concretely on the test while emitting, for every
executed statement, the CNF clauses of that statement's transition relation
into the statement's clause group.  The test-input constraint and the
(violated) specification are emitted as hard clauses.  The result is the
extended trace formula of Section 2 of the paper, packaged as a
:class:`repro.encoding.TraceFormula`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.encoding.circuits import Bits, CircuitBuilder, simplifier_name
from repro.encoding.context import ArenaEncodingContext, StatementGroup
from repro.encoding.symbolic import ExpressionEncoder, expression_has_effects
from repro.encoding.trace import TraceFormula, TraceStep
from repro.lang import ast
from repro.lang.semantics import DEFAULT_WIDTH, apply_binary, apply_unary, truth, wrap
from repro.spec import Specification


class TraceError(RuntimeError):
    """Raised when a trace cannot be built (e.g. the test does not fail)."""


class _Return(Exception):
    """Internal non-local exit for return statements."""

    def __init__(self, concrete: Optional[int], symbolic: Optional[Bits]) -> None:
        super().__init__("return")
        self.concrete = concrete
        self.symbolic = symbolic


class _AssertionViolated(Exception):
    """Internal signal: the concrete run reached a failing assertion."""

    def __init__(self, line: int) -> None:
        super().__init__(f"assertion violated at line {line}")
        self.line = line


@dataclass
class _Frame:
    """One activation record with paired concrete and symbolic environments."""

    function: str
    concrete: dict[str, object] = field(default_factory=dict)
    symbolic: dict[str, object] = field(default_factory=dict)


class ConcolicTracer:
    """Builds extended trace formulas by concolic execution."""

    def __init__(
        self,
        program: ast.Program,
        width: int = DEFAULT_WIDTH,
        max_steps: int = 200_000,
        concrete_functions: Iterable[str] = (),
        loop_iteration_groups: bool = False,
        hard_functions: Iterable[str] = (),
        relevant_lines: Optional[Iterable[int]] = None,
        simplify: bool = True,
        analysis_narrowing: bool = True,
    ) -> None:
        """Create a tracer.

        ``concrete_functions`` are executed concretely only (no clauses) —
        the concolic trace-reduction technique.  ``hard_functions`` are
        encoded but their statements are *not* candidate bug locations (their
        clauses are emitted as hard clauses), which is how the strncat
        example treats the C library implementation.  ``loop_iteration_groups``
        switches on the per-iteration selector variables of Section 5.2.
        ``relevant_lines`` restricts symbolic encoding to the given source
        lines (the slicing trace-reduction technique): assignments outside
        the slice are executed concretely and contribute no clauses.
        ``simplify`` toggles the structure-hashed gate cache and the
        constant-aware arithmetic rewrites of the circuit builder.
        ``analysis_narrowing`` lets the abstract-interpretation pass narrow
        the bit-width of written values: statements whose value provably
        fits ``k < width`` bits get fresh vectors with the high bits pinned,
        which the circuit simplifier then folds through downstream uses.
        """
        self.program = program
        self.width = width
        self.max_steps = max_steps
        self.concrete_functions = set(concrete_functions)
        self.hard_functions = set(hard_functions)
        self.loop_iteration_groups = loop_iteration_groups
        self.relevant_lines = set(relevant_lines) if relevant_lines is not None else None
        self.simplify = simplify
        self.analysis_narrowing = analysis_narrowing

    # ------------------------------------------------------------------ API

    def trace(
        self,
        inputs: Sequence[int] | Mapping[str, int],
        spec: Specification,
        entry: str = "main",
        nondet_values: Sequence[int] = (),
    ) -> TraceFormula:
        """Build the extended trace formula for a failing test.

        Raises :class:`TraceError` if the test does not actually violate the
        specification (the formula would not be unsatisfiable in that case).
        """
        self._context = ArenaEncodingContext(self.width)
        self._builder = CircuitBuilder(self._context, simplify=self.simplify)
        self._encoder = ExpressionEncoder(self._builder, self)
        self._steps: list[TraceStep] = []
        self._step_count = 0
        self._nondet_values = list(nondet_values)
        self._nondet_index = 0
        self._cache_stack: list[dict[int, int]] = [{}]
        self._frames: list[_Frame] = []
        self._loop_iterations: list[int] = []
        self._outputs_concrete: list[int] = []
        self._outputs_symbolic: list[Bits] = []
        self._test_inputs: dict[str, int] = {}
        self._current_function = entry

        function = self.program.function(entry)
        arguments = self._bind_inputs(function, inputs)
        self._write_intervals = None
        self._narrowed_vars = 0
        if self.analysis_narrowing:
            try:
                from repro.analysis import analyze_program

                analysis = analyze_program(
                    self.program,
                    entry=entry,
                    entry_inputs=arguments,
                    width=self.width,
                )
                if not analysis.has_errors:
                    self._write_intervals = analysis.write_intervals
            except Exception:
                # Narrowing is an optimization; a program the analyzer cannot
                # handle falls back to the full-width encoding.
                self._write_intervals = None
        self._globals = self._initialize_globals()
        frame = _Frame(function=entry)
        for name, value in arguments.items():
            bits = self._builder.fresh()
            with self._context.group(None):
                self._builder.fix_to_value(bits, value)
            frame.concrete[name] = value
            frame.symbolic[name] = bits
            self._test_inputs[name] = value

        failing_line: Optional[int] = None
        return_concrete: Optional[int] = None
        return_symbolic: Optional[Bits] = None
        try:
            return_concrete, return_symbolic = self._call_function(function, frame)
        except _AssertionViolated as violation:
            failing_line = violation.line

        description = spec.describe()
        if spec.kind == "assertion":
            if failing_line is None:
                raise TraceError("the test does not violate any assertion")
        else:
            if failing_line is not None:
                # A crash before producing output still violates the spec; the
                # hard constraint is the assertion at the crash point, which
                # was already emitted by _exec_assert.
                pass
            else:
                observable = list(self._outputs_concrete)
                observable_symbolic = list(self._outputs_symbolic)
                if return_concrete is not None:
                    observable.append(return_concrete)
                    observable_symbolic.append(
                        return_symbolic
                        if return_symbolic is not None
                        else self._builder.const(return_concrete)
                    )
                expected = list(spec.expected)
                if spec.kind == "return-value":
                    observable = observable[-1:]
                    observable_symbolic = observable_symbolic[-1:]
                if observable == expected:
                    raise TraceError(
                        "the test does not violate the specification "
                        f"(observable output {observable} matches)"
                    )
                if len(observable_symbolic) != len(expected):
                    # Output length differs; constrain the common prefix and
                    # the mismatching positions we do have.
                    pass
                with self._context.group(None):
                    for bits, value in zip(observable_symbolic, expected):
                        self._builder.fix_to_value(bits, value)

        self._context.finalize()
        return TraceFormula.from_context(
            self._context,
            steps=self._steps,
            test_inputs=self._test_inputs,
            assertion_description=description,
            simplifier=simplifier_name(self.simplify),
            narrowed_vars=self._narrowed_vars,
        )

    # ----------------------------------------------------- resolver protocol

    def read_scalar(self, name: str, line: int) -> Bits:
        frame = self._frame
        for scope in (frame.symbolic, self._globals.symbolic):
            if name in scope:
                value = scope[name]
                if isinstance(value, tuple):
                    return value
        raise TraceError(f"line {line}: read of undeclared variable {name!r}")

    def read_array(self, name: str, line: int) -> list[Bits]:
        frame = self._frame
        for scope in (frame.symbolic, self._globals.symbolic):
            if name in scope:
                value = scope[name]
                if isinstance(value, list):
                    return value
        raise TraceError(f"line {line}: read of undeclared array {name!r}")

    def encode_call(self, call: ast.Call) -> Bits:
        if call.name == "nondet":
            value = self._next_nondet()
            bits = self._builder.fresh()
            with self._context.group(None):
                self._builder.fix_to_value(bits, value)
            self._test_inputs[f"nondet#{self._nondet_index - 1}"] = value
            self._call_cache[id(call)] = value
            return bits
        callee = self.program.function(call.name)
        argument_values: dict[str, int] = {}
        argument_bits: dict[str, Bits] = {}
        force_binding = call.name in self.hard_functions
        for param, arg in zip(callee.params, call.args):
            bits = self._encoder.encode_argument(arg, force=force_binding)
            argument_bits[param] = bits
            argument_values[param] = self._concrete_eval(arg)
        if call.name in self.concrete_functions:
            value = self._execute_concretely(callee, argument_values)
            self._call_cache[id(call)] = value
            return self._builder.const(value)
        frame = _Frame(function=call.name)
        frame.concrete.update(argument_values)
        frame.symbolic.update(argument_bits)
        previous_function = self._current_function
        self._current_function = call.name
        try:
            concrete, symbolic = self._call_function(callee, frame)
        finally:
            self._current_function = previous_function
        concrete = concrete if concrete is not None else 0
        symbolic = symbolic if symbolic is not None else self._builder.const(0)
        self._call_cache[id(call)] = concrete
        return symbolic

    def concrete_value(self, expr: ast.Expr) -> Optional[int]:
        try:
            return self._concrete_eval(expr)
        except TraceError:
            return None


    # --------------------------------------------------------------- running

    def _call_function(
        self, function: ast.Function, frame: _Frame
    ) -> tuple[Optional[int], Optional[Bits]]:
        self._frames.append(frame)
        # A fresh frame starts outside any loop: a callee's statements must
        # not inherit the caller's iteration counter, or the same line would
        # land in different groups depending on the call site.
        previous_iterations = self._loop_iterations
        self._loop_iterations = []
        try:
            self._exec_block(function.body)
        except _Return as ret:
            return ret.concrete, ret.symbolic
        finally:
            self._frames.pop()
            self._loop_iterations = previous_iterations
        if function.returns_value:
            return 0, self._builder.const(0)
        return None, None

    @property
    def _frame(self) -> _Frame:
        return self._frames[-1]

    def _exec_block(self, statements: tuple[ast.Stmt, ...]) -> None:
        for stmt in statements:
            self._exec(stmt)

    def _make_group(self, line: int, kind: str) -> StatementGroup:
        iteration = None
        if self.loop_iteration_groups and self._loop_iterations:
            iteration = self._loop_iterations[-1]
        hard_context = self._current_function in self.hard_functions
        if hard_context:
            return None  # type: ignore[return-value]
        return StatementGroup(line=line, function=self._current_function, iteration=iteration)

    def _record(self, stmt: ast.Stmt, kind: str, description: str = "") -> None:
        iteration = self._loop_iterations[-1] if self._loop_iterations else None
        self._steps.append(
            TraceStep(
                line=stmt.line,
                function=self._current_function,
                kind=kind,
                iteration=iteration if self.loop_iteration_groups else None,
                description=description,
            )
        )

    def _tick(self) -> None:
        self._step_count += 1
        if self._step_count > self.max_steps:
            raise TraceError(f"trace exceeded {self.max_steps} steps")

    @property
    def _call_cache(self) -> dict[int, int]:
        """Call-value cache for the statement currently being encoded."""
        return self._cache_stack[-1]

    def _exec(self, stmt: ast.Stmt) -> None:
        self._tick()
        self._cache_stack.append({})
        try:
            self._dispatch(stmt)
        finally:
            self._cache_stack.pop()

    def _dispatch(self, stmt: ast.Stmt) -> None:
        if self.relevant_lines is not None and stmt.line not in self.relevant_lines:
            if self._exec_sliced_out(stmt):
                return
        if isinstance(stmt, ast.VarDecl):
            self._exec_assign_like(stmt, stmt.name, stmt.init, kind="decl")
        elif isinstance(stmt, ast.ArrayDecl):
            self._exec_array_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._exec_assign_like(stmt, stmt.name, stmt.value, kind="assign")
        elif isinstance(stmt, ast.ArrayAssign):
            self._exec_array_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt)
        elif isinstance(stmt, ast.Return):
            self._exec_return(stmt)
        elif isinstance(stmt, ast.Assert):
            self._exec_assert(stmt)
        elif isinstance(stmt, ast.Assume):
            self._exec_assume(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._exec_expr_stmt(stmt)
        elif isinstance(stmt, ast.Print):
            self._exec_print(stmt)
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"statement {type(stmt).__name__}")

    def _exec_sliced_out(self, stmt: ast.Stmt) -> bool:
        """Execute a statement outside the slice concretely only.

        The statement's effect on the concrete state is preserved (so the
        rest of the execution follows the same path) while its symbolic
        effect is a constant — no clauses, no clause group.  Returns ``True``
        when the statement was fully handled here; control-flow statements
        (branches, loops, returns, calls) return ``False`` because their
        children may still contain relevant lines.
        """
        if isinstance(stmt, (ast.Assign, ast.VarDecl)):
            value_expr = stmt.value if isinstance(stmt, ast.Assign) else stmt.init
            if value_expr is not None and expression_has_effects(value_expr):
                return False
            concrete = self._concrete_eval(value_expr) if value_expr is not None else 0
            self._store(
                stmt.name,
                concrete,
                self._builder.const(concrete),
                declare=isinstance(stmt, ast.VarDecl),
            )
            self._record(stmt, "sliced-out")
            return True
        if isinstance(stmt, ast.ArrayAssign):
            if expression_has_effects(stmt.index) or expression_has_effects(stmt.value):
                return False
            index = self._concrete_eval(stmt.index)
            value = self._concrete_eval(stmt.value)
            cells = self._lookup_array_concrete(stmt.name, stmt.line)
            symbolic = self._lookup_array_symbolic(stmt.name, stmt.line)
            if 0 <= index < len(cells):
                cells[index] = value
                symbolic[index] = self._builder.const(value)
            self._record(stmt, "sliced-out")
            return True
        if isinstance(stmt, (ast.Assume, ast.Print)):
            if isinstance(stmt, ast.Print):
                self._outputs_concrete.append(self._concrete_eval(stmt.value))
                self._outputs_symbolic.append(
                    self._builder.const(self._outputs_concrete[-1])
                )
            self._record(stmt, "sliced-out")
            return True
        return False

    # ----------------------------------------------------------- statements

    def _fresh_for_write(self, line: int) -> Bits:
        """A fresh vector for the value a statement writes — narrowed to the
        statically proven range when the analysis found one."""
        if self._write_intervals is not None:
            interval = self._write_intervals.get((self._current_function, line))
            if interval is not None:
                plan = interval.narrowing_plan(self.width)
                if plan is not None:
                    low_bits, signed = plan
                    self._narrowed_vars += self.width - low_bits
                    return self._builder.fresh_narrowed(low_bits, signed)
        return self._builder.fresh()

    def _check_write(self, line: int, concrete: int) -> None:
        """Soundness tripwire: the concrete value a narrowed statement writes
        must lie inside the interval the narrowing was derived from."""
        if __debug__ and self._write_intervals is not None:
            interval = self._write_intervals.get((self._current_function, line))
            assert interval is None or interval.contains(concrete), (
                f"analysis interval {interval} at {self._current_function}:"
                f"{line} does not contain traced value {concrete}"
            )

    def _exec_assign_like(
        self, stmt: ast.Stmt, name: str, value: Optional[ast.Expr], kind: str
    ) -> None:
        group = self._make_group(stmt.line, kind)
        with self._context.group(group):
            if value is not None:
                rhs_bits = self._encoder.encode(value)
            else:
                rhs_bits = self._builder.const(0)
            fresh = self._fresh_for_write(stmt.line)
            self._builder.assert_equal(fresh, rhs_bits)
        concrete = self._concrete_eval(value) if value is not None else 0
        self._check_write(stmt.line, concrete)
        self._store(name, concrete, fresh, declare=kind == "decl")
        self._record(stmt, kind, f"{name} = ...")

    def _exec_array_decl(self, stmt: ast.ArrayDecl) -> None:
        group = self._make_group(stmt.line, "decl")
        concrete_cells = [0] * stmt.size
        symbolic_cells: list[Bits] = []
        with self._context.group(group):
            for index in range(stmt.size):
                if index < len(stmt.init):
                    rhs_bits = self._encoder.encode(stmt.init[index])
                else:
                    rhs_bits = self._builder.const(0)
                fresh = self._fresh_for_write(stmt.line)
                self._builder.assert_equal(fresh, rhs_bits)
                symbolic_cells.append(fresh)
        for index in range(min(stmt.size, len(stmt.init))):
            concrete_cells[index] = self._concrete_eval(stmt.init[index])
        self._frame.concrete[stmt.name] = concrete_cells
        self._frame.symbolic[stmt.name] = symbolic_cells
        self._record(stmt, "decl", f"int {stmt.name}[{stmt.size}]")

    def _exec_array_assign(self, stmt: ast.ArrayAssign) -> None:
        group = self._make_group(stmt.line, "array-assign")
        cells = self._lookup_array_symbolic(stmt.name, stmt.line)
        with self._context.group(group):
            index_bits = self._encoder.encode(stmt.index)
            value_bits = self._encoder.encode(stmt.value)
            new_cells: list[Bits] = []
            constant_index = self._builder.constant_of(index_bits)
            for position, cell in enumerate(cells):
                if constant_index is not None:
                    chosen = value_bits if position == constant_index else cell
                else:
                    is_here = self._builder.equals(index_bits, self._builder.const(position))
                    chosen = self._builder.mux(is_here, value_bits, cell)
                fresh = self._fresh_for_write(stmt.line)
                self._builder.assert_equal(fresh, chosen)
                new_cells.append(fresh)
        concrete_index = self._concrete_eval(stmt.index)
        concrete_value = self._concrete_eval(stmt.value)
        concrete_cells = self._lookup_array_concrete(stmt.name, stmt.line)
        if 0 <= concrete_index < len(concrete_cells):
            concrete_cells[concrete_index] = concrete_value
        self._replace_array_symbolic(stmt.name, new_cells)
        self._record(stmt, "array-assign", f"{stmt.name}[...] = ...")

    def _exec_if(self, stmt: ast.If) -> None:
        group = self._make_group(stmt.line, "branch")
        with self._context.group(group):
            cond_lit = self._encoder.encode_bool(stmt.cond)
        taken = truth(self._concrete_eval(stmt.cond))
        with self._context.group(group):
            self._context.emit([cond_lit] if taken else [-cond_lit])
        self._record(stmt, "branch", f"if(...) taken={taken}")
        self._exec_block(stmt.then_body if taken else stmt.else_body)

    def _exec_while(self, stmt: ast.While) -> None:
        loop_key = len(self._loop_iterations)
        self._loop_iterations.append(1)
        try:
            while True:
                self._tick()
                self._cache_stack.append({})
                try:
                    group = self._make_group(stmt.line, "loop-guard")
                    with self._context.group(group):
                        cond_lit = self._encoder.encode_bool(stmt.cond)
                    taken = truth(self._concrete_eval(stmt.cond))
                    with self._context.group(group):
                        self._context.emit([cond_lit] if taken else [-cond_lit])
                    self._record(stmt, "loop-guard", f"while(...) taken={taken}")
                finally:
                    self._cache_stack.pop()
                if not taken:
                    break
                self._exec_block(stmt.body)
                self._loop_iterations[loop_key] += 1
        finally:
            self._loop_iterations.pop()

    def _exec_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            self._record(stmt, "return")
            raise _Return(None, None)
        group = self._make_group(stmt.line, "return")
        with self._context.group(group):
            rhs_bits = self._encoder.encode(stmt.value)
            fresh = self._builder.fresh()
            self._builder.assert_equal(fresh, rhs_bits)
        concrete = self._concrete_eval(stmt.value)
        self._record(stmt, "return", "return ...")
        raise _Return(concrete, fresh)

    def _exec_assert(self, stmt: ast.Assert) -> None:
        # The condition is encoded in the hard context: if the assertion turns
        # out to be the violated one, the paper's post-condition "the assertion
        # holds at the end" must be hard.  For passing assertions the encoded
        # gates define auxiliary variables but add no constraint.
        with self._context.group(None):
            cond_lit = self._encoder.encode_bool(stmt.cond)
        concrete = truth(self._concrete_eval(stmt.cond))
        if concrete:
            self._record(stmt, "assert", "passed")
            return
        self._context.emit_hard([cond_lit])
        self._record(stmt, "assert", "failed")
        raise _AssertionViolated(stmt.line)

    def _exec_assume(self, stmt: ast.Assume) -> None:
        group = self._make_group(stmt.line, "assume")
        with self._context.group(group):
            cond_lit = self._encoder.encode_bool(stmt.cond)
        holds = truth(self._concrete_eval(stmt.cond))
        if not holds:
            raise TraceError(
                f"line {stmt.line}: assumption does not hold on the failing test"
            )
        with self._context.group(group):
            self._context.emit([cond_lit])
        self._record(stmt, "assume")

    def _exec_expr_stmt(self, stmt: ast.ExprStmt) -> None:
        group = self._make_group(stmt.line, "call")
        with self._context.group(group):
            self._encoder.encode(stmt.expr)
        self._record(stmt, "call", f"{getattr(stmt.expr, 'name', '?')}(...)")

    def _exec_print(self, stmt: ast.Print) -> None:
        group = self._make_group(stmt.line, "print")
        with self._context.group(group):
            rhs_bits = self._encoder.encode(stmt.value)
            fresh = self._builder.fresh()
            self._builder.assert_equal(fresh, rhs_bits)
        concrete = self._concrete_eval(stmt.value)
        self._outputs_concrete.append(concrete)
        self._outputs_symbolic.append(fresh)
        self._record(stmt, "print", f"print_int -> {concrete}")

    # ------------------------------------------------------- concrete helpers

    def _bind_inputs(
        self, function: ast.Function, inputs: Sequence[int] | Mapping[str, int]
    ) -> dict[str, int]:
        if isinstance(inputs, Mapping):
            missing = [name for name in function.params if name not in inputs]
            if missing:
                raise ValueError(f"missing inputs for parameters {missing}")
            return {name: wrap(int(inputs[name]), self.width) for name in function.params}
        values = list(inputs)
        if len(values) != len(function.params):
            raise ValueError(
                f"{function.name} expects {len(function.params)} inputs, got {len(values)}"
            )
        return {
            name: wrap(int(value), self.width)
            for name, value in zip(function.params, values)
        }

    def _initialize_globals(self) -> _Frame:
        globals_frame = _Frame(function="<globals>")
        for decl in self.program.globals:
            if isinstance(decl, ast.VarDecl):
                value = 0
                if decl.init is not None:
                    value = self._static_eval(decl.init, globals_frame)
                globals_frame.concrete[decl.name] = value
                globals_frame.symbolic[decl.name] = self._builder_const_later(value)
            else:
                values = [0] * decl.size
                for index, expr in enumerate(decl.init):
                    values[index] = self._static_eval(expr, globals_frame)
                globals_frame.concrete[decl.name] = values
                globals_frame.symbolic[decl.name] = [
                    self._builder_const_later(value) for value in values
                ]
        return globals_frame

    def _builder_const_later(self, value: int) -> Bits:
        return self._builder.const(value)

    def _static_eval(self, expr: ast.Expr, globals_frame: _Frame) -> int:
        """Evaluate a global initializer (constants and earlier globals only)."""
        if isinstance(expr, ast.IntLiteral):
            return wrap(expr.value, self.width)
        if isinstance(expr, ast.VarRef):
            value = globals_frame.concrete.get(expr.name)
            if isinstance(value, int):
                return value
            raise TraceError(f"line {expr.line}: global initializer uses {expr.name!r}")
        if isinstance(expr, ast.UnaryOp):
            return apply_unary(expr.op, self._static_eval(expr.operand, globals_frame), self.width)
        if isinstance(expr, ast.BinaryOp):
            return apply_binary(
                expr.op,
                self._static_eval(expr.left, globals_frame),
                self._static_eval(expr.right, globals_frame),
                self.width,
            )
        raise TraceError(f"line {expr.line}: unsupported global initializer")

    def _store(self, name: str, concrete: int, symbolic: Bits, declare: bool) -> None:
        frame = self._frame
        if declare or name in frame.concrete:
            frame.concrete[name] = concrete
            frame.symbolic[name] = symbolic
        elif name in self._globals.concrete:
            self._globals.concrete[name] = concrete
            self._globals.symbolic[name] = symbolic
        else:
            frame.concrete[name] = concrete
            frame.symbolic[name] = symbolic

    def _lookup_array_symbolic(self, name: str, line: int) -> list[Bits]:
        for scope in (self._frame.symbolic, self._globals.symbolic):
            value = scope.get(name)
            if isinstance(value, list):
                return value
        raise TraceError(f"line {line}: undeclared array {name!r}")

    def _lookup_array_concrete(self, name: str, line: int) -> list[int]:
        for scope in (self._frame.concrete, self._globals.concrete):
            value = scope.get(name)
            if isinstance(value, list):
                return value
        raise TraceError(f"line {line}: undeclared array {name!r}")

    def _replace_array_symbolic(self, name: str, cells: list[Bits]) -> None:
        if isinstance(self._frame.symbolic.get(name), list):
            self._frame.symbolic[name] = cells
        else:
            self._globals.symbolic[name] = cells

    def _next_nondet(self) -> int:
        if self._nondet_index < len(self._nondet_values):
            value = self._nondet_values[self._nondet_index]
        else:
            value = 0
        self._nondet_index += 1
        return wrap(value, self.width)

    def _execute_concretely(self, function: ast.Function, arguments: dict[str, int]) -> int:
        """Run a designated function concretely only (concolic reduction)."""
        from repro.lang.interp import Interpreter, _State
        from repro.lang.interp import ExecutionResult

        interpreter = Interpreter(self.program, width=self.width, max_steps=self.max_steps)
        state = _State(ExecutionResult(), [], self.max_steps)
        before = {
            name: (list(value) if isinstance(value, list) else value)
            for name, value in self._globals.concrete.items()
        }
        value = interpreter._call(function, dict(arguments), self._globals.concrete, state)
        # Synchronise the symbolic view of any global the call modified: its
        # new value is a concrete constant from the perspective of the trace.
        for name, old in before.items():
            new = self._globals.concrete[name]
            if new == old:
                continue
            if isinstance(new, list):
                self._globals.symbolic[name] = [self._builder.const(cell) for cell in new]
            else:
                self._globals.symbolic[name] = self._builder.const(new)
        return value if value is not None else 0

    def _concrete_eval(self, expr: ast.Expr) -> int:
        """Concrete value of an expression, reusing already-executed calls."""
        if isinstance(expr, ast.IntLiteral):
            return wrap(expr.value, self.width)
        if isinstance(expr, ast.VarRef):
            for scope in (self._frame.concrete, self._globals.concrete):
                if expr.name in scope:
                    value = scope[expr.name]
                    if isinstance(value, int):
                        return value
            raise TraceError(f"line {expr.line}: undeclared variable {expr.name!r}")
        if isinstance(expr, ast.ArrayRef):
            index = self._concrete_eval(expr.index)
            cells = self._lookup_array_concrete(expr.name, expr.line)
            if 0 <= index < len(cells):
                return cells[index]
            return 0
        if isinstance(expr, ast.UnaryOp):
            return apply_unary(expr.op, self._concrete_eval(expr.operand), self.width)
        if isinstance(expr, ast.BinaryOp):
            left = self._concrete_eval(expr.left)
            if expr.op == "&&" and not truth(left):
                return 0
            if expr.op == "||" and truth(left):
                return 1
            right = self._concrete_eval(expr.right)
            return apply_binary(expr.op, left, right, self.width)
        if isinstance(expr, ast.Conditional):
            condition = self._concrete_eval(expr.cond)
            return self._concrete_eval(expr.then if truth(condition) else expr.otherwise)
        if isinstance(expr, ast.Call):
            if id(expr) in self._call_cache:
                return self._call_cache[id(expr)]
            raise TraceError(
                f"line {expr.line}: concrete value of call {expr.name}() requested "
                "before it was encoded"
            )
        raise TraceError(f"unsupported expression {type(expr).__name__}")
