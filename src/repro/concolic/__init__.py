"""Concolic trace-formula construction.

"While we describe our algorithm in pure symbolic execution terms, our
algorithm fits in very well with concolic execution, where symbolic
constraints are generated while the concrete test case is run" (paper,
Related Work).  This package implements exactly that: the failing test is
executed concretely and, statement by statement along the executed path, the
symbolic trace formula is emitted with one clause group per statement.

The tracer also implements the two optimisations the paper borrows from
concolic execution — concrete values for designated (library) functions and
constant folding of input-independent sub-terms — which double as the
"concolic simulation (C)" trace-reduction technique of Table 3.
"""

from repro.concolic.executor import ConcolicTracer, TraceError

__all__ = ["ConcolicTracer", "TraceError"]
