"""Warm cross-version compilation: splice a journaled artifact onto a new
program version, re-encoding only the changed regions.

The cold compiler (:meth:`~repro.bmc.checker.BoundedModelChecker.compile_program`)
records an *emission journal*: every variable allocation, clause emission,
gate-cache insertion and call-interface crossing, in order.  Given a later
version of the same program, :func:`splice_compile` replays that journal —
statement for statement — and drops into the real encoder only for the
inlined subtrees of functions the change-impact diff
(:mod:`repro.analysis.impact`) marked as changed.

The replay maintains a variable map ``mu : base var -> new var`` that starts
as the identity and is extended at every region boundary from the recorded
call interface (arguments, guard, globals in; result, globals out).  The map
is kept *sign-preserving* and *strictly monotone*: under those two
invariants every canonicalization decision the structure-hashed circuit
builder made during the base compile (AND operand swaps, XOR sign
normalization, ITE condition flips, MAJ sign carries, sorted keys) comes
out identically for the mapped variables, so the replayed clauses are
literal-for-literal what a cold compile of the new version would emit.
Whenever an invariant would break — a sign flip across the interface, a
non-monotone pairing, a narrowing-plan divergence in supposedly unchanged
code — the splice *declines* (returns ``None``) and the caller falls back
to a cold compile.  Declining is always safe; splicing is only ever an
accelerator.

Two refinements keep the replayed and re-encoded parts converging on the
cold result.  *Gate elision*: journal gate events precede their definition
clauses and carry a clause count, so when a remapped gate key hits the warm
cache (typically because a region re-encode built the gate first) the
replay binds the output to the cached variable and skips the definition —
exactly the no-allocation, no-emission behavior of a cold compile's cache
hit.  *Span replay*: inside a changed function's re-encode, calls to
unchanged callees are paired positionally with the base subtree's recorded
child spans and replayed under the map instead of re-encoded (the bulk of
a changed function's cost is usually its unchanged callees); any
obstruction rolls the attempt back and the live encoder takes over.

Byte-identity of the result is not best-effort: the warm artifact has the
same variables, the same clauses in the same order, the same groups, steps,
violations and narrowing as a cold compile of the new version, so
localization reports (:func:`repro.serve.protocol.canonical_report_bytes`)
compare equal byte for byte.  The only intentionally approximate field is
``gates_shared`` (a compile-effort statistic, never part of a report): the
replay does not re-count cache hits inside unchanged code.
"""

from __future__ import annotations

import weakref
from typing import Optional

from repro.analysis.impact import (
    ProgramFingerprint,
    compute_impact,
    diff_fingerprints,
    fingerprint_program,
    program_line_map,
)
from repro.bmc.checker import BoundedModelChecker, _Frame
from repro.bmc.compiled import CompiledProgram
from repro.encoding.circuits import Bits, CircuitBuilder, simplifier_name
from repro.encoding.context import EncodingContext, StatementGroup
from repro.encoding.symbolic import ExpressionEncoder
from repro.encoding.trace import TraceStep

__all__ = ["splice_compile", "SpliceDecline"]

#: Opcodes whose first cache-key component packs two literals
#: (``x * 2**32 + y``): ITE, XOR3, MAJ.  See ``repro.encoding.circuits``.
_PACKED_OPS = frozenset((3, 4, 5))

#: Per-base-artifact span metadata (``id(base) -> {ce index -> bool}``):
#: whether each recorded call span is *self-contained* — references only
#: its own interface, its own allocations and the constant-true variable.
#: The property depends only on the base journal, so it is computed once
#: per artifact and shared by every warm compile against it (the store
#: replays many versions against one nearest ancestor).  Entries die with
#: the artifact via ``weakref.finalize``.
_SPAN_META_REGISTRY: dict[int, dict] = {}


def _span_meta(base: "CompiledProgram") -> dict:
    key = id(base)
    meta = _SPAN_META_REGISTRY.get(key)
    if meta is None:
        meta = {}
        _SPAN_META_REGISTRY[key] = meta
        weakref.finalize(base, _SPAN_META_REGISTRY.pop, key, None)
    return meta


#: Per-base-artifact prefix checkpoints (``id(base) -> meta``), same
#: lifecycle as `_SPAN_META_REGISTRY`.  ``meta["ce"]`` caches the journal
#: positions of every call-enter event; ``meta["checkpoints"]`` maps a
#: journal index to the complete replay state just before that index.  The
#: identity prefix of a journal (everything before the first changed-region
#: call) replays deterministically and produces shared, never-mutated
#: values, so a later splice against the same base can bulk-restore the
#: state instead of stepping through thousands of events.  Only valid while
#: the map is still the identity, the line map is the identity, and no
#: global-initializer substitution is active — the conditions under which
#: the prefix bytes cannot depend on the new program version at all.
_PREFIX_REGISTRY: dict[int, dict] = {}


def _prefix_meta(base: "CompiledProgram") -> dict:
    key = id(base)
    meta = _PREFIX_REGISTRY.get(key)
    if meta is None:
        meta = {"checkpoints": {}}
        _PREFIX_REGISTRY[key] = meta
        weakref.finalize(base, _PREFIX_REGISTRY.pop, key, None)
    return meta


class SpliceDecline(Exception):
    """Internal control flow: the journal cannot be replayed soundly."""


def _const_snapshot(value, width: int, true_lit: int):
    """The snapshot bits a constant encodes to: a ± true-literal pattern
    (per cell, for array values) — exactly ``CircuitBuilder.const``."""
    if isinstance(value, tuple):
        return tuple(_const_snapshot(cell, width, true_lit) for cell in value)
    pattern = value & ((1 << width) - 1)
    return tuple(
        true_lit if (pattern >> position) & 1 else -true_lit
        for position in range(width)
    )


def splice_compile(
    base: CompiledProgram,
    checker: BoundedModelChecker,
    entry: str = "main",
    base_key: Optional[str] = None,
    new_fingerprint: Optional[ProgramFingerprint] = None,
    outcome: Optional[dict] = None,
) -> Optional[CompiledProgram]:
    """Compile ``checker.program`` by replaying ``base``'s journal.

    Returns a :class:`CompiledProgram` byte-equivalent to what
    ``checker.compile_program(entry)`` would produce, or ``None`` when the
    diff is not spliceable (the caller should compile cold).  ``base_key``
    is recorded as ``spliced_from`` provenance when given.  Callers that
    already fingerprinted the new program (the store does, for its
    nearest-ancestor lookup) pass it as ``new_fingerprint`` to avoid a
    second canonicalization walk.  ``outcome``, when given, receives
    ``declined`` and ``declined_early`` flags: an early decline failed a
    precondition before any replay or analysis work, a late one gave up
    mid-replay (and paid for the partial replay).
    """
    try:
        result = _splice(base, checker, entry, base_key, new_fingerprint)
    except SpliceDecline:
        if outcome is not None:
            outcome["declined"] = True
            outcome["declined_early"] = False
        return None
    if result is None and outcome is not None:
        outcome["declined"] = True
        outcome["declined_early"] = True
    return result


def _splice(
    base: CompiledProgram,
    checker: BoundedModelChecker,
    entry: str,
    base_key: Optional[str],
    new_fingerprint: Optional[ProgramFingerprint],
) -> Optional[CompiledProgram]:
    if base.journal is None or base.fingerprint is None:
        return None
    options = checker.compile_options(entry)
    if dict(base.compile_options) != options:
        return None
    program = checker.program
    if entry not in program.functions:
        return None
    new_fp = (
        new_fingerprint
        if new_fingerprint is not None
        else fingerprint_program(program)
    )
    base_fp = base.fingerprint
    changes = diff_fingerprints(base_fp, new_fp)
    if changes.globals_reordered:
        # Initialization order is observable; there is no region boundary
        # around the global-initializer walk to splice across.
        return None
    region = set(changes.changed) & set(program.functions)
    init_subst: dict[str, tuple] = {}
    if changes.changed_globals:
        # A re-initialized global is spliceable when both initializers are
        # literal constants: constants encode as true-literal patterns (no
        # variables, no clauses), so the initializer walk emits the same
        # journal either way — only interface snapshots and the functions
        # *reading* the global see the new value.  Those functions join the
        # re-encode region; snapshots get the old pattern substituted for
        # the new one (`_subst_value`).  Added/removed globals change the
        # walk itself, so they still decline.
        if list(base_fp.global_hashes) != list(new_fp.global_hashes):
            return None
        base_inits = getattr(base_fp, "global_inits", None) or {}
        for gname in changes.changed_globals:
            base_init = base_inits.get(gname)
            new_init = new_fp.global_inits.get(gname)
            if base_init is None or new_init is None:
                return None
            if isinstance(base_init, tuple) != isinstance(new_init, tuple):
                return None
            init_subst[gname] = (base_init, new_init)
        if base.true_lit is None:
            return None
        touched = set(changes.changed_globals)
        for name, sig in new_fp.functions.items():
            if name in program.functions and touched & set(sig.free_globals):
                region.add(name)
    if entry in region or entry in changes.added or entry in changes.removed:
        # The entry function's body is the top level of the journal — it is
        # not bracketed by a call interface, so it cannot be re-encoded in
        # isolation.
        return None
    line_map = program_line_map(base_fp, program, new_fp)
    if line_map is None:
        return None

    # Narrowing-plan precondition: replaying an unchanged function reuses
    # its recorded narrowed widths verbatim, which is only sound when the
    # new version's analysis table proves the *same* plans there.  A
    # changed callee can ripple intervals into textually unchanged callers;
    # comparing the full (execution-independent) plan tables catches that.
    new_table: dict = {}
    analysis = None
    if checker.analysis_narrowing or checker.unwind_planning:
        # Seed the incremental re-analysis: hash-identical functions replay
        # their recorded fixpoint rounds from the base artifact instead of
        # re-solving (repro.analysis.incremental); the result is
        # value-identical to a cold analysis either way.
        checker._analysis_seed = (
            base.analysis_cache,
            set(program.functions) - region - set(changes.added),
            line_map,
        )
        try:
            analysis = checker._analysis_for(entry)
        finally:
            checker._analysis_seed = None
    if (
        checker.analysis_narrowing
        and analysis is not None
        and not analysis.has_errors
    ):
        new_table = analysis.flow_write_intervals
    checker._write_intervals = new_table
    new_plans = checker._narrowing_plan_table()
    skip_base = region | set(changes.removed)
    skip_new = region | set(changes.added)
    base_side: dict = {}
    for (fn, line), plan in base.narrowing_plans.items():
        if fn in skip_base:
            continue
        mapped_line = line_map.get(line)
        if mapped_line is None:
            raise SpliceDecline
        base_side[(fn, mapped_line)] = plan
    new_side = {k: p for k, p in new_plans.items() if k[0] not in skip_new}
    if base_side != new_side:
        raise SpliceDecline

    # Unwind-plan precondition, same shape: a replayed loop keeps the base
    # encoding's unroll count and (when proven) its dropped unwinding
    # assumption, which is only sound if the new version's loop-bound
    # analysis derives the identical per-loop plan.
    new_unwind_plans = checker._unwind_plan_table_for(analysis)
    base_unwind_side: dict = {}
    for (fn, line), plan in base.unwind_plans.items():
        if fn in skip_base:
            continue
        mapped_line = line_map.get(line)
        if mapped_line is None:
            raise SpliceDecline
        base_unwind_side[(fn, mapped_line)] = plan
    new_unwind_side = {
        k: p for k, p in new_unwind_plans.items() if k[0] not in skip_new
    }
    if base_unwind_side != new_unwind_side:
        raise SpliceDecline
    checker._unwind_plans = new_unwind_plans

    unchanged = set(program.functions) - region - set(changes.added)
    replay = _Replay(base, checker, region, line_map, unchanged, init_subst)
    start_index = start_pending = 0
    if not init_subst and all(new == old for old, new in line_map.items()):
        # The identity prefix (everything before the first region call)
        # cannot depend on the new version: jump over it from a checkpoint
        # left by an earlier splice against this base, and leave one at
        # this splice's own first region for the next version.
        meta = _prefix_meta(base)
        positions = meta.get("ce")
        if positions is None:
            positions = [
                (i, e[1]) for i, e in enumerate(base.journal) if e[0] == "ce"
            ]
            meta["ce"] = positions
        first = next((i for i, fn in positions if fn in region), len(base.journal))
        checkpoints = meta["checkpoints"]
        best = -1
        for i in checkpoints:
            if best < i <= first:
                best = i
        if best >= 0:
            start_index, start_pending = replay._restore_checkpoint(
                checkpoints[best], best
            )
        if first < len(base.journal) and first not in checkpoints:
            replay._checkpoint_at = first
            replay._checkpoints = checkpoints
    replay.run(start_index, start_pending)
    context = replay.context

    # The backward slice consumes only statement kinds, lines, scope-
    # qualified defs/uses and callee names — all captured per function in
    # ``slice_hash``.  When every function matches (operator and constant
    # mutations do), the new program's slice provably equals the base's,
    # so the stored ``pruned_lines`` are reused verbatim instead of
    # re-running the fixpoint.
    if set(base_fp.functions) == set(new_fp.functions) and all(
        sig.slice_hash
        and sig.slice_hash == getattr(base_fp.functions[name], "slice_hash", None)
        for name, sig in new_fp.functions.items()
    ):
        pruned_lines = base.pruned_lines
    else:
        pruned_lines = checker._pruned_lines()

    function = program.function(entry)
    impact = compute_impact(program, changes)
    diagnostics = analysis.diagnostics if analysis is not None else ()
    return CompiledProgram(
        program_name=program.name,
        entry=entry,
        width=checker.width,
        unwind=checker.unwind,
        num_vars=context.num_vars,
        params=tuple(function.params),
        hard=list(context.hard),
        groups={group: clauses for group, clauses in context.groups.items()},
        steps=list(replay.steps),
        input_bits=dict(replay.input_bits),
        nondet_bits=list(replay.nondet_bits),
        return_bits=replay.return_bits,
        violations=tuple(replay.violations),
        true_lit=context._true_lit,
        # Approximate: replayed spans do not re-count their cache hits.
        gates_shared=base.gates_shared + context.gate_hits,
        simplifier=simplifier_name(checker.simplify),
        signature=context.gate_signature,
        diagnostics=diagnostics,
        pruned_lines=pruned_lines,
        narrowed_vars=checker._narrowed_vars,
        fingerprint=new_fp,
        journal=context.journal,
        group_table=list(context.group_table),
        compile_options=options,
        narrowing_plans=new_plans,
        unwind_plans=new_unwind_plans,
        truncated_loops=checker._truncated_loops_for(analysis),
        spliced_from=base_key,
        impact_fraction=impact.impact_fraction,
        analysis_cache=analysis.cache if analysis is not None else None,
    )


class _Replay:
    """One pass over the base journal, producing the warm encoding."""

    def __init__(
        self,
        base: CompiledProgram,
        checker: BoundedModelChecker,
        region: set[str],
        line_map: dict[int, int],
        unchanged: set[str],
        init_subst: Optional[dict[str, tuple]] = None,
    ) -> None:
        self.base = base
        self.checker = checker
        self.region = region
        self.line_map = line_map
        # Hash-identical functions present in both versions: the only
        # candidates for replaying a call span inside a region re-encode.
        self.unchanged = unchanged
        self.program = checker.program

        context = EncodingContext(checker.width)
        context.begin_journal()
        builder = CircuitBuilder(context, simplify=checker.simplify)
        self.context = context
        self.builder = builder
        # Wire the checker onto the warm context so region re-encodes emit
        # into it; the lists are shared so replayed and region-built entries
        # interleave in true emission order.
        checker._context = context
        checker._builder = builder
        checker._encoder = ExpressionEncoder(builder, checker)
        self.violations = checker._violations = []
        self.nondet_bits = checker._nondet_bits = []
        self.steps = checker._steps = []
        checker._frames = []
        checker._globals = {}
        checker._narrowed_vars = 0
        checker._current_guard = 0

        self.input_bits: dict[str, Bits] = {}
        self.return_bits: Optional[Bits] = None
        # mu[base var] = signed-positive warm var; None while the replay is
        # still in the identity prefix (before the first region).
        self.mu: Optional[list[int]] = None
        self.base_cursor = 0
        self.mapped_groups: dict[int, StatementGroup] = {}
        # Every non-identity (base var, warm var) commitment, across all
        # regions; sorted-strictly-increasing is the global monotonicity
        # invariant the canonicalization-replay argument rests on.
        self.pairs: list[tuple[int, int]] = []
        # Span-replay state, live only while `_region` runs the encoder.
        # `_span_stack` holds one frame per call level being *paired*: the
        # base child spans at that level (matched positionally with the new
        # body's calls), the next unused child, and the frame depth the
        # pairing applies at.  `_span_children_by_start` indexes every span
        # of the region subtree by its "ce" journal position, so a dirty
        # child encoded live can still pair its own calls one level down.
        self._span_stack: list[list] = []
        self._span_children_by_start: dict[int, list] = {}
        self._region_base_start = 0
        self._region_new_start = 0
        # Gate events of the current region's base subtree, keyed by output
        # variable; consulted (only) during a span replay to resolve
        # references to gates built earlier in the subtree.
        self._region_gate_index: dict[int, tuple] = {}
        self._span_gate_index: Optional[dict[int, tuple]] = None
        self._span_commits: Optional[list[int]] = None
        # Self-containment verdicts per span of this base artifact (shared
        # across all splices against it; see `_SPAN_META_REGISTRY`).
        self._span_meta = _span_meta(base)
        # Prefix checkpointing (see `_PREFIX_REGISTRY`): when set, `run`
        # captures the replay state just before the journal index
        # `_checkpoint_at` into `_checkpoints` for later splices to restore.
        self._checkpoint_at: Optional[int] = None
        self._checkpoints: Optional[dict] = None
        # True while every committed mapping so far is the identity: lets
        # the replay drop back into the cheap identity prefix after a
        # region that allocated the exact same variables as its base.
        self._mu_identity = True
        # Re-initialized globals: name -> (base pattern, new pattern), the
        # true-literal-encoded constants of the two initializer values.
        # Snapshot values matching the base pattern are *substituted* with
        # the new one (never mapped): constants are pure true-literal
        # patterns, and every function reading the global re-encodes live.
        self._subst: dict[str, tuple] = {}
        if init_subst:
            tl = base.true_lit
            width = checker.width
            for name, (base_init, new_init) in init_subst.items():
                self._subst[name] = (
                    _const_snapshot(base_init, width, tl),
                    _const_snapshot(new_init, width, tl),
                )

    def _subst_value(self, name: str, value: tuple) -> Optional[tuple]:
        """The substituted snapshot value for a re-initialized global, or
        ``None`` when no substitution applies to ``value``."""
        patterns = self._subst.get(name)
        if patterns is not None and value == patterns[0]:
            return patterns[1]
        return None

    # ------------------------------------------------------------- mapping

    def _map_lit(self, lit: int) -> int:
        mu = self.mu
        if mu is None:
            return lit
        var = lit if lit > 0 else -lit
        mapped = mu[var]
        if mapped == 0:
            if self._span_gate_index is None:
                raise SpliceDecline
            mapped = self._resolve_span_var(var)
        return mapped if lit > 0 else -mapped

    def _resolve_span_var(self, var: int) -> int:
        """Map a base variable referenced inside a replayed span but never
        paired: necessarily the output of a gate built earlier in the
        region's base subtree (structure sharing across the call).  The
        gate's key is remapped — recursively; its inputs may be such gates
        themselves — and looked up in the warm cache the region re-encode
        populated: a cold compile's encode of this callee would hit exactly
        that entry.  A miss means the new region never built the gate, so
        the span cannot be replayed — decline (rolled back to a live
        encode by the caller)."""
        event = self._span_gate_index.get(var)
        if event is None:
            raise SpliceDecline
        _, op, key1, key2, _out, _nclauses = event
        if op in _PACKED_OPS:
            first = (key1 + (1 << 31)) >> 32
            second = key1 - (first << 32)
            mapped1 = self._map_lit(first) * (1 << 32) + self._map_lit(second)
        else:
            mapped1 = self._map_lit(key1)
        mapped2 = self._map_lit(key2)
        cached = self.builder._gate_cache.get((op, mapped1, mapped2))
        if cached is None:
            raise SpliceDecline
        self.mu[var] = cached
        self._span_commits.append(var)
        return cached

    def _map_bits(self, bits: Optional[Bits]) -> Optional[Bits]:
        if bits is None:
            return None
        if self.mu is None:
            return bits
        return tuple(self._map_lit(lit) for lit in bits)

    def _map_snapshot(self, snapshot: tuple) -> tuple:
        if self.mu is None and not self._subst:
            return snapshot
        mapped = []
        for name, value in snapshot:
            subst = self._subst_value(name, value)
            if subst is not None:
                mapped.append((name, subst))
            elif value and isinstance(value[0], int):
                mapped.append((name, self._map_bits(value)))
            else:
                mapped.append((name, tuple(self._map_bits(cell) for cell in value)))
        return tuple(mapped)

    def _group_for_gid(self, gid: int) -> StatementGroup:
        """The warm group for a base journal group index.

        Usually cached by the "grp" replay; the lazy path covers groups
        whose first base registration happened *inside* a region span (an
        unchanged helper first called from a changed function): the region
        re-encode has already created the warm group, so the base identity
        just needs remapping.  A group the warm context never created means
        the encodings diverged — decline.
        """
        group = self.mapped_groups.get(gid)
        if group is None:
            base_group = self.base.group_table[gid]
            group = StatementGroup(
                line=self.line_map.get(base_group.line, base_group.line),
                function=base_group.function,
                iteration=base_group.iteration,
            )
            if group not in self.context._group_ids:
                raise SpliceDecline
            self.mapped_groups[gid] = group
        return group

    def _materialize(self) -> None:
        """Switch from the implicit identity prefix to an explicit map."""
        if self.context.num_vars != self.base_cursor:  # pragma: no cover
            raise SpliceDecline
        self.mu = list(range(self.base_cursor + 1)) + [0] * (
            self.base.num_vars - self.base_cursor
        )

    # ----------------------------------------------------------------- run

    def _capture_checkpoint(self, pending: int) -> dict:
        """Snapshot the replay state just before a journal index.

        Taken only while the map is still the identity: everything stored
        is either immutable (event tuples, group keys) or shallow-copied,
        and `_restore_checkpoint` copies again on the way out, so a stored
        checkpoint is never aliased by a live compile.
        """
        context = self.context
        return {
            "pending": pending,
            "num_vars": context.num_vars,
            "base_cursor": self.base_cursor,
            "sig": context._sig,
            "gates_emitted": context.gates_emitted,
            "gate_hits": context.gate_hits,
            "true_lit": context._true_lit,
            "hard": list(context.hard),
            "journal": list(context.journal),
            "groups": {g: list(c) for g, c in context.groups.items()},
            "group_table": list(context.group_table),
            "gate_cache": dict(self.builder._gate_cache),
            "mapped_groups": dict(self.mapped_groups),
            "steps": list(self.steps),
            "violations": list(self.violations),
            "nondet_bits": list(self.nondet_bits),
            "input_bits": dict(self.input_bits),
            "return_bits": self.return_bits,
            "narrowed_vars": self.checker._narrowed_vars,
        }

    def _restore_checkpoint(self, state: dict, index: int) -> tuple[int, int]:
        """Install a stored prefix state; returns (journal index, pending)."""
        context = self.context
        context.num_vars = state["num_vars"]
        self.base_cursor = state["base_cursor"]
        context._sig = state["sig"]
        context.gates_emitted = state["gates_emitted"]
        context.gate_hits = state["gate_hits"]
        context._true_lit = state["true_lit"]
        context.hard[:] = state["hard"]
        context.journal[:] = state["journal"]
        context.groups.clear()
        for group, clauses in state["groups"].items():
            context.groups[group] = list(clauses)
        context.group_table[:] = state["group_table"]
        context._group_ids.clear()
        context._group_ids.update(
            (group, i) for i, group in enumerate(context.group_table)
        )
        cache = self.builder._gate_cache
        cache.clear()
        cache.update(state["gate_cache"])
        self.mapped_groups.clear()
        self.mapped_groups.update(state["mapped_groups"])
        self.steps[:] = state["steps"]
        self.violations[:] = state["violations"]
        self.nondet_bits[:] = state["nondet_bits"]
        self.input_bits.clear()
        self.input_bits.update(state["input_bits"])
        self.return_bits = state["return_bits"]
        self.checker._narrowed_vars = state["narrowed_vars"]
        return index, state["pending"]

    def run(self, start_index: int = 0, start_pending: int = 0) -> None:
        """Replay every journal event, entering `_region` at changed calls.

        This loop dominates warm-compile time, so the three frequent event
        kinds ("c" clauses, "v" allocation runs, "g" gate insertions) are
        inlined against local aliases instead of going through the context
        methods, and while the map is still the identity the original event
        tuples and clause lists are appended verbatim (shared, not copied).
        The pending-variable run-length counter is kept in a local and only
        synchronized with the context around the rare event kinds and
        region re-encodes.
        """
        events = self.base.journal
        context = self.context
        builder = self.builder
        checker = self.checker
        hard_append = context.hard.append
        journal = context.journal
        journal_append = journal.append
        groups = context.groups
        group_ids = context._group_ids
        gate_cache = builder._gate_cache
        mapped_groups = self.mapped_groups
        fnv = 0x100000001B3
        mask64 = 0xFFFFFFFFFFFFFFFF
        mask32 = 0xFFFFFFFF
        mu: Optional[list[int]] = None
        pending = start_pending
        index, count = start_index, len(events)
        while index < count:
            event = events[index]
            tag = event[0]
            if tag == "c":
                dest = event[1]
                if mu is None:
                    mapped_event, clause = event, event[2]
                else:
                    clause = []
                    for lit in event[2]:
                        m = mu[lit] if lit > 0 else -mu[-lit]
                        if not m:
                            raise SpliceDecline
                        clause.append(m)
                    mapped_event = None
                if dest < 0:
                    hard_append(clause)
                    if pending:
                        journal_append(("v", pending))
                        pending = 0
                    journal_append(mapped_event or ("c", -1, clause))
                else:
                    group = mapped_groups.get(dest)
                    if group is None:
                        group = self._group_for_gid(dest)
                    gid = group_ids[group]
                    groups[group].append(clause)
                    if pending:
                        journal_append(("v", pending))
                        pending = 0
                    if mapped_event is not None and gid == dest:
                        journal_append(mapped_event)
                    else:
                        journal_append(("c", gid, clause))
            elif tag == "v":
                n = event[1]
                pending += n
                if mu is None:
                    context.num_vars += n
                    self.base_cursor += n
                else:
                    var = context.num_vars
                    cursor = self.base_cursor
                    for offset in range(1, n + 1):
                        mu[cursor + offset] = var + offset
                    context.num_vars = var + n
                    self.base_cursor = cursor + n
            elif tag == "g":
                # A gate event owns its output variable (it is excluded from
                # the "v" runs) and precedes its definition clauses, whose
                # count it carries — so a replay can reproduce both of cold's
                # behaviors: fresh insertion (allocate + emit) and cache hit
                # (neither; the definition clauses are skipped wholesale).
                if mu is None:
                    op, m1, m2, mout = event[1], event[2], event[3], event[4]
                    cached = gate_cache.get((op, m1, m2))
                    if cached is not None:
                        # Possible only after an identity-resumed region
                        # built this gate first: a cold compile of the new
                        # version hits the cache here, so leave the
                        # identity prefix and elide the insertion.
                        self._materialize()
                        self._mu_identity = False
                        mu = self.mu
                        mu[mout] = cached
                        self.base_cursor += 1
                        context.gate_hits += 1
                        index += 1 + event[5]
                        continue
                    context.num_vars += 1
                    self.base_cursor += 1
                    mapped_event = event
                else:
                    op, key1, key2, out, nclauses = (
                        event[1],
                        event[2],
                        event[3],
                        event[4],
                        event[5],
                    )
                    # The mapped key must still be in the builder's canonical
                    # form (operand order, sign placement) and must not hit
                    # any constant-folding case the live encoder would have
                    # reduced away — the replay copies the base key and its
                    # definition clauses verbatim, so any such divergence
                    # would produce bytes a cold compile never emits.  A
                    # region re-encode may legally map recovered gate
                    # outputs *backwards* (cross-span structure sharing the
                    # new version unifies), so the map as a whole need not
                    # be order-preserving; only each key's internal order
                    # matters, and it is checked here at the point of use.
                    tl = context.true_lit or 0
                    if op >= 3:  # packed first component: ITE / XOR3 / MAJ
                        first = (key1 + (1 << 31)) >> 32
                        second = key1 - (first << 32)
                        # A majority key may carry one negative literal in
                        # front; map sign-preservingly (never index mu with
                        # a negative, which would silently read the tail).
                        mf = mu[first] if first > 0 else -mu[-first]
                        ms = mu[second] if second > 0 else -mu[-second]
                        m2 = mu[key2] if key2 > 0 else -mu[-key2]
                        if not mf or not ms or not m2:
                            raise SpliceDecline
                        if op == 3:  # ITE: cond, then, else
                            if (
                                mf == tl
                                or ms == tl
                                or ms == -tl
                                or m2 == tl
                                or m2 == -tl
                                or ms == m2
                                or ms == -m2
                            ):
                                raise SpliceDecline
                        elif op == 4:  # XOR3: ascending positive inputs
                            if not mf < ms < m2 or mf == tl or ms == tl or m2 == tl:
                                raise SpliceDecline
                        else:  # MAJ: value-sorted, <=1 negative in front
                            if (
                                not mf < ms < m2
                                or mf == -ms
                                or mf == -m2
                                or mf == tl
                                or mf == -tl
                                or ms == tl
                                or m2 == tl
                            ):
                                raise SpliceDecline
                        m1 = mf * (1 << 32) + ms
                    else:
                        m1 = mu[key1] if key1 > 0 else -mu[-key1]
                        m2 = mu[key2] if key2 > 0 else -mu[-key2]
                        if not m1 or not m2:
                            raise SpliceDecline
                        if op == 1:  # AND: value-sorted signed literals
                            if (
                                not m1 < m2
                                or m1 == -m2
                                or m1 == tl
                                or m1 == -tl
                                or m2 == tl
                                or m2 == -tl
                            ):
                                raise SpliceDecline
                        elif not m1 < m2 or m1 == tl or m2 == tl:
                            # XOR: ascending positive inputs
                            raise SpliceDecline
                    self.base_cursor += 1
                    cached = gate_cache.get((op, m1, m2))
                    if cached is not None:
                        # A region re-encode already built this gate, so a
                        # cold compile of the new version would hit the
                        # cache here: no allocation, no clauses.  Elide the
                        # insertion and skip its definition clauses.
                        mu[out] = cached
                        self._mu_identity = False
                        context.gate_hits += 1
                        index += 1 + nclauses
                        continue
                    mout = context.num_vars + 1
                    context.num_vars = mout
                    mu[out] = mout
                    mapped_event = ("g", op, m1, m2, mout, nclauses)
                gate_cache[(op, m1, m2)] = mout
                context.gates_emitted += 1
                sig = context._sig
                sig = ((sig ^ (op & mask32)) * fnv) & mask64
                sig = ((sig ^ (m1 & mask32)) * fnv) & mask64
                sig = ((sig ^ (m2 & mask32)) * fnv) & mask64
                sig = ((sig ^ (mout & mask32)) * fnv) & mask64
                context._sig = sig
                if pending:
                    journal_append(("v", pending))
                    pending = 0
                journal_append(mapped_event)
            else:
                # Rare events go through the context methods; hand them the
                # accumulated pending-variable run and reclaim the (flushed
                # or untouched) remainder afterwards.
                context._pending_vars = pending
                if tag == "grp":
                    gid = event[1]
                    group = self.base.group_table[gid]
                    mapped_group = StatementGroup(
                        line=self.line_map.get(group.line, group.line),
                        function=group.function,
                        iteration=group.iteration,
                    )
                    self.mapped_groups[gid] = mapped_group
                    if mapped_group not in context._group_ids:
                        # Already registered means an earlier region
                        # re-encode created the group first — exactly what
                        # a cold compile of the new version would have done.
                        context.groups.setdefault(mapped_group, [])
                        context.record(("grp", context.group_id(mapped_group)))
                elif tag == "s":
                    _, line, fn, kind, iteration = event
                    mapped_line = self.line_map.get(line, line)
                    self.steps.append(
                        TraceStep(
                            line=mapped_line,
                            function=fn,
                            kind=kind,
                            iteration=iteration,
                        )
                    )
                    context.record(("s", mapped_line, fn, kind, iteration))
                elif tag == "ce":
                    fn = event[1]
                    if fn in self.region:
                        if (
                            index == self._checkpoint_at
                            and mu is None
                            and self._mu_identity
                        ):
                            self._checkpoints[index] = self._capture_checkpoint(
                                pending
                            )
                        index = self._region(index)
                        pending = context._pending_vars
                        context._pending_vars = 0
                        mu = self.mu
                        continue
                    _, _, depth, gid, guard, args, snapshot = event
                    mapped_gid = (
                        -1
                        if gid < 0
                        else context._group_ids[self._group_for_gid(gid)]
                    )
                    context.record(
                        (
                            "ce",
                            fn,
                            depth,
                            mapped_gid,
                            self._map_lit(guard),
                            tuple(self._map_bits(a) for a in args),
                            self._map_snapshot(snapshot),
                        )
                    )
                elif tag == "cx":
                    _, fn, result, snapshot = event
                    context.record(
                        ("cx", fn, self._map_bits(result), self._map_snapshot(snapshot))
                    )
                elif tag == "t":
                    base_var = event[1]
                    lit = context.true_lit
                    self.base_cursor += 1
                    if mu is not None:
                        mu[base_var] = lit
                        if lit != base_var:
                            self._mu_identity = False
                    elif lit != base_var:  # pragma: no cover - defensive
                        raise SpliceDecline
                elif tag == "nw":
                    checker._narrowed_vars += event[1]
                    context.record(event)
                elif tag == "nd":
                    bits = self._map_bits(event[1])
                    self.nondet_bits.append(bits)
                    context.record(("nd", bits))
                elif tag == "viol":
                    _, line, lit = event
                    mapped_line = self.line_map.get(line, line)
                    mapped_lit = self._map_lit(lit)
                    self.violations.append((mapped_line, mapped_lit))
                    context.record(("viol", mapped_line, mapped_lit))
                elif tag == "in":
                    _, name, bits = event
                    mapped_bits = self._map_bits(bits)
                    self.input_bits[name] = mapped_bits
                    context.record(("in", name, mapped_bits))
                elif tag == "ret":
                    mapped_bits = self._map_bits(event[1])
                    self.return_bits = mapped_bits
                    context.record(("ret", mapped_bits))
                else:  # pragma: no cover - defensive
                    raise SpliceDecline
                pending = context._pending_vars
                context._pending_vars = 0
            index += 1
        context._pending_vars = pending
        context._flush_vars()

    # -------------------------------------------------------------- regions

    def _region(self, index: int) -> int:
        """Re-encode one changed call subtree; return the next journal index.

        The base journal's ``ce`` event at ``index`` carries the complete
        interface the inlined subtree depended on; the matching ``cx``
        carries everything the caller observed.  The subtree in between is
        discarded and the real encoder runs on the new program's function,
        after which the variable map is extended by pairing the old and new
        interface bits.
        """
        events = self.base.journal
        _, fn, depth, gid, guard, args, snapshot = events[index]
        if self.mu is None:
            self._materialize()
        context = self.context
        builder = self.builder
        checker = self.checker
        region_base_start = self.base_cursor
        region_new_start = context.num_vars

        # One pass over the discarded subtree, up front: find the matching
        # call-exit, count the subtree's variable allocations, collect its
        # gate insertions (their outputs may be shared with later code and
        # need recovering below), and build the call-span tree — for every
        # span, at every depth, the list of its direct child spans.  The
        # hook pairs the new body's calls with these positionally; a clean
        # child (no changed function anywhere below) is replayed wholesale,
        # a dirty one is encoded live *with its own children pushed*, so
        # unchanged callees keep replaying at every depth under a change.
        children: list[list] = []
        children_by_start: dict[int, list] = {}
        span_gates: list[tuple] = []
        unchanged = self.unchanged
        # Scan stack frames: (span entry | None for the region root, kids).
        stack: list[tuple[Optional[list], list]] = [(None, children)]
        cursor = self.base_cursor
        scan = index + 1
        while True:
            event = events[scan]
            tag = event[0]
            if tag == "c":
                pass
            elif tag == "v":
                cursor += event[1]
            elif tag == "g":
                cursor += 1
                span_gates.append(event)
            elif tag == "ce":
                # [fn, start index, base-var cursor at entry, clean]
                stack.append(
                    ([event[1], scan, cursor, event[1] in unchanged], [])
                )
            elif tag == "cx":
                entry, kids = stack.pop()
                if entry is None:
                    break
                children_by_start[entry[1]] = kids
                parent_entry, parent_kids = stack[-1]
                parent_kids.append(entry)
                if not entry[3] and parent_entry is not None:
                    # A changed function below poisons every enclosing span.
                    parent_entry[3] = False
            elif tag == "t":  # pragma: no cover - true_lit precedes any call
                cursor += 1
            scan += 1
        end_index, end_cursor = scan, cursor

        try:
            callee = self.program.function(fn)
        except KeyError:
            raise SpliceDecline
        mapped_args = [self._map_bits(a) for a in args]
        if len(mapped_args) != len(callee.params):
            raise SpliceDecline
        mapped_guard = self._map_lit(guard)
        mapped_globals: dict[str, object] = {}
        for name, value in snapshot:
            subst = self._subst_value(name, value)
            if subst is not None:
                if subst and isinstance(subst[0], int):
                    mapped_globals[name] = subst
                else:
                    mapped_globals[name] = list(subst)
            elif value and isinstance(value[0], int):
                mapped_globals[name] = self._map_bits(value)
            else:
                mapped_globals[name] = [self._map_bits(cell) for cell in value]

        checker._globals = mapped_globals
        checker._frames = [
            _Frame(function="<splice>", active=builder.true) for _ in range(depth)
        ]
        checker._current_guard = mapped_guard
        caller_group = None if gid < 0 else self._group_for_gid(gid)
        previous = context._current
        context._current = caller_group
        self._span_stack = [[children, 0, depth + 1]]
        self._span_children_by_start = children_by_start
        self._region_base_start = region_base_start
        self._region_new_start = region_new_start
        self._region_gate_index = {e[4]: e for e in span_gates}
        checker._splice_call_hook = self._try_span_replay
        try:
            frame = _Frame(function=fn, active=builder.true)
            for param, bits in zip(callee.params, mapped_args):
                frame.variables[param] = bits
            context.record(
                (
                    "ce",
                    fn,
                    depth,
                    -1 if caller_group is None else context._group_ids[caller_group],
                    mapped_guard,
                    tuple(mapped_args),
                    checker._globals_snapshot(),
                )
            )
            checker._run_function(callee, frame, mapped_guard)
            result = frame.return_value
            if result is None:
                result = builder.const(0)
            new_snapshot = checker._globals_snapshot()
            context.record(("cx", fn, result, new_snapshot))
        finally:
            checker._splice_call_hook = None
            context._current = previous
            self._span_stack = []
            self._span_children_by_start = {}

        self.base_cursor = end_cursor
        base_event = events[end_index]
        base_result, base_snapshot = base_event[2], base_event[3]
        region_base_end = self.base_cursor
        region_new_end = context.num_vars

        # Extend mu from the observed interface.  Already-mapped base bits
        # must agree exactly; fresh pairings must preserve sign, stay inside
        # the two region windows, and be mutually monotone — the invariants
        # that make every later canonicalization decision replayable.
        mu = self.mu
        pending: dict[int, int] = {}

        def pair(base_lit: int, new_lit: int) -> None:
            var = base_lit if base_lit > 0 else -base_lit
            mapped = mu[var]
            if mapped:
                if (mapped if base_lit > 0 else -mapped) != new_lit:
                    raise SpliceDecline
                return
            if (base_lit > 0) != (new_lit > 0):
                raise SpliceDecline
            new_var = new_lit if new_lit > 0 else -new_lit
            if not (region_base_start < var <= region_base_end):
                raise SpliceDecline
            if not (region_new_start < new_var <= region_new_end):
                raise SpliceDecline
            known = pending.get(var)
            if known is None:
                pending[var] = new_var
            elif known != new_var:
                raise SpliceDecline

        for base_lit, new_lit in zip(base_result, result):
            pair(base_lit, new_lit)
        if [name for name, _ in base_snapshot] != [name for name, _ in new_snapshot]:
            raise SpliceDecline
        for (gname, base_value), (_, new_value) in zip(base_snapshot, new_snapshot):
            patterns = self._subst.get(gname)
            if (
                patterns is not None
                and base_value == patterns[0]
                and new_value == patterns[1]
            ):
                # A re-initialized global still holding its initializer on
                # both sides: two constant patterns, nothing to pair.
                continue
            base_scalar = bool(base_value) and isinstance(base_value[0], int)
            new_scalar = bool(new_value) and isinstance(new_value[0], int)
            if base_scalar != new_scalar:
                raise SpliceDecline
            if base_scalar:
                if len(base_value) != len(new_value):
                    raise SpliceDecline
                for base_lit, new_lit in zip(base_value, new_value):
                    pair(base_lit, new_lit)
            else:
                if len(base_value) != len(new_value):
                    raise SpliceDecline
                for base_cell, new_cell in zip(base_value, new_value):
                    if len(base_cell) != len(new_cell):
                        raise SpliceDecline
                    for base_lit, new_lit in zip(base_cell, new_cell):
                        pair(base_lit, new_lit)

        for var, new_var in pending.items():
            mu[var] = new_var

        # Recover mappings for subtree gates shared with later code: the
        # region re-encode built the corresponding gate under the mapped
        # key, so the warm cache tells us its output variable.  Gates whose
        # inputs are region-internal stay unmapped — if later code somehow
        # referenced one anyway, `_map_lit` declines at that use.
        cache = self.builder._gate_cache

        def look(lit: int) -> int:
            """`_map_lit` without the decline exception: 0 when unmapped."""
            mapped = mu[lit] if lit > 0 else mu[-lit]
            if not mapped:
                return 0
            return mapped if lit > 0 else -mapped

        for _, op, key1, key2, out, _nclauses in span_gates:
            if mu[out]:
                continue
            if op in _PACKED_OPS:
                first = (key1 + (1 << 31)) >> 32
                second = key1 - (first << 32)
                mapped_first = look(first)
                mapped_second = look(second)
                if not mapped_first or not mapped_second:
                    continue
                mapped1 = mapped_first * (1 << 32) + mapped_second
            else:
                mapped1 = look(key1)
                if not mapped1:
                    continue
            mapped2 = look(key2)
            if not mapped2:
                continue
            shared = cache.get((op, mapped1, mapped2))
            if shared is not None:
                mu[out] = shared

        # A region whose re-encode allocated the exact same variables as
        # its base subtree — every pairing the identity — leaves the map
        # indistinguishable from the identity prefix, so the replay can
        # resume the cheap shared-event path.  (Unmapped subtree-internal
        # variables are unreachable from later code except through the
        # gate cache, which the elision path consults live either way.)
        if self._mu_identity and context.num_vars == self.base_cursor:
            start = region_base_start + 1
            if all(
                m == 0 or m == v
                for v, m in enumerate(mu[start : region_base_end + 1], start)
            ):
                self.mu = None
            else:
                self._mu_identity = False
        else:
            self._mu_identity = False
        return end_index + 1

    # --------------------------------------------------------------- spans

    def _try_span_replay(self, name: str, frame: _Frame, guard: int):
        """Call hook active during a region re-encode (`encode_call`).

        Calls at the currently paired depth are matched positionally with
        the base subtree's child spans at that depth.  A matched *clean*
        child (no changed code anywhere below) is replayed under the
        variable map instead of re-encoded — the bulk of a changed
        function's encoding cost is usually its unchanged callees.  A
        matched dirty child, or a clean one whose replay aborts, is
        encoded live but *paired*: its own base child spans are pushed so
        the unchanged functions below it still replay.  A positional
        mismatch falls back to the plain live encoder (returns None), whose
        inner calls then pair with nothing.
        """
        checker = self.checker
        stack = self._span_stack
        if not stack:
            return None
        children, k, pair_depth = stack[-1]
        if len(checker._frames) != pair_depth:
            # Inside an unpaired live callee — its calls match no spans.
            return None
        if k >= len(children):
            return None
        stack[-1][1] = k + 1
        fn, start, cursor0, clean = children[k]
        if fn != name:
            return None
        if clean:
            result = self._replay_span_identity(name, start, cursor0, frame, guard)
            if result is None:
                result = self._replay_span(name, start, cursor0, frame, guard)
            if result is not None:
                return result
        return self._paired_live(name, start, frame, guard)

    def _paired_live(self, name: str, start: int, frame: _Frame, guard: int):
        """Encode a call live while keeping its base span paired.

        Mirrors exactly what `encode_call` does past the hook (journal
        call-enter, run, journal call-exit), but pushes the base span's own
        direct children first so the callee's calls keep pairing one level
        down.  Used for spans that contain changed code and for clean spans
        whose replay declined — either way the subtree must be re-encoded,
        but its unchanged descendants need not be.
        """
        checker = self.checker
        context = self.context
        callee = self.program.function(name)
        group = context.current_group
        context.record(
            (
                "ce",
                name,
                len(checker._frames),
                -1 if group is None else context.group_id(group),
                guard,
                tuple(frame.variables[param] for param in callee.params),
                checker._globals_snapshot(),
            )
        )
        self._span_stack.append(
            [
                self._span_children_by_start.get(start, []),
                0,
                len(checker._frames) + 1,
            ]
        )
        try:
            checker._run_function(callee, frame, guard)
        finally:
            self._span_stack.pop()
        result = frame.return_value
        if result is None:
            result = self.builder.const(0)
        context.record(("cx", name, result, checker._globals_snapshot()))
        return result

    def _span_external_refs(self, start: int, cursor0: int) -> Optional[tuple]:
        """Variables the base call span at ``start`` references from outside
        its own interface (the ``ce`` guard/argument/global bits), its own
        allocations and the constant-true variable — in practice, outputs of
        gates structure-shared from earlier in the base journal.  ``None``
        when the span contains an event the identity fast path cannot share
        (a misnumbered gate output or an out-of-place rare event).

        A property of the base journal alone, so the result is memoized on
        the artifact and shared by every splice against it.  The fast path
        may share the span's events verbatim once every external reference
        is proven identity-mapped: every other literal it emits is either
        pinned equal by the interface check or allocated at an identical
        position by the aligned cursors.
        """
        cached = self._span_meta.get(start, False)
        if cached is not False:
            return cached
        events = self.base.journal
        base_ce = events[start]
        iface: set[int] = set()

        def absorb(bits) -> None:
            for lit in bits:
                iface.add(lit if lit > 0 else -lit)

        guard = base_ce[4]
        iface.add(guard if guard > 0 else -guard)
        for bits in base_ce[5]:
            absorb(bits)
        for _, value in base_ce[6]:
            if value and isinstance(value[0], int):
                absorb(value)
            else:
                for cell in value:
                    absorb(cell)
        if self.base.true_lit:
            iface.add(abs(self.base.true_lit))

        external: set[int] = set()

        def scan(bits, cursor: int) -> bool:
            for lit in bits:
                var = lit if lit > 0 else -lit
                if var <= cursor0:
                    if var not in iface:
                        external.add(var)
                elif var > cursor:  # forward reference: cannot occur
                    return False
            return True

        def scan_snapshot(snapshot, cursor: int) -> bool:
            for _, value in snapshot:
                if value and isinstance(value[0], int):
                    if not scan(value, cursor):
                        return False
                else:
                    for cell in value:
                        if not scan(cell, cursor):
                            return False
            return True

        ok = True
        cursor = cursor0
        index = start + 1
        nesting = 1
        while ok:
            event = events[index]
            tag = event[0]
            if tag == "c":
                ok = scan(event[2], cursor)
            elif tag == "v":
                cursor += event[1]
            elif tag == "g":
                op, key1, key2 = event[1], event[2], event[3]
                if op in _PACKED_OPS:
                    first = (key1 + (1 << 31)) >> 32
                    keys = (first, key1 - (first << 32), key2)
                else:
                    keys = (key1, key2)
                cursor += 1
                ok = scan(keys, cursor) and event[4] == cursor
            elif tag == "ce":
                nesting += 1
                ok = (
                    scan((event[4],), cursor)
                    and all(scan(bits, cursor) for bits in event[5])
                    and scan_snapshot(event[6], cursor)
                )
            elif tag == "cx":
                nesting -= 1
                ok = scan(event[2], cursor) and scan_snapshot(event[3], cursor)
                if nesting == 0:
                    break
            elif tag == "nd":
                ok = scan(event[1], cursor)
            elif tag == "viol":
                ok = scan((event[2],), cursor)
            elif tag in ("s", "grp", "nw"):
                pass
            else:  # "t"/"in"/"ret" cannot occur inside a call span
                ok = False
            index += 1
        refs = tuple(sorted(external)) if ok else None
        self._span_meta[start] = refs
        return refs

    def _replay_span_identity(
        self, name: str, start: int, cursor0: int, frame: _Frame, guard: int
    ):
        """Replay a clean span by sharing the base events verbatim.

        Applies when the live call interface is bit-for-bit the base one
        (same guard, argument and global literals), the warm variable
        counter sits exactly at the span's base cursor, the constant-true
        literal agrees, and the span is self-contained: then a cold compile
        of the new version would emit exactly the bytes the base journal
        already holds, so the replay appends the original event tuples and
        clause lists without rebuilding them.  The one live decision left
        is the gate cache — a hit (a region re-encode built one of these
        gates first) changes the bytes, so the attempt rolls back and
        returns ``None``; the caller redoes the span under the variable
        map, whose elision path handles the hit correctly.
        """
        context = self.context
        checker = self.checker
        if cursor0 != context.num_vars:
            return None
        if self.base.true_lit != context.true_lit:
            return None
        events = self.base.journal
        base_ce = events[start]
        base_guard, base_args, base_snapshot = base_ce[4], base_ce[5], base_ce[6]
        if guard != base_guard:
            return None
        try:
            callee = self.program.function(name)
        except KeyError:
            return None
        args = tuple(frame.variables[param] for param in callee.params)
        if args != base_args:
            return None
        live_globals = checker._globals
        if [n for n, _ in base_snapshot] != list(live_globals):
            return None
        for (_, base_value), new_value in zip(base_snapshot, live_globals.values()):
            if base_value is new_value or base_value == new_value:
                continue
            if isinstance(new_value, tuple) or len(base_value) != len(new_value):
                return None
            for base_cell, new_cell in zip(base_value, new_value):
                if base_cell is not new_cell and base_cell != tuple(new_cell):
                    return None
        refs = self._span_external_refs(start, cursor0)
        if refs is None:
            return None
        mu = self.mu
        commits: list[int] = []
        if refs:
            # Structure-shared gates from earlier in the base journal: the
            # bytes are only shareable if each resolves to itself.
            self._span_gate_index = self._region_gate_index
            self._span_commits = commits
            try:
                for var in refs:
                    mapped = mu[var]
                    if mapped == 0:
                        try:
                            mapped = self._resolve_span_var(var)
                        except SpliceDecline:
                            mapped = 0
                    if mapped != var:
                        for committed in commits:
                            mu[committed] = 0
                        return None
            finally:
                self._span_gate_index = None
                self._span_commits = None

        # ---------------------------------------------------- state snapshot
        journal = context.journal
        saved_num_vars = context.num_vars
        saved_sig = context._sig
        saved_emitted = context.gates_emitted
        saved_pending = context._pending_vars
        saved_hard = len(context.hard)
        saved_journal = len(journal)
        saved_groups = len(context.group_table)
        saved_steps = len(self.steps)
        saved_viol = len(self.violations)
        saved_nondet = len(self.nondet_bits)
        saved_narrowed = checker._narrowed_vars
        cache_keys: list[tuple] = []
        grouped: list[list] = []
        gids_mapped: list[int] = []

        gate_cache = self.builder._gate_cache
        mapped_groups = self.mapped_groups
        group_ids = context._group_ids
        hard_append = context.hard.append
        journal_append = journal.append
        line_map = self.line_map
        fnv = 0x100000001B3
        mask64 = 0xFFFFFFFFFFFFFFFF
        mask32 = 0xFFFFFFFF

        group = context.current_group
        context.record(
            (
                "ce",
                name,
                len(checker._frames),
                -1 if group is None else context.group_id(group),
                guard,
                args,
                checker._globals_snapshot(),
            )
        )
        ok = True
        pending = 0
        cursor = cursor0
        index = start + 1
        nesting = 1
        while True:
            event = events[index]
            tag = event[0]
            if tag == "c":
                dest = event[1]
                clause = event[2]
                if pending:
                    journal_append(("v", pending))
                    pending = 0
                if dest < 0:
                    hard_append(clause)
                    journal_append(event)
                else:
                    mapped_group = mapped_groups.get(dest)
                    if mapped_group is None:
                        mapped_group = self._group_for_gid(dest)
                    gid = group_ids[mapped_group]
                    bucket = context.groups[mapped_group]
                    bucket.append(clause)
                    grouped.append(bucket)
                    journal_append(event if gid == dest else ("c", gid, clause))
            elif tag == "v":
                n = event[1]
                var = context.num_vars
                for offset in range(1, n + 1):
                    mu[cursor + offset] = var + offset
                    commits.append(cursor + offset)
                context.num_vars = var + n
                cursor += n
                pending += n
            elif tag == "g":
                key = (event[1], event[2], event[3])
                if key in gate_cache:
                    # A region re-encode built this gate first; cold would
                    # elide here, changing the bytes.  Redo the span mapped.
                    ok = False
                    break
                out = event[4]
                cursor += 1
                context.num_vars = out
                mu[out] = out
                commits.append(out)
                gate_cache[key] = out
                cache_keys.append(key)
                context.gates_emitted += 1
                sig = context._sig
                sig = ((sig ^ (key[0] & mask32)) * fnv) & mask64
                sig = ((sig ^ (key[1] & mask32)) * fnv) & mask64
                sig = ((sig ^ (key[2] & mask32)) * fnv) & mask64
                sig = ((sig ^ (out & mask32)) * fnv) & mask64
                context._sig = sig
                if pending:
                    journal_append(("v", pending))
                    pending = 0
                journal_append(event)
            elif tag == "cx":
                nesting -= 1
                if nesting == 0:
                    break
                if pending:
                    journal_append(("v", pending))
                    pending = 0
                journal_append(event)
            elif tag == "ce":
                nesting += 1
                gid = event[3]
                mapped_gid = (
                    -1 if gid < 0 else group_ids[self._group_for_gid(gid)]
                )
                if pending:
                    journal_append(("v", pending))
                    pending = 0
                journal_append(
                    event
                    if mapped_gid == gid
                    else ("ce", event[1], event[2], mapped_gid) + event[4:]
                )
            elif tag == "s":
                line = event[1]
                mapped_line = line_map.get(line, line)
                self.steps.append(
                    TraceStep(
                        line=mapped_line,
                        function=event[2],
                        kind=event[3],
                        iteration=event[4],
                    )
                )
                if pending:
                    journal_append(("v", pending))
                    pending = 0
                journal_append(
                    event
                    if mapped_line == line
                    else ("s", mapped_line) + event[2:]
                )
            elif tag == "grp":
                gid = event[1]
                base_group = self.base.group_table[gid]
                mapped_group = StatementGroup(
                    line=line_map.get(base_group.line, base_group.line),
                    function=base_group.function,
                    iteration=base_group.iteration,
                )
                mapped_groups[gid] = mapped_group
                gids_mapped.append(gid)
                if mapped_group not in group_ids:
                    context.groups.setdefault(mapped_group, [])
                    if pending:
                        journal_append(("v", pending))
                        pending = 0
                    journal_append(("grp", context.group_id(mapped_group)))
            elif tag == "nw":
                checker._narrowed_vars += event[1]
                if pending:
                    journal_append(("v", pending))
                    pending = 0
                journal_append(event)
            elif tag == "viol":
                line = event[1]
                mapped_line = line_map.get(line, line)
                self.violations.append((mapped_line, event[2]))
                if pending:
                    journal_append(("v", pending))
                    pending = 0
                journal_append(
                    event if mapped_line == line else ("viol", mapped_line, event[2])
                )
            elif tag == "nd":
                self.nondet_bits.append(event[1])
                if pending:
                    journal_append(("v", pending))
                    pending = 0
                journal_append(event)
            else:  # pragma: no cover - excluded by self-containment
                ok = False
                break
            index += 1

        if ok:
            base_result, base_out = event[2], event[3]
            context._pending_vars = pending
            out_globals: dict[str, object] = {}
            for gname, value in base_out:
                if value and isinstance(value[0], int):
                    out_globals[gname] = value
                else:
                    out_globals[gname] = list(value)
            checker._globals = out_globals
            context.record(("cx", name, base_result, checker._globals_snapshot()))
            return base_result

        # Roll the partial share back; the caller retries under the map.
        for var in commits:
            mu[var] = 0
        for key in cache_keys:
            del gate_cache[key]
        for bucket in reversed(grouped):
            bucket.pop()
        while len(context.group_table) > saved_groups:
            stale = context.group_table.pop()
            del group_ids[stale]
            context.groups.pop(stale, None)
        for gid in gids_mapped:
            mapped_groups.pop(gid, None)
        del context.hard[saved_hard:]
        del journal[saved_journal:]
        context.num_vars = saved_num_vars
        context._sig = saved_sig
        context.gates_emitted = saved_emitted
        context._pending_vars = saved_pending
        del self.steps[saved_steps:]
        del self.violations[saved_viol:]
        del self.nondet_bits[saved_nondet:]
        checker._narrowed_vars = saved_narrowed
        return None

    def _replay_span(
        self, name: str, start: int, cursor0: int, frame: _Frame, guard: int
    ):
        """Replay one base call span against the live interface at `frame`.

        The base journal's ``ce`` at ``start`` records the interface the
        inlined subtree depended on; the map is seeded by pairing it with
        the live arguments/guard/globals, then the span's events replay
        exactly like the top-level mapped phase (gate elision included —
        the warm cache is consulted live, so hits and misses land wherever
        a cold compile's would).  An unmappable variable, sign flip or
        shape mismatch aborts the attempt: every side effect is rolled
        back and the caller encodes the subtree live instead.  Soundness
        never rests on the pairing being "right" — a wrong pairing either
        fails seeding, hits an unmapped variable, or breaks the global
        monotonicity sweep, all of which decline.
        """
        checker = self.checker
        context = self.context
        events = self.base.journal
        mu = self.mu
        base_ce = events[start]
        _, _, _, _, base_guard, base_args, base_snapshot = base_ce
        try:
            callee = self.program.function(name)
        except KeyError:
            return None
        args = tuple(frame.variables[param] for param in callee.params)
        if len(base_args) != len(args):
            return None
        live_globals = checker._globals
        if [n for n, _ in base_snapshot] != list(live_globals):
            return None

        # ---------------------------------------------------- state snapshot
        journal = context.journal
        saved_num_vars = context.num_vars
        saved_sig = context._sig
        saved_emitted = context.gates_emitted
        saved_hits = context.gate_hits
        saved_pending = context._pending_vars
        saved_hard = len(context.hard)
        saved_journal = len(journal)
        saved_groups = len(context.group_table)
        saved_steps = len(self.steps)
        saved_viol = len(self.violations)
        saved_nondet = len(self.nondet_bits)
        saved_narrowed = checker._narrowed_vars
        commits: list[int] = []
        cache_keys: list[tuple] = []
        grouped: list[list] = []
        gids_mapped: list[int] = []

        region_base_start = self._region_base_start
        region_new_start = self._region_new_start

        def seed(base_lit: int, new_lit: int) -> None:
            var = base_lit if base_lit > 0 else -base_lit
            mapped = mu[var]
            if mapped:
                if (mapped if base_lit > 0 else -mapped) != new_lit:
                    raise SpliceDecline
                return
            if (base_lit > 0) != (new_lit > 0):
                raise SpliceDecline
            new_var = new_lit if new_lit > 0 else -new_lit
            # Fresh seeds must pair region-internal base variables with
            # region-internal new ones; anything else risks committing a
            # mapping that poisons the global monotonicity invariant.
            if not (region_base_start < var <= cursor0):
                raise SpliceDecline
            if new_var <= region_new_start:
                raise SpliceDecline
            mu[var] = new_var
            commits.append(var)

        def seed_bits(base_bits, new_bits) -> None:
            if len(base_bits) != len(new_bits):
                raise SpliceDecline
            for base_lit, new_lit in zip(base_bits, new_bits):
                seed(base_lit, new_lit)

        gate_cache = self.builder._gate_cache
        mapped_groups = self.mapped_groups
        group_ids = context._group_ids
        hard_append = context.hard.append
        journal_append = journal.append
        line_map = self.line_map
        fnv = 0x100000001B3
        mask64 = 0xFFFFFFFFFFFFFFFF
        mask32 = 0xFFFFFFFF
        resolve = self._resolve_span_var

        def sl(lit: int) -> int:
            """Span-lit map: mu with fallback to shared-gate resolution."""
            var = lit if lit > 0 else -lit
            mapped = mu[var]
            if not mapped:
                mapped = resolve(var)
            return mapped if lit > 0 else -mapped

        self._span_gate_index = self._region_gate_index
        self._span_commits = commits
        try:
            # The warm journal's call-enter is recorded from the *live*
            # interface — exactly what `encode_call` would have written.
            group = context.current_group
            context.record(
                (
                    "ce",
                    name,
                    len(checker._frames),
                    -1 if group is None else context.group_id(group),
                    guard,
                    args,
                    checker._globals_snapshot(),
                )
            )
            seed(base_guard, guard)
            for base_bits, new_bits in zip(base_args, args):
                seed_bits(base_bits, new_bits)
            for (gname, base_value), new_value in zip(
                base_snapshot, live_globals.values()
            ):
                patterns = self._subst.get(gname)
                if patterns is not None and base_value == patterns[0]:
                    live_tuple = (
                        new_value
                        if isinstance(new_value, tuple)
                        else tuple(
                            cell if isinstance(cell, tuple) else tuple(cell)
                            for cell in new_value
                        )
                    )
                    if live_tuple == patterns[1]:
                        # Both sides still hold their (differing)
                        # initializer constants: nothing to pair.
                        continue
                base_scalar = bool(base_value) and isinstance(base_value[0], int)
                new_scalar = bool(new_value) and isinstance(new_value[0], int)
                if base_scalar != new_scalar:
                    raise SpliceDecline
                if base_scalar:
                    seed_bits(base_value, new_value)
                else:
                    if len(base_value) != len(new_value):
                        raise SpliceDecline
                    for base_cell, new_cell in zip(base_value, new_value):
                        seed_bits(base_cell, new_cell)

            pending = 0
            cursor = cursor0
            index = start + 1
            nesting = 1
            while True:
                event = events[index]
                tag = event[0]
                if tag == "c":
                    dest = event[1]
                    clause = []
                    for lit in event[2]:
                        if lit > 0:
                            m = mu[lit]
                            if not m:
                                m = resolve(lit)
                        else:
                            m = mu[-lit]
                            if not m:
                                m = resolve(-lit)
                            m = -m
                        clause.append(m)
                    if pending:
                        journal_append(("v", pending))
                        pending = 0
                    if dest < 0:
                        hard_append(clause)
                        journal_append(("c", -1, clause))
                    else:
                        group = mapped_groups.get(dest)
                        if group is None:
                            group = self._group_for_gid(dest)
                        context.groups[group].append(clause)
                        grouped.append(context.groups[group])
                        journal_append(("c", group_ids[group], clause))
                elif tag == "v":
                    n = event[1]
                    var = context.num_vars
                    for offset in range(1, n + 1):
                        mu[cursor + offset] = var + offset
                        commits.append(cursor + offset)
                    context.num_vars = var + n
                    cursor += n
                    pending += n
                elif tag == "g":
                    op, key1, key2, out, nclauses = (
                        event[1],
                        event[2],
                        event[3],
                        event[4],
                        event[5],
                    )
                    if op >= 3:
                        first = (key1 + (1 << 31)) >> 32
                        second = key1 - (first << 32)
                        m1 = sl(first) * (1 << 32) + sl(second)
                    else:
                        m1 = sl(key1)
                    m2 = sl(key2)
                    cursor += 1
                    cached = gate_cache.get((op, m1, m2))
                    if cached is not None:
                        mu[out] = cached
                        commits.append(out)
                        context.gate_hits += 1
                        index += 1 + nclauses
                        continue
                    mout = context.num_vars + 1
                    context.num_vars = mout
                    mu[out] = mout
                    commits.append(out)
                    gate_cache[(op, m1, m2)] = mout
                    cache_keys.append((op, m1, m2))
                    context.gates_emitted += 1
                    sig = context._sig
                    sig = ((sig ^ (op & mask32)) * fnv) & mask64
                    sig = ((sig ^ (m1 & mask32)) * fnv) & mask64
                    sig = ((sig ^ (m2 & mask32)) * fnv) & mask64
                    sig = ((sig ^ (mout & mask32)) * fnv) & mask64
                    context._sig = sig
                    if pending:
                        journal_append(("v", pending))
                        pending = 0
                    journal_append(("g", op, m1, m2, mout, nclauses))
                elif tag == "cx":
                    nesting -= 1
                    context._pending_vars = pending
                    pending = 0
                    if nesting == 0:
                        break
                    _, fn, res, snap = event
                    context.record(
                        ("cx", fn, self._map_bits(res), self._map_snapshot(snap))
                    )
                    pending = context._pending_vars
                    context._pending_vars = 0
                else:
                    context._pending_vars = pending
                    pending = 0
                    if tag == "ce":
                        nesting += 1
                        _, fn, depth, gid, g, a, snap = event
                        mapped_gid = (
                            -1
                            if gid < 0
                            else group_ids[self._group_for_gid(gid)]
                        )
                        context.record(
                            (
                                "ce",
                                fn,
                                depth,
                                mapped_gid,
                                self._map_lit(g),
                                tuple(self._map_bits(b) for b in a),
                                self._map_snapshot(snap),
                            )
                        )
                    elif tag == "grp":
                        gid = event[1]
                        base_group = self.base.group_table[gid]
                        mapped_group = StatementGroup(
                            line=line_map.get(base_group.line, base_group.line),
                            function=base_group.function,
                            iteration=base_group.iteration,
                        )
                        mapped_groups[gid] = mapped_group
                        gids_mapped.append(gid)
                        if mapped_group not in group_ids:
                            context.groups.setdefault(mapped_group, [])
                            context.record(("grp", context.group_id(mapped_group)))
                    elif tag == "s":
                        _, line, fn, kind, iteration = event
                        mapped_line = line_map.get(line, line)
                        self.steps.append(
                            TraceStep(
                                line=mapped_line,
                                function=fn,
                                kind=kind,
                                iteration=iteration,
                            )
                        )
                        context.record(("s", mapped_line, fn, kind, iteration))
                    elif tag == "nw":
                        checker._narrowed_vars += event[1]
                        context.record(event)
                    elif tag == "nd":
                        bits = self._map_bits(event[1])
                        self.nondet_bits.append(bits)
                        context.record(("nd", bits))
                    elif tag == "viol":
                        _, line, lit = event
                        mapped_line = line_map.get(line, line)
                        mapped_lit = self._map_lit(lit)
                        self.violations.append((mapped_line, mapped_lit))
                        context.record(("viol", mapped_line, mapped_lit))
                    else:
                        # "t"/"in"/"ret" cannot occur inside a call span.
                        raise SpliceDecline
                    pending = context._pending_vars
                    context._pending_vars = 0
                index += 1

            # Matching call-exit: the caller observes the mapped result and
            # the mapped globals-out snapshot.
            _, _, base_result, base_out = event
            result = self._map_bits(base_result)
            out_globals: dict[str, object] = {}
            for gname, value in base_out:
                subst = self._subst_value(gname, value)
                if subst is not None:
                    out_globals[gname] = (
                        subst if subst and isinstance(subst[0], int) else list(subst)
                    )
                elif value and isinstance(value[0], int):
                    out_globals[gname] = self._map_bits(value)
                else:
                    out_globals[gname] = [self._map_bits(cell) for cell in value]
            checker._globals = out_globals
            context.record(("cx", name, result, checker._globals_snapshot()))
            return result
        except SpliceDecline:
            # Roll every side effect back and let the live encoder take
            # over; declining a span is as safe as declining the splice.
            for var in commits:
                mu[var] = 0
            for key in cache_keys:
                del gate_cache[key]
            for clauses in reversed(grouped):
                clauses.pop()
            while len(context.group_table) > saved_groups:
                stale = context.group_table.pop()
                del group_ids[stale]
                context.groups.pop(stale, None)
            for gid in gids_mapped:
                mapped_groups.pop(gid, None)
            del context.hard[saved_hard:]
            del journal[saved_journal:]
            context.num_vars = saved_num_vars
            context._sig = saved_sig
            context.gates_emitted = saved_emitted
            context.gate_hits = saved_hits
            context._pending_vars = saved_pending
            del self.steps[saved_steps:]
            del self.violations[saved_viol:]
            del self.nondet_bits[saved_nondet:]
            checker._narrowed_vars = saved_narrowed
            return None
        finally:
            self._span_gate_index = None
            self._span_commits = None
