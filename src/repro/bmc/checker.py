"""Whole-program bounded model checking over the mini-C language.

The checker symbolically executes the entry function with *guarded updates*:
every statement is encoded under a path-guard literal, assignments become
multiplexers between the new and old value, loops are unrolled up to the
``unwind`` bound (with a CBMC-style unwinding assumption that the loop has
terminated), and function calls are inlined up to ``max_call_depth``.

Three front doors are provided:

* :meth:`BoundedModelChecker.find_counterexample` — the CBMC role in
  Section 4.1: find a concrete input violating some assertion.
* :meth:`BoundedModelChecker.compile_program` — encode "the entire boolean
  representation of the program" (Section 6.2) once, *without* any test
  baked in, as a reusable :class:`~repro.bmc.compiled.CompiledProgram`
  artifact; the session API localizes many failing tests against it.
* :meth:`BoundedModelChecker.encode_program_formula` — the one-shot
  convenience: compile and immediately pin one failing test plus the
  post-condition, yielding the extended trace formula used for the TCAS
  experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro import obs
from repro.bmc.compiled import CompiledProgram
from repro.encoding.circuits import Bits, CircuitBuilder, simplifier_name
from repro.encoding.context import ArenaEncodingContext, StatementGroup
from repro.encoding.symbolic import ExpressionEncoder
from repro.encoding.trace import TraceFormula, TraceStep
from repro.lang import ast
from repro.lang.semantics import DEFAULT_WIDTH
from repro.sat import Solver
from repro.spec import Specification


@dataclass
class Counterexample:
    """A concrete failing test found by bounded model checking."""

    inputs: dict[str, int]
    nondet_values: list[int]
    violated_line: int

    def as_test(self) -> list[int]:
        """Input values in entry-function parameter order."""
        return list(self.inputs.values())


@dataclass
class _Frame:
    """Symbolic activation record for the guarded-update encoding."""

    function: str
    variables: dict[str, object] = field(default_factory=dict)
    active: int = 0  # literal: "this frame has not returned yet"
    return_value: Optional[Bits] = None


class BoundedModelChecker:
    """Bit-precise whole-program encoding, assertion checking and formulas."""

    #: Installed by :mod:`repro.bmc.splice` while re-encoding a changed
    #: region: called with (name, frame, guard) before a call subtree is
    #: encoded, it may replay the callee's base-journal span instead and
    #: return the result bits (None = encode live as usual).
    _splice_call_hook = None

    def __init__(
        self,
        program: ast.Program,
        width: int = DEFAULT_WIDTH,
        unwind: int = 16,
        max_call_depth: int = 24,
        group_statements: bool = False,
        hard_functions: Iterable[str] = (),
        simplify: bool = True,
        analysis_narrowing: bool = True,
        unwind_planning: bool = False,
        loop_iteration_groups: bool = False,
    ) -> None:
        """Configure the checker.

        With ``group_statements`` the clauses of every statement are routed
        into a per-line clause group (needed for localization); functions in
        ``hard_functions`` keep their clauses hard (library code that is not
        a candidate bug location).  ``simplify`` toggles the structure-hashed
        gate cache of the circuit builder.  ``analysis_narrowing`` lets the
        abstract-interpretation pass (:mod:`repro.analysis`) narrow the
        bit-width of written values whose range is statically bounded; the
        flow-insensitive table is used, which stays sound under the guarded
        encoding (off-path rhs values are covered by the variable domains).
        ``unwind_planning`` consumes the loop-bound pass: loops with a
        proven trip-count bound unroll exactly that many times (dropping
        the unwinding assumption) instead of the flat global ``unwind``.
        ``loop_iteration_groups`` gives every unrolled loop iteration its
        own clause group per statement, so candidates carry a
        ``(line, iteration)`` pair (the Section 5.2 loop extension).
        """
        self.program = program
        self.width = width
        self.unwind = unwind
        self.max_call_depth = max_call_depth
        self.group_statements = group_statements
        self.hard_functions = set(hard_functions)
        self.simplify = simplify
        self.analysis_narrowing = analysis_narrowing
        self.unwind_planning = unwind_planning
        self.loop_iteration_groups = loop_iteration_groups
        #: Per-loop unwind plans ``(function, guard line) -> (bound, proven)``;
        #: seeded by :meth:`_encode` (or directly by the splice path).
        self._unwind_plans: dict[tuple[str, int], tuple[int, bool]] = {}
        #: 1-based unrolling indices of the loops currently being encoded
        #: within the innermost function frame.
        self._loop_stack: list[int] = []

    # ------------------------------------------------------------------ API

    def compile_options(self, entry: str = "main") -> dict:
        """The encoding options that determine the compiled CNF.

        Stored inside every artifact; a journal replay only splices between
        artifacts compiled with identical options.
        """
        return {
            "entry": entry,
            "width": self.width,
            "unwind": self.unwind,
            "max_call_depth": self.max_call_depth,
            "group_statements": self.group_statements,
            "hard_functions": tuple(sorted(self.hard_functions)),
            "simplify": self.simplify,
            "analysis_narrowing": self.analysis_narrowing,
            "unwind_planning": self.unwind_planning,
            "loop_iteration_groups": self.loop_iteration_groups,
        }

    def find_counterexample(self, entry: str = "main") -> Optional[Counterexample]:
        """Return a failing test for some assertion, or ``None`` within the bound."""
        input_bits, _ = self._encode(entry)
        builder = self._builder
        if not self._violations:
            return None
        solver = Solver()
        solver.ensure_vars(self._context.num_vars)
        for clause in self._context.hard:
            solver.add_clause(clause)
        for clauses in self._context.groups.values():
            for clause in clauses:
                solver.add_clause(clause)
        solver.add_clause([lit for _, lit in self._violations])
        if not solver.solve():
            return None
        model = solver.get_model()
        inputs = {name: builder.decode(bits, model) for name, bits in input_bits.items()}
        nondet_values = [builder.decode(bits, model) for bits in self._nondet_bits]
        violated_line = next(
            (line for line, lit in self._violations if _lit_true(lit, model, builder)),
            self._violations[0][0],
        )
        return Counterexample(
            inputs=inputs, nondet_values=nondet_values, violated_line=violated_line
        )

    def holds(self, entry: str = "main") -> bool:
        """True when no assertion violation exists within the bound."""
        return self.find_counterexample(entry=entry) is None

    def compile_program(self, entry: str = "main") -> CompiledProgram:
        """Encode the whole program once into a reusable, test-free artifact.

        The returned :class:`~repro.bmc.compiled.CompiledProgram` holds the
        invariant CNF (structural hard clauses plus one clause group per
        statement) together with the input/nondet/return bit-vectors and
        assertion-violation literals — everything needed to derive the
        per-test unit clauses of any failing test later, without re-running
        the encoder.  Requires ``group_statements=True`` for localization
        use; the artifact is picklable so batch localization can ship it to
        worker processes once.
        """
        with obs.span("bmc.compile", program=self.program.name, entry=entry):
            return self._compile_program(entry)

    def _compile_program(self, entry: str) -> CompiledProgram:
        input_bits, return_bits = self._encode(entry, journal=True)
        context = self._context
        function = self.program.function(entry)
        analysis = self._analysis_for(entry)
        diagnostics = analysis.diagnostics if analysis is not None else ()
        from repro.analysis.impact import fingerprint_program

        # The journal shares its clause-list objects with hard/groups, so the
        # artifact must share them too (copying would double the pickle and
        # break the sharing the replay relies on); clause lists are treated
        # as immutable by every consumer.
        compiled = CompiledProgram(
            program_name=self.program.name,
            entry=entry,
            width=self.width,
            unwind=self.unwind,
            num_vars=context.num_vars,
            params=tuple(function.params),
            hard=list(context.hard),
            groups={group: list(clauses) for group, clauses in context.groups.items()},
            steps=list(self._steps),
            input_bits=dict(input_bits),
            nondet_bits=list(self._nondet_bits),
            return_bits=return_bits,
            violations=tuple(self._violations),
            true_lit=context._true_lit,
            gates_shared=context.gate_hits,
            simplifier=simplifier_name(self.simplify),
            signature=context.gate_signature,
            diagnostics=diagnostics,
            pruned_lines=self._pruned_lines(),
            narrowed_vars=self._narrowed_vars,
            fingerprint=fingerprint_program(self.program),
            journal=context.journal,
            group_table=list(context.group_table),
            compile_options=self.compile_options(entry),
            narrowing_plans=self._narrowing_plan_table(),
            unwind_plans=dict(self._unwind_plans),
            truncated_loops=self._truncated_loops_for(analysis),
            analysis_cache=analysis.cache if analysis is not None else None,
        )
        from repro.bmc.compiled import _set_encode_profile

        encode_phases = dict(getattr(context, "encode_phases", {}))
        _set_encode_profile(
            compiled,
            {
                "encode_backend": getattr(context, "encode_backend", "python"),
                "encode_phases": encode_phases,
            },
        )
        obs.REGISTRY.counter(
            "repro_compiles", "Whole-program compiles (cold encodes)"
        ).inc()
        for phase, seconds in encode_phases.items():
            obs.REGISTRY.histogram(
                "repro_encode_phase_seconds",
                "Per-phase encode wall time",
                labels={"phase": phase},
            ).observe(seconds)
        return compiled

    def encode_program_formula(
        self,
        inputs: Sequence[int] | Mapping[str, int],
        spec: Specification,
        entry: str = "main",
        nondet_values: Sequence[int] = (),
    ) -> TraceFormula:
        """Encode the whole program with the failing test and post-condition.

        The returned :class:`TraceFormula` has the test-input equalities and
        the specification as hard clauses and one clause group per statement,
        ready to be turned into the partial MaxSAT instance of Algorithm 1.
        Requires the checker to have been built with ``group_statements=True``.
        One-shot convenience over :meth:`compile_program` — callers that
        localize several failing tests of the same program should compile
        once and use a :class:`~repro.core.session.LocalizationSession`.
        """
        compiled = self.compile_program(entry)
        return compiled.trace_formula(inputs, spec, nondet_values=nondet_values)

    # ----------------------------------------------------- resolver protocol

    def read_scalar(self, name: str, line: int) -> Bits:
        for scope in (self._frames[-1].variables, self._globals):
            if name in scope:
                value = scope[name]
                if isinstance(value, tuple):
                    return value
        raise KeyError(f"line {line}: undeclared variable {name!r}")

    def read_array(self, name: str, line: int) -> list[Bits]:
        for scope in (self._frames[-1].variables, self._globals):
            if name in scope:
                value = scope[name]
                if isinstance(value, list):
                    return value
        raise KeyError(f"line {line}: undeclared array {name!r}")

    def encode_call(self, call: ast.Call) -> Bits:
        builder = self._builder
        context = self._context
        if call.name == "nondet":
            bits = builder.fresh()
            self._nondet_bits.append(bits)
            if context.journaling:
                context.record(("nd", bits))
            return bits
        if len(self._frames) > self.max_call_depth:
            # Recursion beyond the bound: treat the result as unconstrained.
            return builder.fresh()
        callee = self.program.function(call.name)
        frame = _Frame(function=call.name, active=builder.true)
        force_binding = call.name in self.hard_functions
        for param, arg in zip(callee.params, call.args):
            frame.variables[param] = self._encoder.encode_argument(
                arg, force=force_binding
            )
        guard = self._current_guard
        if self._splice_call_hook is not None:
            replayed = self._splice_call_hook(call.name, frame, guard)
            if replayed is not None:
                return replayed
        if context.journaling:
            # Call-enter: the full interface the inlined subtree depends on.
            # A journal replay re-encodes the subtree of a changed callee
            # from exactly these bits (everything else about the callee's
            # encoding is a function of them plus the program text).
            group = context.current_group
            context.record(
                (
                    "ce",
                    call.name,
                    len(self._frames),
                    -1 if group is None else context.group_id(group),
                    guard,
                    tuple(frame.variables[param] for param in callee.params),
                    self._globals_snapshot(),
                )
            )
        self._run_function(callee, frame, guard)
        result = frame.return_value
        if result is None:
            result = builder.const(0)
        if context.journaling:
            # Call-exit: the bits the caller observes (result + globals).
            context.record(("cx", call.name, result, self._globals_snapshot()))
        return result

    def _globals_snapshot(self) -> tuple:
        """The current global bindings as a hashable journal payload."""
        return tuple(
            (name, value if isinstance(value, tuple) else tuple(value))
            for name, value in self._globals.items()
        )

    def concrete_value(self, expr: ast.Expr) -> Optional[int]:
        return None

    # --------------------------------------------------------------- running

    def _analysis_for(self, entry: str):
        """The cached abstract-interpretation result (or ``None`` when the
        pass fails — analysis is an accelerator, never a prerequisite)."""
        cache = getattr(self, "_analysis_cache", None)
        if cache is None:
            cache = self._analysis_cache = {}
        if entry not in cache:
            try:
                from repro.analysis import analyze_program

                # The splice path seeds ``(base_cache, reusable, line_map)``
                # so hash-identical functions replay their recorded rounds
                # instead of re-solving; see repro.analysis.incremental.
                seed = getattr(self, "_analysis_seed", None) or (None, None, None)
                base_cache, reusable, line_map = seed
                cache[entry] = analyze_program(
                    self.program,
                    entry=entry,
                    width=self.width,
                    record_cache=True,
                    base_cache=base_cache,
                    reusable=reusable,
                    line_map=line_map,
                    unwind=self.unwind,
                    unwind_planning=self.unwind_planning,
                )
            except Exception:  # pragma: no cover - defensive
                cache[entry] = None
        return cache[entry]

    def _pruned_lines(self) -> tuple[int, ...]:
        """Statement lines provably irrelevant to every assertion/output.

        Computed from the flow-insensitive backward slice; the slicer's
        seeds are tied to ``main``, so pruning only applies there.
        """
        if "main" not in self.program.functions:
            return ()
        try:
            from repro.cfg.defuse import backward_slice_lines

            relevant = backward_slice_lines(self.program)
        except Exception:  # pragma: no cover - defensive
            return ()
        return tuple(sorted(self.program.statement_lines() - relevant))

    def _narrowing_plan_table(self) -> dict[tuple[str, int], tuple[int, bool]]:
        """Every non-trivial narrowing plan of the active analysis table.

        Execution-independent (derived from the whole flow-insensitive
        table, not from which writes the walk reached), so two versions'
        tables can be compared per function without replaying anything —
        the splice precondition for reusing encoded statements.
        """
        plans: dict[tuple[str, int], tuple[int, bool]] = {}
        for key, interval in self._write_intervals.items():
            plan = interval.narrowing_plan(self.width)
            if plan is not None:
                plans[key] = plan
        return plans

    def _unwind_plan_table_for(self, analysis) -> dict[tuple[str, int], tuple[int, bool]]:
        """Per-loop unwind plans derived from one analysis result.

        Execution-independent (a pure function of the loop-bound verdicts
        and the global unwind), so two versions' tables can be compared per
        function without replaying anything — the splice precondition for
        reusing encoded loops.
        """
        if not self.unwind_planning or analysis is None or analysis.has_errors:
            return {}
        from repro.analysis.loops import plan_unwinds

        return plan_unwinds(analysis.loop_bounds, self.unwind)

    def _truncated_loops_for(self, analysis) -> tuple[tuple[str, int], ...]:
        """Loops whose proven minimum trip count the encoding truncates.

        Computed even when the analysis carries errors — the flag matters
        most exactly when ``unwind-insufficient`` fired.
        """
        if analysis is None:
            return ()
        from repro.analysis.loops import BOUNDED, EXACT, effective_unwind

        return tuple(
            sorted(
                key
                for key, bound in analysis.loop_bounds.items()
                if bound.verdict in (EXACT, BOUNDED)
                and bound.lo
                > effective_unwind(bound, self.unwind, self.unwind_planning)
            )
        )

    def _fresh_written(self, line: int) -> Bits:
        """A fresh vector for a written value — narrowed to the statically
        proven (flow-insensitive) range when the analysis found one."""
        builder = self._builder
        function = self._frames[-1].function
        interval = self._write_intervals.get((function, line))
        if interval is not None:
            plan = interval.narrowing_plan(self.width)
            if plan is not None:
                low_bits, signed = plan
                self._narrowed_vars += self.width - low_bits
                if self._context.journaling:
                    self._context.record(("nw", self.width - low_bits))
                return builder.fresh_narrowed(low_bits, signed)
        return builder.fresh()

    def _encode(
        self, entry: str, journal: bool = False
    ) -> tuple[dict[str, Bits], Optional[Bits]]:
        """Encode the whole program; returns (input bit-vectors, return bits)."""
        self._context = ArenaEncodingContext(self.width)
        if journal:
            self._context.begin_journal()
        self._builder = CircuitBuilder(self._context, simplify=self.simplify)
        self._encoder = ExpressionEncoder(self._builder, self)
        self._violations: list[tuple[int, int]] = []
        self._nondet_bits: list[Bits] = []
        self._frames: list[_Frame] = []
        self._globals: dict[str, object] = {}
        self._steps: list[TraceStep] = []
        self._narrowed_vars = 0
        self._write_intervals: dict[tuple[str, int], object] = {}
        self._unwind_plans = {}
        self._loop_stack = []
        phases = self._context.encode_phases
        with obs.span("encode.analysis") as timed:
            if self.analysis_narrowing or self.unwind_planning:
                analysis = self._analysis_for(entry)
                if analysis is not None and not analysis.has_errors:
                    if self.analysis_narrowing:
                        self._write_intervals = analysis.flow_write_intervals
                self._unwind_plans = self._unwind_plan_table_for(analysis)
        phases["analysis"] = timed.duration

        with obs.span("encode.gates") as timed:
            builder = self._builder
            self._current_guard = builder.true
            self._initialize_globals()
            function = self.program.function(entry)
            frame = _Frame(function=entry, active=builder.true)
            input_bits: dict[str, Bits] = {}
            for param in function.params:
                bits = builder.fresh()
                frame.variables[param] = bits
                input_bits[param] = bits
                if self._context.journaling:
                    self._context.record(("in", param, bits))
            self._run_function(function, frame, builder.true)
            if self._context.journaling:
                self._context.record(("ret", frame.return_value))
        phases["gates"] = timed.duration
        self._context.finalize()
        return input_bits, frame.return_value

    def _initialize_globals(self) -> None:
        builder = self._builder
        root = _Frame(function="<globals>", active=builder.true)
        self._frames.append(root)
        try:
            for decl in self.program.globals:
                if isinstance(decl, ast.VarDecl):
                    bits = (
                        self._encoder.encode(decl.init)
                        if decl.init is not None
                        else builder.const(0)
                    )
                    self._globals[decl.name] = bits
                    root.variables[decl.name] = bits
                else:
                    cells = [builder.const(0)] * decl.size
                    for index, expr in enumerate(decl.init):
                        cells[index] = self._encoder.encode(expr)
                    self._globals[decl.name] = cells
                    root.variables[decl.name] = cells
        finally:
            self._frames.pop()

    def _run_function(self, function: ast.Function, frame: _Frame, guard: int) -> None:
        builder = self._builder
        frame.return_value = builder.const(0) if function.returns_value else None
        self._frames.append(frame)
        previous_guard = self._current_guard
        # Loop iterations are per function frame: a callee's statements are
        # not "inside" the caller's loop, so a line's iteration-awareness is
        # a static property of its own function (mixing iteration-tagged and
        # untagged groups for one line would break group ordering).
        previous_stack = self._loop_stack
        self._loop_stack = []
        try:
            self._exec_block(function.body, guard)
        finally:
            self._frames.pop()
            self._current_guard = previous_guard
            self._loop_stack = previous_stack

    def _exec_block(self, statements: tuple[ast.Stmt, ...], guard: int) -> None:
        for stmt in statements:
            self._exec(stmt, guard)

    def _effective(self, guard: int) -> int:
        return self._builder.bit_and(guard, self._frames[-1].active)

    def _current_iteration(self) -> Optional[int]:
        if self.loop_iteration_groups and self._loop_stack:
            return self._loop_stack[-1]
        return None

    def _group_for(self, stmt: ast.Stmt) -> Optional[StatementGroup]:
        if not self.group_statements:
            return None
        function = self._frames[-1].function
        if function in self.hard_functions:
            return None
        return StatementGroup(
            line=stmt.line, function=function, iteration=self._current_iteration()
        )

    def _record(self, stmt: ast.Stmt, kind: str) -> None:
        function = self._frames[-1].function
        iteration = self._current_iteration()
        self._steps.append(
            TraceStep(line=stmt.line, function=function, kind=kind, iteration=iteration)
        )
        if self._context.journaling:
            self._context.record(("s", stmt.line, function, kind, iteration))

    def _exec(self, stmt: ast.Stmt, guard: int) -> None:
        builder = self._builder
        self._current_guard = self._effective(guard)
        frame = self._frames[-1]
        group = self._group_for(stmt)
        if isinstance(stmt, ast.VarDecl):
            # The clauses defining the *written value* belong to the statement
            # group (so relaxing the statement lets the value become
            # arbitrary); the guard multiplexer stays hard, so statements on
            # untaken paths can never explain the failure.
            with self._context.group(group):
                init = (
                    self._encoder.encode(stmt.init)
                    if stmt.init is not None
                    else builder.const(0)
                )
                written = self._fresh_written(stmt.line)
                builder.assert_equal(written, init)
            previous = frame.variables.get(stmt.name, builder.const(0))
            if not isinstance(previous, tuple):
                previous = builder.const(0)
            frame.variables[stmt.name] = builder.mux(
                self._effective(guard), written, previous
            )
            self._record(stmt, "decl")
        elif isinstance(stmt, ast.ArrayDecl):
            with self._context.group(group):
                cells = []
                for index in range(stmt.size):
                    if index < len(stmt.init):
                        value = self._encoder.encode(stmt.init[index])
                    else:
                        value = builder.const(0)
                    written = self._fresh_written(stmt.line)
                    builder.assert_equal(written, value)
                    cells.append(written)
            frame.variables[stmt.name] = cells
            self._record(stmt, "decl")
        elif isinstance(stmt, ast.Assign):
            with self._context.group(group):
                value = self._encoder.encode(stmt.value)
                written = self._fresh_written(stmt.line)
                builder.assert_equal(written, value)
            self._assign_scalar(stmt.name, written, guard)
            self._record(stmt, "assign")
        elif isinstance(stmt, ast.ArrayAssign):
            self._assign_array(stmt, guard, group)
            self._record(stmt, "array-assign")
        elif isinstance(stmt, ast.If):
            condition = self._encode_condition(stmt.cond, group)
            self._record(stmt, "branch")
            self._exec_block(stmt.then_body, builder.bit_and(guard, condition))
            self._exec_block(stmt.else_body, builder.bit_and(guard, -condition))
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt, guard, group)
        elif isinstance(stmt, ast.Return):
            effective = self._effective(guard)
            if stmt.value is not None and frame.return_value is not None:
                with self._context.group(group):
                    value = self._encoder.encode(stmt.value)
                    written = builder.fresh()
                    builder.assert_equal(written, value)
                frame.return_value = builder.mux(effective, written, frame.return_value)
            frame.active = builder.bit_and(frame.active, -effective)
            self._record(stmt, "return")
        elif isinstance(stmt, ast.Assert):
            # The assertion is the specification, not a candidate bug
            # location: its condition is encoded in the hard context.
            with self._context.group(None):
                condition = self._encoder.encode_bool(stmt.cond)
                violation = builder.bit_and(self._effective(guard), -condition)
            if builder._const_value(violation) is not False:
                self._violations.append((stmt.line, violation))
                if self._context.journaling:
                    self._context.record(("viol", stmt.line, violation))
            self._record(stmt, "assert")
        elif isinstance(stmt, ast.Assume):
            # The condition gets its own relaxable copy (like branch
            # conditions): the enforcing clause below is hard, so the
            # statement group must own the link between the circuit and the
            # enforced literal for the assumption to stay a candidate.
            condition = self._encode_condition(stmt.cond, group)
            self._context.emit_hard([-self._effective(guard), condition])
            self._record(stmt, "assume")
        elif isinstance(stmt, ast.ExprStmt):
            with self._context.group(group):
                self._encoder.encode(stmt.expr)
            self._record(stmt, "call")
        elif isinstance(stmt, ast.Print):
            with self._context.group(group):
                self._encoder.encode(stmt.value)
            self._record(stmt, "print")
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"statement {type(stmt).__name__}")

    def _encode_condition(self, cond: ast.Expr, group: Optional[StatementGroup]) -> int:
        """Encode a branch/loop condition with its own relaxable copy."""
        builder = self._builder
        with self._context.group(group):
            raw = self._encoder.encode_bool(cond)
            if builder._const_value(raw) is not None or group is None:
                # Constant conditions (or hard contexts) need no copy.
                condition = raw
            else:
                condition = self._context.new_var()
                self._context.emit([-condition, raw])
                self._context.emit([condition, -raw])
        return condition

    def _guard_copy(self, raw: int, group: Optional[StatementGroup]) -> int:
        """A relaxable copy of an already-encoded (hard) condition literal.

        Only the two binding clauses live in the statement group: relaxing
        the group frees the copy from the circuit, which is exactly the
        "this guard took the wrong branch" repair.  The circuit gates
        themselves stay hard — so reusing the raw literal elsewhere (the
        unwinding assumption) can never be undone by relaxing the guard.
        """
        builder = self._builder
        if builder._const_value(raw) is not None or group is None:
            return raw
        with self._context.group(group):
            condition = self._context.new_var()
            self._context.emit([-condition, raw])
            self._context.emit([condition, -raw])
        return condition

    def _exec_while(
        self, stmt: ast.While, guard: int, group: Optional[StatementGroup]
    ) -> None:
        builder = self._builder
        function = self._frames[-1].function
        plan = self._unwind_plans.get((function, stmt.line))
        bound, proven = plan if plan is not None else (self.unwind, False)
        path = guard
        #: The guard conjunction over *raw* (hard) condition literals; the
        #: unwinding assumption must be built from these, not from the
        #: relaxable copies, so the localizer can never "explain" a failure
        #: by flipping the truncation assumption itself.
        hard_path = guard
        self._loop_stack.append(1)
        try:
            for _ in range(bound):
                with self._context.group(None):
                    raw = self._encoder.encode_bool(stmt.cond)
                condition = self._guard_copy(raw, self._group_for(stmt))
                self._record(stmt, "loop-guard")
                path = builder.bit_and(path, condition)
                hard_path = builder.bit_and(hard_path, raw)
                if builder._const_value(path) is False:
                    return
                self._exec_block(stmt.body, path)
                self._loop_stack[-1] += 1
            if proven:
                # The analysis proved the loop exits within `bound` trips;
                # no unwinding assumption is needed (or sound to relax).
                return
            # Unwinding assumption: after `bound` iterations the loop must
            # exit.  Hard by construction — see `hard_path`.
            with self._context.group(None):
                condition = self._encoder.encode_bool(stmt.cond)
            still_running = builder.bit_and(self._effective(hard_path), condition)
            self._context.emit_hard([-still_running])
        finally:
            self._loop_stack.pop()

    # ------------------------------------------------------------- mutation

    def _assign_scalar(self, name: str, value: Bits, guard: int) -> None:
        builder = self._builder
        frame = self._frames[-1]
        effective = self._effective(guard)
        for scope in (frame.variables, self._globals):
            if name in scope and isinstance(scope[name], tuple):
                scope[name] = builder.mux(effective, value, scope[name])
                return
        frame.variables[name] = builder.mux(effective, value, builder.const(0))

    def _assign_array(
        self, stmt: ast.ArrayAssign, guard: int, group: Optional[StatementGroup]
    ) -> None:
        builder = self._builder
        effective = self._effective(guard)
        with self._context.group(group):
            index_raw = self._encoder.encode(stmt.index)
            value_raw = self._encoder.encode(stmt.value)
            index_bits = builder.fresh()
            builder.assert_equal(index_bits, index_raw)
            value_bits = self._fresh_written(stmt.line)
            builder.assert_equal(value_bits, value_raw)
        cells = self.read_array(stmt.name, stmt.line)
        new_cells: list[Bits] = []
        for position, cell in enumerate(cells):
            here = builder.bit_and(
                effective, builder.equals(index_bits, builder.const(position))
            )
            new_cells.append(builder.mux(here, value_bits, cell))
        for scope in (self._frames[-1].variables, self._globals):
            if stmt.name in scope and isinstance(scope[stmt.name], list):
                scope[stmt.name] = new_cells
                return


def _lit_true(lit: int, model: dict[int, bool], builder: CircuitBuilder) -> bool:
    constant = builder._const_value(lit)
    if constant is not None:
        return constant
    value = model.get(abs(lit), False)
    return value if lit > 0 else not value
