"""The reusable whole-program encoding artifact behind the session API.

The paper's Table 1 protocol localizes *every* failing test of a TCAS
version independently, yet the CBMC-style whole-program encoding is
identical across all of them — only the test-input equalities and the
post-condition units change.  :class:`CompiledProgram` captures exactly the
invariant part: the program CNF (hard structural clauses plus one clause
group per statement), the bit-vectors of the entry function's inputs,
``nondet()`` results and return value, and the assertion-violation
literals.

The per-test part is *data*, not encoding: :meth:`CompiledProgram.test_clauses`
derives the handful of unit clauses pinning the inputs and asserting the
specification, which a :class:`~repro.core.session.LocalizationSession`
asserts as a retractable layer on a persistent MaxSAT engine.  The artifact
is a plain picklable value, so a process pool can ship it to each worker
once and shard failing tests across workers.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro import obs

from repro.encoding.context import StatementGroup
from repro.encoding.trace import TraceFormula, TraceStep
from repro.lang.semantics import to_unsigned, wrap
from repro.spec import Specification

Bits = tuple[int, ...]

#: Version stamp of the pickled artifact layout.  Bumped whenever the
#: :class:`CompiledProgram` fields (or anything reachable from them, such as
#: :class:`~repro.encoding.context.StatementGroup`) change incompatibly, so a
#: content-addressed store never deserializes a stale on-disk spill into a
#: newer process — it recompiles instead.
ARTIFACT_FORMAT_VERSION = 4

#: Magic prefix of a serialized artifact (sanity check before unpickling).
_ARTIFACT_MAGIC = b"repro-artifact\x00"


class ArtifactFormatError(ValueError):
    """A serialized artifact is corrupt or from an incompatible version."""


def artifact_key(program_text: str, options: Mapping[str, object]) -> str:
    """Stable content hash addressing one compiled artifact.

    The key covers everything that determines the compiled CNF: the program
    source text, the encoding options (width, unwind bound, entry function,
    hard functions, simplifier toggle, program name), the artifact format
    version, and the library version — the last so that upgrading to a
    build with a changed encoder (new gate rewrites, different clause
    forms) can never serve a stale persistent spill whose pickle layout
    happens to still load.  The gate-cache signature of the *result* is a
    function of exactly these inputs, so hashing the inputs gives a key
    that can be computed before (and without) compiling.  Canonical JSON
    keeps the hash independent of dict ordering.
    """
    from repro.version import __version__

    canonical = json.dumps(
        {
            "format": ARTIFACT_FORMAT_VERSION,
            "library": __version__,
            "options": _canonical_options(options),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256()
    digest.update(canonical.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(program_text.encode("utf-8"))
    return digest.hexdigest()


def _canonical_options(options: Mapping[str, object]) -> dict:
    """Normalize option values so equivalent spellings hash identically."""
    canonical: dict[str, object] = {}
    for name, value in options.items():
        if isinstance(value, (set, frozenset)):
            canonical[name] = sorted(value)
        elif isinstance(value, tuple):
            canonical[name] = list(value)
        else:
            canonical[name] = value
    return canonical


def dumps_artifact(compiled: "CompiledProgram") -> bytes:
    """Serialize an artifact with the format-version envelope."""
    return (
        _ARTIFACT_MAGIC
        + ARTIFACT_FORMAT_VERSION.to_bytes(4, "big")
        + pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL)
    )


def peek_artifact_version(data: bytes) -> Optional[int]:
    """The format version stamped in an artifact's envelope, or ``None``
    when the bytes do not start with the artifact magic.  Reads only the
    header: callers can pass the first :data:`ARTIFACT_HEADER_BYTES` of a
    spill file to triage stale formats without unpickling anything."""
    header = len(_ARTIFACT_MAGIC) + 4
    if len(data) < header or not data.startswith(_ARTIFACT_MAGIC):
        return None
    return int.from_bytes(data[len(_ARTIFACT_MAGIC) : header], "big")


#: Bytes of envelope needed by :func:`peek_artifact_version`.
ARTIFACT_HEADER_BYTES = len(_ARTIFACT_MAGIC) + 4


def loads_artifact(data: bytes) -> "CompiledProgram":
    """Deserialize an artifact, raising :class:`ArtifactFormatError` when the
    envelope is missing, the format version differs, or the pickle is corrupt."""
    header = len(_ARTIFACT_MAGIC) + 4
    if len(data) < header or not data.startswith(_ARTIFACT_MAGIC):
        raise ArtifactFormatError("not a serialized CompiledProgram artifact")
    version = int.from_bytes(data[len(_ARTIFACT_MAGIC) : header], "big")
    if version != ARTIFACT_FORMAT_VERSION:
        raise ArtifactFormatError(
            f"artifact format {version} incompatible with {ARTIFACT_FORMAT_VERSION}"
        )
    try:
        compiled = pickle.loads(data[header:])
    except Exception as exc:
        raise ArtifactFormatError(f"corrupt artifact pickle: {exc}") from exc
    if not isinstance(compiled, CompiledProgram):
        raise ArtifactFormatError(
            f"artifact pickle holds {type(compiled).__name__}, not CompiledProgram"
        )
    return compiled


def _set_encode_profile(compiled: "CompiledProgram", profile: dict) -> None:
    """Attach the encode profile (emission backend + phase wall times).

    Held in :mod:`repro.obs`'s id-keyed weakref side table and *never*
    pickled: timings differ run to run and backend to backend, while
    artifact bytes must stay bit-identical whichever emission core filled
    the buffers.
    """
    obs.attach_profile(compiled, profile)


@dataclass
class CompiledProgram:
    """The invariant whole-program CNF of one entry function.

    Produced by :meth:`repro.bmc.BoundedModelChecker.compile_program`.  The
    clauses never mention a concrete test: ``hard`` holds the structural
    clauses (guards, multiplexers, unwinding assumptions), ``groups`` the
    per-statement transition clauses that become soft selector groups, and
    the bit-vector maps locate the points where a test plugs in.
    """

    program_name: str
    entry: str
    width: int
    unwind: int
    num_vars: int
    params: tuple[str, ...]
    hard: list[list[int]] = field(default_factory=list)
    groups: dict[StatementGroup, list[list[int]]] = field(default_factory=dict)
    steps: list[TraceStep] = field(default_factory=list)
    input_bits: dict[str, Bits] = field(default_factory=dict)
    nondet_bits: list[Bits] = field(default_factory=list)
    return_bits: Optional[Bits] = None
    violations: tuple[tuple[int, int], ...] = ()
    true_lit: Optional[int] = None
    #: Structure-hashing statistics of the compile (gate-cache hits).
    gates_shared: int = 0
    #: Name of the circuit simplifier configuration used by the compile.
    simplifier: str = ""
    #: Structural gate-cache signature (keys cross-test core archives).
    signature: str = ""
    #: Static-analysis lint findings for the compiled program, as
    #: :class:`~repro.lang.diagnostics.Diagnostic` records.
    diagnostics: tuple = ()
    #: Statement lines outside the backward slice of any assertion: their
    #: writes provably cannot reach a checked variable, so localization
    #: keeps their clause groups hard (never a fault candidate).
    pruned_lines: tuple[int, ...] = ()
    #: Bits eliminated by analysis-guided range narrowing during compile.
    narrowed_vars: int = 0
    #: Canonical per-function hashes of the compiled program
    #: (:class:`~repro.analysis.impact.ProgramFingerprint`): the identity
    #: the store's nearest-ancestor index and the change-impact diff use.
    fingerprint: Optional[object] = None
    #: Emission journal (see :class:`~repro.encoding.context.EncodingContext`):
    #: every allocation/emission event in order, clause lists shared with
    #: ``hard``/``groups``.  ``None`` for artifacts built without journaling.
    journal: Optional[list] = None
    #: Statement groups referenced by journal clause events, by index.
    group_table: list = field(default_factory=list)
    #: The checker options that produced this artifact (splice precondition).
    compile_options: dict = field(default_factory=dict)
    #: ``(function, line) -> (low_bits, signed)`` narrowing plans actually
    #: applied during the compile; a replay must prove these identical for
    #: every unchanged function before reusing the encoding.
    narrowing_plans: dict = field(default_factory=dict)
    #: ``(function, guard line) -> (iterations, proven)`` per-loop unwind
    #: plans applied during the compile (``repro.analysis.loops``); subject
    #: to the same splice precondition as ``narrowing_plans``.
    unwind_plans: dict = field(default_factory=dict)
    #: Loops whose proven minimum trip count exceeds what this encoding
    #: unrolled: executions through them are truncated, and localization
    #: reports derived from this artifact carry ``unwind_truncated=True``.
    truncated_loops: tuple = ()
    #: Key of the base artifact this one was warm-compiled from (``None``
    #: for cold compiles) plus the fraction of statements re-encoded.
    spliced_from: Optional[str] = None
    impact_fraction: Optional[float] = None
    #: Round-trajectory cache of the abstract interpretation that narrowed
    #: this encoding (:class:`repro.analysis.incremental.AnalysisCache`);
    #: seeds the incremental re-analysis of later program versions.
    analysis_cache: Optional[object] = None

    # ------------------------------------------------------------ statistics

    def encode_profile(self) -> dict:
        """Emission backend and per-phase wall times of the compile that
        produced this artifact: ``{"encode_backend": ..., "encode_phases":
        {phase: seconds}}``.  Empty for unpickled or spliced artifacts —
        timings are observability data, not content, and never serialize."""
        return obs.profile_of(self)

    @property
    def num_clauses(self) -> int:
        """Clause count of the invariant encoding (hard plus grouped)."""
        return len(self.hard) + sum(len(clauses) for clauses in self.groups.values())

    @property
    def planned_loops(self) -> int:
        """Loops encoded under a proven per-loop unwind plan."""
        return sum(1 for _, proven in self.unwind_plans.values() if proven)

    @property
    def unwind_truncated(self) -> bool:
        """True when some loop's proven trip count was truncated."""
        return bool(self.truncated_loops)

    @property
    def num_assignments(self) -> int:
        """Number of assignment operations in the encoding (Table 3's assign#)."""
        return sum(
            1 for step in self.steps if step.kind in ("assign", "array-assign", "decl")
        )

    # -------------------------------------------------------- constant bits

    def _const_value(self, lit: int) -> Optional[bool]:
        if self.true_lit is None:
            return None
        if lit == self.true_lit:
            return True
        if lit == -self.true_lit:
            return False
        return None

    def _false_clause(self) -> list[int]:
        if self.true_lit is None:  # pragma: no cover - defensive
            raise ValueError("encoding has no constant-true literal")
        return [-self.true_lit]

    def _fix_clauses(self, bits: Bits, value: int) -> list[list[int]]:
        """Unit clauses pinning ``bits`` to a concrete integer value.

        Mirrors :meth:`repro.encoding.circuits.CircuitBuilder.fix_to_value`
        without needing a builder: constant bits that disagree with the
        wanted value yield a contradiction unit.
        """
        pattern = to_unsigned(value, len(bits))
        clauses: list[list[int]] = []
        for position, lit in enumerate(bits):
            wanted = bool((pattern >> position) & 1)
            known = self._const_value(lit)
            if known is None:
                clauses.append([lit if wanted else -lit])
            elif known != wanted:
                clauses.append(self._false_clause())
        return clauses

    # ------------------------------------------------------------- per-test

    def input_values(self, inputs: Sequence[int] | Mapping[str, int]) -> dict[str, int]:
        """Normalize a test case to entry-parameter name/value pairs."""
        if isinstance(inputs, Mapping):
            missing = [name for name in self.params if name not in inputs]
            if missing:
                raise ValueError(f"missing inputs for parameters {missing}")
            return {name: wrap(int(inputs[name]), self.width) for name in self.params}
        values = list(inputs)
        if len(values) != len(self.params):
            raise ValueError(
                f"{self.entry} expects {len(self.params)} inputs, got {len(values)}"
            )
        return {
            name: wrap(int(value), self.width)
            for name, value in zip(self.params, values)
        }

    def test_clauses(
        self,
        inputs: Sequence[int] | Mapping[str, int],
        spec: Specification,
        nondet_values: Sequence[int] = (),
    ) -> tuple[list[list[int]], dict[str, int]]:
        """The retractable per-test units: input equalities plus the spec.

        Returns ``(clauses, test_inputs)`` where ``clauses`` are the unit
        clauses to assert on top of the invariant encoding and
        ``test_inputs`` is the report-facing name/value map (including
        ``nondet#i`` entries).
        """
        clauses: list[list[int]] = []
        test_inputs: dict[str, int] = {}
        values = self.input_values(inputs)
        for name, bits in self.input_bits.items():
            value = values[name]
            clauses.extend(self._fix_clauses(bits, value))
            test_inputs[name] = value
        for index, bits in enumerate(self.nondet_bits):
            value = wrap(
                nondet_values[index] if index < len(nondet_values) else 0, self.width
            )
            clauses.extend(self._fix_clauses(bits, value))
            test_inputs[f"nondet#{index}"] = value

        if spec.kind == "assertion":
            for _, violation in self.violations:
                clauses.append([-violation])
        elif spec.kind in ("return-value", "golden-output"):
            if self.return_bits is None:
                raise ValueError(
                    f"entry function {self.entry!r} does not return a value"
                )
            expected = spec.expected[-1] if spec.expected else 0
            clauses.extend(self._fix_clauses(self.return_bits, expected))
        else:  # pragma: no cover - defensive
            raise ValueError(f"unsupported specification kind {spec.kind!r}")
        return clauses, test_inputs

    def phase_hints(self, test_inputs: Mapping[str, int]) -> dict[int, bool]:
        """Warm-start phases from the concrete failing test (ROADMAP item).

        Seeds the saved phase of every input and nondet bit variable with
        its concrete value so the solver's first descent into the circuit
        re-traces the failing execution instead of a cold default.
        """
        hints: dict[int, bool] = {}
        named = dict(test_inputs)
        vectors: list[tuple[Bits, int]] = []
        for name, bits in self.input_bits.items():
            if name in named:
                vectors.append((bits, named[name]))
        for index, bits in enumerate(self.nondet_bits):
            key = f"nondet#{index}"
            if key in named:
                vectors.append((bits, named[key]))
        for bits, value in vectors:
            pattern = to_unsigned(value, len(bits))
            for position, lit in enumerate(bits):
                if self._const_value(lit) is not None:
                    continue
                wanted = bool((pattern >> position) & 1)
                hints[abs(lit)] = wanted if lit > 0 else not wanted
        return hints

    # ----------------------------------------------------------- conversion

    def trace_formula(
        self,
        inputs: Sequence[int] | Mapping[str, int],
        spec: Specification,
        nondet_values: Sequence[int] = (),
    ) -> TraceFormula:
        """Bake one test into a standalone extended trace formula.

        This reproduces the classic one-shot
        :meth:`~repro.bmc.BoundedModelChecker.encode_program_formula`
        output: the invariant hard clauses followed by the per-test units.
        """
        clauses, test_inputs = self.test_clauses(inputs, spec, nondet_values)
        # The clause lists are shared, not copied: TraceFormula consumers
        # only read them (to_wcnf re-materializes every clause anyway).
        return TraceFormula(
            width=self.width,
            num_vars=self.num_vars,
            hard=self.hard + clauses,
            groups=dict(self.groups),
            steps=list(self.steps),
            test_inputs=test_inputs,
            assertion_description=spec.describe(),
            gates_shared=self.gates_shared,
            simplifier=self.simplifier,
            signature=self.signature,
            narrowed_vars=self.narrowed_vars,
        )

    def base_formula(self) -> TraceFormula:
        """The invariant encoding as a test-less trace formula.

        Its :meth:`~repro.encoding.trace.TraceFormula.to_wcnf` is the shared
        partial MaxSAT instance a session loads exactly once; per-test units
        are then asserted as retractable layers.
        """
        return TraceFormula(
            width=self.width,
            num_vars=self.num_vars,
            hard=list(self.hard),
            groups=dict(self.groups),
            steps=list(self.steps),
            test_inputs={},
            assertion_description="",
            gates_shared=self.gates_shared,
            simplifier=self.simplifier,
            signature=self.signature,
            narrowed_vars=self.narrowed_vars,
        )
