"""Bounded model checking — the reproduction's replacement for CBMC.

The paper uses CBMC both to generate failing executions ("in case there are
no available tests, we use bounded model checking to systematically explore
program executions and look for potential assertion violations", Section
4.1) and to validate candidate repairs (Algorithm 2 re-checks the patched
program).  :class:`BoundedModelChecker` provides both capabilities: it
unrolls the whole program up to a loop/recursion bound, encodes every path
bit-precisely, and asks the SAT solver for an input that violates some
assertion.
"""

from repro.bmc.checker import BoundedModelChecker, Counterexample
from repro.bmc.compiled import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactFormatError,
    CompiledProgram,
    artifact_key,
    dumps_artifact,
    loads_artifact,
)
from repro.bmc.splice import splice_compile

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactFormatError",
    "BoundedModelChecker",
    "CompiledProgram",
    "Counterexample",
    "artifact_key",
    "dumps_artifact",
    "loads_artifact",
    "splice_compile",
]
