"""The end-to-end BugAssist flow of Figure 1 (deprecated shim).

.. deprecated::
    :class:`BugAssistPipeline` predates the session API and is kept as a
    thin compatibility shim.  New code should use
    :class:`~repro.core.session.LocalizationSession`, which compiles the
    whole-program encoding once and localizes every failing test against it
    (``localize`` / ``localize_batch``); the shim now routes its
    localization calls through exactly that session, so it inherits the
    compile-once behaviour while preserving the old surface.

The pipeline ties the pieces together the way the tool does: failing traces
come either from a provided test suite or from the bounded model checker;
the localizer turns each failing trace into candidate bug locations; and the
repairer optionally synthesises an off-by-one fix at those locations.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.bmc import BoundedModelChecker, Counterexample
from repro.core.localizer import BugAssistLocalizer
from repro.core.report import LocalizationReport, RankedLocalization
from repro.core.repair import OffByOneRepairer, RepairResult
from repro.core.session import LocalizationSession
from repro.lang import ast
from repro.lang.interp import Interpreter
from repro.lang.semantics import DEFAULT_WIDTH
from repro.spec import Specification

TestCase = Sequence[int] | Mapping[str, int]


@dataclass
class PipelineConfig:
    """Tuning knobs for the end-to-end flow."""

    width: int = DEFAULT_WIDTH
    strategy: str = "hitting-set"
    bmc_unwind: int = 16
    max_candidates: int = 25


class BugAssistPipeline:
    """Generate failing executions, localize, and optionally repair.

    Deprecated: use :class:`~repro.core.session.LocalizationSession` for
    localization (this shim delegates to one internally) and
    :class:`~repro.core.repair.OffByOneRepairer` for repair.
    """

    def __init__(
        self,
        program: ast.Program,
        config: Optional[PipelineConfig] = None,
        concrete_functions: Iterable[str] = (),
        hard_functions: Iterable[str] = (),
    ) -> None:
        warnings.warn(
            "BugAssistPipeline is deprecated; use LocalizationSession "
            "(localize / localize_batch) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.program = program
        self.config = config or PipelineConfig()
        self.concrete_functions = tuple(concrete_functions)
        self.hard_functions = tuple(hard_functions)
        self.session = self._make_session("main")
        self._sessions: dict[str, LocalizationSession] = {"main": self.session}
        self.localizer = BugAssistLocalizer(
            program,
            width=self.config.width,
            strategy=self.config.strategy,
            max_candidates=self.config.max_candidates,
            concrete_functions=concrete_functions,
            hard_functions=hard_functions,
        )

    def _make_session(self, entry: str) -> LocalizationSession:
        return LocalizationSession(
            self.program,
            width=self.config.width,
            strategy=self.config.strategy,
            unwind=self.config.bmc_unwind,
            max_candidates=self.config.max_candidates,
            entry=entry,
            hard_functions=self.hard_functions,
        )

    def _session_for(self, entry: str) -> LocalizationSession:
        """One compiled session per entry function (usually just ``main``)."""
        session = self._sessions.get(entry)
        if session is None:
            session = self._make_session(entry)
            self._sessions[entry] = session
        return session

    # ------------------------------------------------------- trace generation

    def find_failing_test(self, entry: str = "main") -> Optional[Counterexample]:
        """Use bounded model checking to find an assertion-violating input."""
        checker = BoundedModelChecker(
            self.program, width=self.config.width, unwind=self.config.bmc_unwind
        )
        return checker.find_counterexample(entry=entry)

    def classify_tests(
        self,
        tests: Iterable[TestCase],
        spec_for: Callable[[TestCase], Specification],
        entry: str = "main",
    ) -> tuple[list[tuple[TestCase, Specification]], list[tuple[TestCase, Specification]]]:
        """Split a test pool into failing and passing tests for this program."""
        interpreter = Interpreter(self.program, width=self.config.width)
        failing: list[tuple[TestCase, Specification]] = []
        passing: list[tuple[TestCase, Specification]] = []
        for test in tests:
            spec = spec_for(test)
            outcome = interpreter.run(test, entry=entry)
            if spec.is_satisfied_by(outcome.observable, outcome.assertion_failed):
                passing.append((test, spec))
            else:
                failing.append((test, spec))
        return failing, passing

    # ------------------------------------------------------------ localization

    def localize(
        self,
        failing_test: Optional[TestCase] = None,
        spec: Optional[Specification] = None,
        entry: str = "main",
        nondet_values: Sequence[int] = (),
    ) -> LocalizationReport:
        """Localize one failing execution.

        When no failing test is given the pipeline first runs the bounded
        model checker to find one (Section 4.1), using the program's own
        assertions as the specification.
        """
        if failing_test is None:
            counterexample = self.find_failing_test(entry=entry)
            if counterexample is None:
                return LocalizationReport(
                    program_name=self.program.name,
                    test_inputs={},
                    specification="no counterexample found",
                )
            failing_test = counterexample.as_test()
            nondet_values = counterexample.nondet_values
            spec = spec or Specification.assertion()
        if spec is None:
            spec = Specification.assertion()
        return self._session_for(entry).localize_test(
            failing_test, spec, entry=entry, nondet_values=nondet_values
        )

    def localize_many(
        self,
        failing_tests: Iterable[tuple[TestCase, Specification]],
        entry: str = "main",
        max_runs: Optional[int] = None,
    ) -> RankedLocalization:
        """Section 4.3: run several failing tests and rank the reported lines.

        Delegates to :meth:`LocalizationSession.localize_batch`, so the
        whole-program encoding is built once for the entire batch.
        """
        return self._session_for(entry).localize_batch(failing_tests, max_runs=max_runs)

    # ----------------------------------------------------------------- repair

    def repair(
        self,
        failing_test: TestCase,
        spec: Specification,
        regression_tests: Sequence[tuple[TestCase, Specification]] = (),
        validator: str = "tests",
        try_operators: bool = False,
        entry: str = "main",
    ) -> RepairResult:
        """Algorithm 2 on top of this pipeline's localizer."""
        repairer = OffByOneRepairer(
            self.program,
            localizer=self.localizer,
            width=self.config.width,
            validator=validator,
            bmc_unwind=self.config.bmc_unwind,
            try_operators=try_operators,
            entry=entry,
        )
        return repairer.repair(failing_test, spec, regression_tests=regression_tests)
