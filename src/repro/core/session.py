"""Compile once, localize many: the session-oriented BugAssist API.

The Table 1 protocol localizes *each* failing test of a program
independently, but the whole-program encoding (and hence almost the entire
partial MaxSAT instance) is identical across those runs — only the
test-input equalities and the post-condition units differ.  A
:class:`LocalizationSession` exploits that:

* the program is compiled exactly once into a
  :class:`~repro.bmc.compiled.CompiledProgram` (the invariant CNF plus the
  bit-vectors where a test plugs in);
* one persistent MaxSAT engine is loaded with the shared instance, and
  each failing test is localized inside a retractable *layer*
  (:meth:`~repro.maxsat.engine.MaxSatEngine.push_layer` /
  :meth:`~repro.maxsat.engine.MaxSatEngine.pop_layer`): the per-test units
  and the CoMSS blocking clauses go in, Algorithm 1 runs, and the layer is
  popped — learnt clauses, variable activities and saved phases survive
  into the next test;
* solver phases are warm-started from the concrete failing test, so the
  first model search starts from the failing execution rather than from a
  cold default;
* :meth:`LocalizationSession.localize_batch` shards the failing tests over
  a process pool (``executor="process"``), pickling the compiled artifact
  once per worker, and merges the per-test reports into a
  :class:`~repro.core.report.RankedLocalization`.

Typical use::

    with LocalizationSession(program) as session:
        ranked = session.localize_batch(failing_tests)
    for line, count in ranked.ranked_lines:
        print(line, count)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro import obs
from repro.bmc import BoundedModelChecker, CompiledProgram
from repro.core.localizer import run_comss_loop
from repro.core.ranking import merge_reports
from repro.core.report import LocalizationReport, RankedLocalization
from repro.lang import ast
from repro.lang.semantics import DEFAULT_WIDTH
from repro.maxsat import MaxSatEngine, make_engine
from repro.spec import Specification

TestCase = Sequence[int] | Mapping[str, int]
FailingTest = tuple[TestCase, Specification]

#: Executors accepted by :meth:`LocalizationSession.localize_batch`.
EXECUTORS = ("serial", "process")


class ShardLocalizationError(RuntimeError):
    """One test inside a process-pool shard failed to localize.

    Raised worker-side with the offending test's label so the parent never
    sees a bare pickle traceback with no hint of which test was to blame.
    ``args`` carries ``(test_label, cause)`` verbatim, which keeps the
    exception picklable across the pool boundary.
    """

    def __init__(self, test_label: str, cause: str) -> None:
        super().__init__(test_label, cause)
        self.test_label = test_label
        self.cause = cause

    def __str__(self) -> str:
        return f"localization of test {self.test_label} failed: {self.cause}"


class BatchLocalizationError(RuntimeError):
    """A shard of a batch localization failed twice (original run + retry)."""


def _test_label(index: int, test: FailingTest) -> str:
    inputs, spec = test
    if isinstance(inputs, Mapping):
        shown = dict(inputs)
    else:
        shown = list(inputs)
    return f"#{index} inputs={shown!r} spec={spec.describe()!r}"


@dataclass
class SessionStats:
    """Counters proving the compile-once contract (used by the benchmarks)."""

    encodings_built: int = 0
    encodings_spliced: int = 0
    splices_declined: int = 0
    splices_declined_early: int = 0
    tests_localized: int = 0
    maxsat_calls: int = 0
    sat_calls: int = 0


class LocalizationSession:
    """Localize many failing tests against one compiled program encoding.

    The session is the primary user-facing localization API; the per-test
    :class:`~repro.core.localizer.BugAssistLocalizer` remains for one-shot
    use and for the dynamic-trace mode.  Sessions are context managers::

        with LocalizationSession(program, hard_lines=(7, 8)) as session:
            report = session.localize(test, spec)
            ranked = session.localize_batch(failing_tests, executor="process",
                                            workers=4)
    """

    def __init__(
        self,
        program: ast.Program,
        width: int = DEFAULT_WIDTH,
        strategy: str = "hitting-set",
        unwind: int = 16,
        max_candidates: int = 25,
        entry: str = "main",
        hard_functions: Iterable[str] = (),
        hard_lines: Iterable[int] = (),
        warm_start: bool = True,
        analysis_narrowing: bool = True,
        static_pruning: bool = True,
        unwind_planning: bool = False,
        loop_iteration_groups: bool = False,
        base_artifact: Optional[CompiledProgram] = None,
    ) -> None:
        self.program = program
        self.width = width
        self.strategy = strategy
        self.unwind = unwind
        self.max_candidates = max_candidates
        self.entry = entry
        self.hard_functions = tuple(hard_functions)
        self.hard_lines = set(hard_lines)
        self.warm_start = warm_start
        self.analysis_narrowing = analysis_narrowing
        self.static_pruning = static_pruning
        self.unwind_planning = unwind_planning
        self.loop_iteration_groups = loop_iteration_groups
        #: Optional prior-version artifact to splice the encoding from
        #: instead of compiling cold; a declined splice falls back silently.
        self.base_artifact = base_artifact
        self.stats = SessionStats()
        #: Solver-effort profile of the most recent :meth:`localize` call
        #: (the innermost engine layer's deltas), for per-request reporting.
        self.last_request_profile: dict[str, object] = {}
        self._compiled: Optional[CompiledProgram] = None
        self._engine: Optional[MaxSatEngine] = None
        self._closed = False
        self._pins = 0

    # ------------------------------------------------------------- lifecycle

    def __enter__(self) -> "LocalizationSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Release the persistent engine (the compiled artifact is kept)."""
        if self._pins:
            raise RuntimeError(f"session is pinned ({self._pins} holders)")
        self._engine = None
        self._closed = True

    # -------------------------------------------------------------- pinning

    def pin(self) -> "LocalizationSession":
        """Mark the session in use, protecting it from cache eviction.

        Warm-session caches (the serve worker pool's per-worker LRU) call
        :meth:`pin` while a request runs against the session and
        :meth:`unpin` afterwards; :meth:`close` refuses while pins are held,
        so an eviction sweep can never tear down a session mid-request.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        self._pins += 1
        return self

    def unpin(self) -> None:
        """Drop one pin (the converse of :meth:`pin`)."""
        if self._pins <= 0:
            raise RuntimeError("session is not pinned")
        self._pins -= 1

    @property
    def pinned(self) -> bool:
        """True while at least one holder has the session pinned."""
        return self._pins > 0

    @classmethod
    def from_compiled(
        cls,
        compiled: CompiledProgram,
        strategy: str = "hitting-set",
        max_candidates: int = 25,
        hard_lines: Iterable[int] = (),
        warm_start: bool = True,
        static_pruning: bool = True,
    ) -> "LocalizationSession":
        """Adopt an existing compiled artifact (process-pool workers do this).

        The session never re-encodes: ``stats.encodings_built`` stays 0.
        """
        session = cls.__new__(cls)
        session.program = None
        session.width = compiled.width
        session.strategy = strategy
        session.unwind = compiled.unwind
        session.max_candidates = max_candidates
        session.entry = compiled.entry
        session.hard_functions = ()
        session.hard_lines = set(hard_lines)
        session.warm_start = warm_start
        session.analysis_narrowing = True
        session.static_pruning = static_pruning
        options = compiled.compile_options or {}
        session.unwind_planning = bool(options.get("unwind_planning", False))
        session.loop_iteration_groups = bool(
            options.get("loop_iteration_groups", False)
        )
        session.base_artifact = None
        session.stats = SessionStats()
        session.last_request_profile = {}
        session._compiled = compiled
        session._engine = None
        session._closed = False
        session._pins = 0
        return session

    # --------------------------------------------------------------- compile

    @property
    def compiled(self) -> CompiledProgram:
        """The whole-program encoding, built on first use and then reused.

        With a ``base_artifact`` the build is warm: the prior version's
        emission journal is spliced (unchanged functions replayed, impacted
        ones re-encoded) and falls back to a cold compile when the diff is
        not spliceable.  Warm or cold, the encoding is byte-equivalent.
        """
        if self._compiled is None:
            checker_kwargs = dict(
                width=self.width,
                unwind=self.unwind,
                group_statements=True,
                hard_functions=self.hard_functions,
                analysis_narrowing=self.analysis_narrowing,
                unwind_planning=self.unwind_planning,
                loop_iteration_groups=self.loop_iteration_groups,
            )
            if self.base_artifact is not None:
                from repro.bmc.splice import splice_compile

                # A declined splice leaves its checker's encoder state
                # dirty, so the cold fallback builds a fresh one.
                outcome: dict = {}
                self._compiled = splice_compile(
                    self.base_artifact,
                    BoundedModelChecker(self.program, **checker_kwargs),
                    entry=self.entry,
                    outcome=outcome,
                )
                if self._compiled is not None:
                    self.stats.encodings_spliced += 1
                elif outcome.get("declined"):
                    self.stats.splices_declined += 1
                    if outcome.get("declined_early"):
                        self.stats.splices_declined_early += 1
            if self._compiled is None:
                checker = BoundedModelChecker(self.program, **checker_kwargs)
                self._compiled = checker.compile_program(entry=self.entry)
            self.stats.encodings_built += 1
        return self._compiled

    def _ensure_engine(self) -> MaxSatEngine:
        if self._closed:
            raise RuntimeError("session is closed")
        if self._engine is None:
            # Static soft-clause pruning: statement lines outside the
            # backward slice of every assertion/output stay hard — their
            # writes provably cannot explain the failure, so they are never
            # offered to MaxSAT as fault candidates.
            hard_groups = set(self.hard_lines)
            if self.static_pruning:
                hard_groups.update(self.compiled.pruned_lines)
            wcnf, _ = self.compiled.base_formula().to_wcnf(
                hard_groups=hard_groups or None
            )
            engine = make_engine(self.strategy)
            engine.load(wcnf)
            self._engine = engine
        return self._engine

    # -------------------------------------------------------------- localize

    def localize(
        self,
        failing_test: TestCase,
        spec: Specification,
        nondet_values: Sequence[int] = (),
        program_name: Optional[str] = None,
    ) -> LocalizationReport:
        """Run Algorithm 1 for one failing test on the shared encoding.

        The per-test input and specification units (and every blocking
        clause the CoMSS loop adds) live in a retractable layer that is
        popped before returning, so the next call starts from the same
        shared instance — plus whatever the solver learnt.
        """
        compiled = self.compiled
        engine = self._ensure_engine()
        with obs.span(
            "session.localize", program=program_name or compiled.program_name
        ) as request_span:
            clauses, test_inputs = compiled.test_clauses(
                failing_test, spec, nondet_values=nondet_values
            )
            report = LocalizationReport(
                program_name=program_name or compiled.program_name,
                test_inputs=test_inputs,
                specification=spec.describe(),
                trace_assignments=compiled.num_assignments,
                trace_variables=compiled.num_vars,
                trace_clauses=compiled.num_clauses + len(clauses),
                unwind_truncated=compiled.unwind_truncated,
            )
            sat_calls_before = engine.sat_calls
            engine.push_layer()
            try:
                for clause in clauses:
                    engine.add_hard(clause)
                if self.warm_start:
                    engine.set_phases(compiled.phase_hints(test_inputs))
                with obs.span("solve.comss") as solve_span:
                    run_comss_loop(engine, report, self.max_candidates)
                layer_stats = engine.layer_stats()
                report.propagations = layer_stats.propagations
                report.conflicts = layer_stats.conflicts
                profile = dict(engine.layer_profile())
                solve_span.set(
                    sat_calls=profile.get("sat_calls"),
                    propagations=layer_stats.propagations,
                    conflicts=layer_stats.conflicts,
                )
                encode_profile = compiled.encode_profile()
                if encode_profile:
                    profile["encode_backend"] = encode_profile["encode_backend"]
                    for phase, seconds in encode_profile["encode_phases"].items():
                        profile[f"encode_phase_{phase}"] = round(seconds, 6)
                trace_id = obs.current_trace_id()
                if trace_id is not None:
                    profile["trace_id"] = trace_id
                self.last_request_profile = profile
            finally:
                engine.pop_layer()
            report.sat_calls = engine.sat_calls - sat_calls_before
        report.time_seconds = request_span.duration
        _record_localize_metrics(report, layer_stats)
        self.stats.tests_localized += 1
        self.stats.maxsat_calls += report.maxsat_calls
        self.stats.sat_calls += report.sat_calls
        return report

    def localize_test(
        self,
        inputs: TestCase,
        spec: Specification,
        entry: str = "main",
        nondet_values: Sequence[int] = (),
        program_name: Optional[str] = None,
    ) -> LocalizationReport:
        """Drop-in signature compatibility with ``BugAssistLocalizer``.

        Lets :func:`repro.core.ranking.rank_locations` and the repair loop
        drive a session unchanged.  The entry function is fixed per session.
        """
        if entry != self.entry:
            raise ValueError(
                f"session compiled for entry {self.entry!r}, got {entry!r}"
            )
        return self.localize(
            inputs, spec, nondet_values=nondet_values, program_name=program_name
        )

    # ----------------------------------------------------------------- batch

    def localize_batch(
        self,
        failing_tests: Iterable[FailingTest],
        executor: str = "serial",
        workers: Optional[int] = None,
        max_runs: Optional[int] = None,
        program_name: Optional[str] = None,
        on_run: Optional[Callable[[LocalizationReport], None]] = None,
    ) -> RankedLocalization:
        """Section 4.3 at session speed: localize a batch and rank the lines.

        ``executor="serial"`` reuses this session's engine for every test;
        ``executor="process"`` compiles once, pickles the artifact to each
        worker process, shards the tests round-robin and merges the reports.
        Either way the reports arrive in input order, so the resulting
        :class:`~repro.core.report.RankedLocalization` is identical across
        executors.
        """
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        if self._closed:
            raise RuntimeError("session is closed")
        tests = list(failing_tests)
        if max_runs is not None:
            tests = tests[:max_runs]
        name = program_name or self.compiled.program_name
        if executor == "process" and len(tests) > 1:
            reports = self._localize_with_pool(tests, workers)
        else:
            # A generator, so on_run streams per-test progress as each
            # localization finishes instead of after the whole batch.
            reports = (self.localize(inputs, spec) for inputs, spec in tests)
        return merge_reports(name, reports, on_run=on_run)

    def _localize_with_pool(
        self, tests: list[FailingTest], workers: Optional[int]
    ) -> list[LocalizationReport]:
        import os
        from concurrent.futures import ProcessPoolExecutor

        workers = workers or min(len(tests), os.cpu_count() or 1)
        workers = max(1, min(workers, len(tests)))
        shards: list[list[tuple[int, FailingTest]]] = [[] for _ in range(workers)]
        for index, test in enumerate(tests):
            shards[index % workers].append((index, test))
        payload = (
            self.compiled,
            self.strategy,
            self.max_candidates,
            tuple(self.hard_lines),
            self.warm_start,
            self.static_pruning,
        )
        reports: list[Optional[LocalizationReport]] = [None] * len(tests)
        failed: list[tuple[list[tuple[int, FailingTest]], BaseException]] = []
        # The forwardable (trace_id, parent_span_id) of the caller's open
        # span, if any: each shard re-binds it in the worker process and
        # ships its spans back with the results, so one trace stitches the
        # whole fan-out.
        trace_ctx = obs.current_context()
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_pool_initializer,
            initargs=(payload,),
        ) as pool:
            futures = [
                pool.submit(_pool_localize_shard, shard, trace_ctx)
                for shard in shards
            ]
            for shard, future in zip(shards, futures):
                try:
                    results, shard_spans = future.result()
                    for index, report in results:
                        reports[index] = report
                    obs.merge_spans(trace_ctx and trace_ctx[0], shard_spans)
                except Exception as exc:
                    # A dead or poisoned worker takes its whole shard down
                    # (and, for a BrokenProcessPool, every later shard too).
                    # Collect the casualties; they get exactly one retry on a
                    # fresh pool below instead of surfacing a bare traceback.
                    failed.append((shard, exc))
        for shard, original in failed:
            try:
                with ProcessPoolExecutor(
                    max_workers=1,
                    initializer=_pool_initializer,
                    initargs=(payload,),
                ) as retry_pool:
                    results, shard_spans = retry_pool.submit(
                        _pool_localize_shard, shard, trace_ctx
                    ).result()
                    for index, report in results:
                        reports[index] = report
                    obs.merge_spans(trace_ctx and trace_ctx[0], shard_spans)
            except Exception as exc:
                raise BatchLocalizationError(
                    f"shard of {len(shard)} test(s) failed twice "
                    f"(original run: {_describe_error(original)}; "
                    f"fresh-pool retry: {_describe_error(exc)}); "
                    f"offending test: {_shard_failure_label(shard, exc)}"
                ) from exc
        self.stats.tests_localized += len(tests)
        for report in reports:
            assert report is not None
            self.stats.maxsat_calls += report.maxsat_calls
            self.stats.sat_calls += report.sat_calls
        return reports  # type: ignore[return-value]


def _record_localize_metrics(report: LocalizationReport, layer_stats) -> None:
    """Absorb one request's solver effort into the process metrics registry.

    ``layer_stats`` is the per-request :class:`~repro.sat.solver.SolverStats`
    delta (the engine layer's ``since`` snapshot), so the counters aggregate
    true per-request effort — including the C-core propagation/conflict/
    restart counts when those backends ran.
    """
    registry = obs.REGISTRY
    registry.counter(
        "repro_localizations", "Localization requests completed"
    ).inc()
    registry.counter(
        "repro_solver_sat_calls", "Incremental SAT calls issued by the CoMSS loop"
    ).inc(report.sat_calls)
    registry.counter(
        "repro_solver_propagations", "Unit propagations across all solves"
    ).inc(layer_stats.propagations)
    registry.counter(
        "repro_solver_conflicts", "Conflicts across all solves"
    ).inc(layer_stats.conflicts)
    registry.counter(
        "repro_solver_restarts", "Solver restarts across all solves"
    ).inc(layer_stats.restarts)
    registry.histogram(
        "repro_localize_seconds", "End-to-end localization latency"
    ).observe(report.time_seconds)


# ----------------------------------------------------- process-pool plumbing

#: Per-worker session, created once by the pool initializer from the pickled
#: compiled artifact — each worker builds zero encodings and reuses one
#: persistent engine across its whole shard.
_WORKER_SESSION: Optional[LocalizationSession] = None


def _pool_initializer(payload) -> None:
    global _WORKER_SESSION
    compiled, strategy, max_candidates, hard_lines, warm_start, static_pruning = payload
    _WORKER_SESSION = LocalizationSession.from_compiled(
        compiled,
        strategy=strategy,
        max_candidates=max_candidates,
        hard_lines=hard_lines,
        warm_start=warm_start,
        static_pruning=static_pruning,
    )


def _pool_localize_shard(
    shard, trace_ctx=None
) -> tuple[list[tuple[int, LocalizationReport]], list[dict]]:
    """Localize one shard; returns the reports plus the spans to stitch.

    ``trace_ctx`` is the parent's forwarded ``(trace_id, parent_span_id)``;
    the per-test ``session.localize`` spans recorded here parent under it
    once the caller merges them.  ``None`` (tracing off) collects nothing.
    """
    assert _WORKER_SESSION is not None
    results: list[tuple[int, LocalizationReport]] = []
    with obs.remote_trace(trace_ctx) as bundle:
        with obs.span("pool.shard", tests=len(shard)):
            for index, (inputs, spec) in shard:
                try:
                    results.append((index, _WORKER_SESSION.localize(inputs, spec)))
                except Exception as exc:
                    raise ShardLocalizationError(
                        _test_label(index, (inputs, spec)),
                        f"{type(exc).__name__}: {exc}",
                    ) from exc
    return results, bundle.spans


def _describe_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _shard_failure_label(
    shard: list[tuple[int, FailingTest]], exc: BaseException
) -> str:
    """Name the test to blame for a shard failure.

    A :class:`ShardLocalizationError` pinpoints it; a worker that died
    outright (BrokenProcessPool) cannot say which test killed it, so the
    whole shard is named.
    """
    if isinstance(exc, ShardLocalizationError):
        return exc.test_label
    return "unknown (worker died); shard tests: " + ", ".join(
        _test_label(index, test) for index, test in shard
    )
