"""Algorithm 2: automated repair of off-by-one (and operator) errors.

The localization step reduces the problem to a few candidate lines.  For
each candidate line that contains a constant ``k``, two patched programs are
produced with ``k + 1`` and ``k - 1``; a patch is accepted when the failure
can no longer be reproduced.  The same loop optionally tries the common
operator confusions (``<`` vs ``<=``, ``+`` vs ``-`` and so on) mentioned in
Sections 2 and 5.1 of the paper.

Validation of a candidate patch ("GenerateCounterExample(P', p) = empty")
can be performed two ways:

* ``validator="tests"`` (default) — the failing test must now satisfy the
  specification and every supplied regression test must keep passing;
* ``validator="bmc"`` — the bounded model checker must find no assertion
  violation within the unwind bound (closest to the paper, which re-runs
  CBMC on the patched program).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.core.localizer import BugAssistLocalizer
from repro.core.report import LocalizationReport
from repro.lang import ast
from repro.lang.interp import Interpreter
from repro.lang.pretty import format_program
from repro.lang.semantics import DEFAULT_WIDTH
from repro.lang.transform import (
    OPERATOR_ALTERNATIVES,
    constants_on_line,
    operators_on_line,
    replace_constant_on_line,
    replace_operator_on_line,
)
from repro.spec import Specification

TestCase = Sequence[int] | Mapping[str, int]


@dataclass
class RepairResult:
    """Outcome of an automated repair attempt."""

    success: bool
    line: Optional[int] = None
    kind: Optional[str] = None  # "constant" or "operator"
    original: Optional[object] = None
    replacement: Optional[object] = None
    patched_program: Optional[ast.Program] = None
    localization: Optional[LocalizationReport] = None
    attempts: int = 0

    def describe(self) -> str:
        if not self.success:
            return "no off-by-one (or operator) repair found"
        return (
            f"line {self.line}: replace {self.kind} {self.original!r} "
            f"with {self.replacement!r}"
        )

    def patched_source(self) -> str:
        if self.patched_program is None:
            return ""
        return format_program(self.patched_program)


class OffByOneRepairer:
    """Suggests fixes for common error classes at the localized lines."""

    def __init__(
        self,
        program: ast.Program,
        localizer: Optional[BugAssistLocalizer] = None,
        width: int = DEFAULT_WIDTH,
        validator: str = "tests",
        bmc_unwind: int = 16,
        try_operators: bool = False,
        entry: str = "main",
    ) -> None:
        self.program = program
        self.localizer = localizer or BugAssistLocalizer(program, width=width)
        self.width = width
        self.validator = validator
        self.bmc_unwind = bmc_unwind
        self.try_operators = try_operators
        self.entry = entry

    # ------------------------------------------------------------------ API

    def repair(
        self,
        failing_test: TestCase,
        spec: Specification,
        regression_tests: Sequence[tuple[TestCase, Specification]] = (),
        nondet_values: Sequence[int] = (),
    ) -> RepairResult:
        """Run Algorithm 2 starting from one failing test."""
        report = self.localizer.localize_test(
            failing_test, spec, entry=self.entry, nondet_values=nondet_values
        )
        attempts = 0
        for line in report.lines:
            for constant in constants_on_line(self.program, line):
                for delta in (+1, -1):
                    attempts += 1
                    patched = replace_constant_on_line(
                        self.program, line, constant, constant + delta
                    )
                    if self._validates(patched, failing_test, spec, regression_tests, nondet_values):
                        return RepairResult(
                            success=True,
                            line=line,
                            kind="constant",
                            original=constant,
                            replacement=constant + delta,
                            patched_program=patched,
                            localization=report,
                            attempts=attempts,
                        )
            if not self.try_operators:
                continue
            for operator in operators_on_line(self.program, line):
                for alternative in OPERATOR_ALTERNATIVES.get(operator, ()):
                    attempts += 1
                    patched = replace_operator_on_line(self.program, line, operator, alternative)
                    if self._validates(patched, failing_test, spec, regression_tests, nondet_values):
                        return RepairResult(
                            success=True,
                            line=line,
                            kind="operator",
                            original=operator,
                            replacement=alternative,
                            patched_program=patched,
                            localization=report,
                            attempts=attempts,
                        )
        return RepairResult(success=False, localization=report, attempts=attempts)

    # ------------------------------------------------------------- internals

    def _validates(
        self,
        patched: ast.Program,
        failing_test: TestCase,
        spec: Specification,
        regression_tests: Sequence[tuple[TestCase, Specification]],
        nondet_values: Sequence[int],
    ) -> bool:
        if self.validator == "bmc":
            return self._validates_by_bmc(patched)
        return self._validates_by_tests(
            patched, failing_test, spec, regression_tests, nondet_values
        )

    def _validates_by_tests(
        self,
        patched: ast.Program,
        failing_test: TestCase,
        spec: Specification,
        regression_tests: Sequence[tuple[TestCase, Specification]],
        nondet_values: Sequence[int],
    ) -> bool:
        interpreter = Interpreter(patched, width=self.width)
        result = interpreter.run(failing_test, entry=self.entry, nondet_values=nondet_values)
        if not spec.is_satisfied_by(result.observable, result.assertion_failed):
            return False
        for inputs, test_spec in regression_tests:
            outcome = interpreter.run(inputs, entry=self.entry)
            if not test_spec.is_satisfied_by(outcome.observable, outcome.assertion_failed):
                return False
        return True

    def _validates_by_bmc(self, patched: ast.Program) -> bool:
        from repro.bmc import BoundedModelChecker

        checker = BoundedModelChecker(patched, width=self.width, unwind=self.bmc_unwind)
        return checker.find_counterexample(entry=self.entry) is None
