"""Report records produced by the localization algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.encoding.context import StatementGroup


@dataclass(frozen=True)
class BugLocation:
    """One CoMSS reported by the localization loop.

    A CoMSS with more than one group means "the program cannot be fixed by
    changing any one of these lines alone; it must be changed at all of them
    simultaneously" (paper Section 4.2).
    """

    groups: tuple[StatementGroup, ...]
    cost: int = 1

    @property
    def lines(self) -> tuple[int, ...]:
        return tuple(sorted({group.line for group in self.groups}))

    def describe(self) -> str:
        return " + ".join(group.describe() for group in self.groups)


@dataclass
class LocalizationReport:
    """Result of running BugAssist on one failing execution."""

    program_name: str
    test_inputs: dict[str, int]
    specification: str
    candidates: list[BugLocation] = field(default_factory=list)
    trace_assignments: int = 0
    trace_variables: int = 0
    trace_clauses: int = 0
    maxsat_calls: int = 0
    sat_calls: int = 0
    #: Unit propagations performed by the SAT solver for this run (for a
    #: session run: inside this test's layer only).
    propagations: int = 0
    #: Conflicts analyzed by the SAT solver for this run (same scoping as
    #: ``propagations``); the Table 3 benchmarks derive
    #: ``conflicts_per_second`` — search-kernel throughput — from this.
    conflicts: int = 0
    time_seconds: float = 0.0
    #: True when the encoding truncated a loop whose proven minimum trip
    #: count exceeds the unroll depth: the localized execution is a prefix,
    #: so candidates may be incomplete.  Raise ``unwind`` or enable
    #: ``unwind_planning`` to clear it.
    unwind_truncated: bool = False

    @property
    def lines(self) -> list[int]:
        """All reported source lines, in order of first appearance."""
        seen: list[int] = []
        for candidate in self.candidates:
            for line in candidate.lines:
                if line not in seen:
                    seen.append(line)
        return seen

    def contains_line(self, line: int) -> bool:
        """Did any CoMSS include the given source line?"""
        return line in self.lines

    def size_reduction_percent(self, total_lines: int) -> float:
        """The paper's SizeReduc%: reported lines over total program lines."""
        if total_lines <= 0:
            return 0.0
        return 100.0 * len(self.lines) / total_lines

    def summary(self) -> str:
        if not self.candidates:
            return "no potential bug locations found (formula already satisfiable)"
        parts = [f"potential bug locations for {self.program_name}:"]
        for rank, candidate in enumerate(self.candidates, start=1):
            parts.append(f"  {rank}. {candidate.describe()}")
        return "\n".join(parts)


@dataclass
class RankedLocalization:
    """Aggregated localization over several failing tests (Section 4.3)."""

    program_name: str
    runs: list[LocalizationReport] = field(default_factory=list)
    line_counts: dict[int, int] = field(default_factory=dict)

    @property
    def ranked_lines(self) -> list[tuple[int, int]]:
        """(line, count) pairs sorted by decreasing report frequency."""
        return sorted(self.line_counts.items(), key=lambda item: (-item[1], item[0]))

    @property
    def all_lines(self) -> list[int]:
        return [line for line, _ in self.ranked_lines]

    def detection_count(self, fault_lines: set[int]) -> int:
        """How many runs reported at least one of the true fault lines."""
        return sum(
            1 for run in self.runs if any(run.contains_line(line) for line in fault_lines)
        )

    def size_reduction_percent(self, total_lines: int) -> float:
        if total_lines <= 0:
            return 0.0
        return 100.0 * len(self.line_counts) / total_lines
