"""Section 5.2: localizing the faulty loop iteration.

Bugs involving loops can be hidden during early iterations and only surface
later.  The extension gives every loop-body statement a *per-iteration*
selector variable and weights the soft clauses by

    Weight(lambda^kappa_tau) = alpha + eta - kappa          (Equation 3)

where ``eta`` is the number of iterations in the trace and ``alpha`` the
default soft-clause weight.  Falsifying an early-iteration clause therefore
carries a higher penalty, which steers the weighted MaxSAT optimum toward
the latest iteration whose change can still avert the failure — the point at
which the failure is actually caused.  The report additionally lists, per
source line, every iteration that appears in some correction set, and the
smallest of them as the first iteration at which a fix is possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.concolic import ConcolicTracer
from repro.core.report import BugLocation
from repro.encoding.context import StatementGroup
from repro.lang import ast
from repro.lang.semantics import DEFAULT_WIDTH
from repro.maxsat import WCNF, make_engine
from repro.spec import Specification

TestCase = Sequence[int] | Mapping[str, int]


@dataclass
class LoopIterationReport:
    """Localization result with per-iteration information."""

    program_name: str
    eta: int
    candidates: list[BugLocation] = field(default_factory=list)
    iteration_candidates: dict[int, list[int]] = field(default_factory=dict)

    @property
    def lines(self) -> list[int]:
        seen: list[int] = []
        for candidate in self.candidates:
            for line in candidate.lines:
                if line not in seen:
                    seen.append(line)
        return seen

    def reported_iteration(self, line: int) -> Optional[int]:
        """The iteration reported for ``line`` in the best (first) correction set."""
        for candidate in self.candidates:
            for group in candidate.groups:
                if group.line == line and group.iteration is not None:
                    return group.iteration
        return None

    def first_fixable_iteration(self, line: int) -> Optional[int]:
        """The earliest iteration of ``line`` appearing in any correction set."""
        iterations = self.iteration_candidates.get(line)
        return min(iterations) if iterations else None


class LoopIterationLocalizer:
    """Weighted localization with per-iteration selector variables."""

    def __init__(
        self,
        program: ast.Program,
        width: int = DEFAULT_WIDTH,
        alpha: int = 1,
        max_candidates: int = 25,
    ) -> None:
        self.program = program
        self.width = width
        self.alpha = alpha
        self.max_candidates = max_candidates

    def localize(
        self,
        inputs: TestCase,
        spec: Specification,
        entry: str = "main",
        nondet_values: Sequence[int] = (),
    ) -> LoopIterationReport:
        """Localize a failing test with iteration-aware clause groups."""
        tracer = ConcolicTracer(
            self.program, width=self.width, loop_iteration_groups=True
        )
        formula = tracer.trace(inputs, spec, entry=entry, nondet_values=nondet_values)
        eta = max(
            (group.iteration for group in formula.groups if group.iteration is not None),
            default=0,
        )

        def weight_of(group: StatementGroup) -> int:
            if group.iteration is None:
                return self.alpha
            return self.alpha + eta - group.iteration + 1

        wcnf, _ = formula.to_wcnf(weight_of=weight_of)
        report = LoopIterationReport(program_name=self.program.name, eta=eta)
        for _ in range(self.max_candidates):
            engine = make_engine("hitting-set")
            result = engine.solve(wcnf)
            if not result.satisfiable or not result.falsified:
                break
            groups = tuple(
                label
                for label in result.falsified_labels
                if isinstance(label, StatementGroup)
            )
            if not groups:
                break
            report.candidates.append(BugLocation(groups=groups, cost=result.cost))
            for group in groups:
                if group.iteration is not None:
                    report.iteration_candidates.setdefault(group.line, []).append(
                        group.iteration
                    )
            wcnf = self._block(wcnf, result.falsified)
        return report

    @staticmethod
    def _block(wcnf: WCNF, falsified: Sequence[int]) -> WCNF:
        blocked = set(falsified)
        beta: list[int] = []
        for index in blocked:
            beta.extend(wcnf.soft[index].lits)
        successor = WCNF()
        successor._num_vars = wcnf.num_vars
        for clause in wcnf.hard:
            successor.add_hard(clause)
        successor.add_hard(beta)
        for index, soft in enumerate(wcnf.soft):
            if index not in blocked:
                successor.add_soft(list(soft.lits), weight=soft.weight, label=soft.label)
        return successor
