"""Algorithm 1: the BugAssist localization loop.

Given a failing test, the localizer

1. builds the extended trace formula — either from "the entire boolean
   representation of the program" (``mode="program"``, the CBMC-style
   whole-program encoding the paper uses for the TCAS experiments) or from
   the dynamic trace of the failing execution (``mode="trace"``, the
   concolic construction used together with the trace-reduction techniques
   of Table 3),
2. converts it to a partial MaxSAT instance (test input and post-condition
   hard, one soft selector clause per statement),
3. repeatedly asks the MaxSAT engine for a CoMSS, reports the corresponding
   statements as a candidate bug location, and blocks that CoMSS by adding
   the disjunction of its selectors as a hard clause while removing them
   from the soft set,
4. stops when no further CoMSS exists ("no more suspects").

The CoMSS loop is incremental: the trace formula is loaded into one engine
(and hence one persistent SAT solver) once, and each blocking clause is
added to the live solver through :meth:`MaxSatEngine.block` — learnt
clauses, variable activities and saved phases from earlier candidates all
carry over, instead of rebuilding a fresh engine and WCNF per candidate.
"""

from __future__ import annotations

import time
from typing import Iterable, Mapping, Optional, Sequence

from repro.concolic import ConcolicTracer
from repro.core.report import BugLocation, LocalizationReport
from repro.encoding.context import StatementGroup
from repro.encoding.trace import TraceFormula
from repro.lang import ast
from repro.lang.semantics import DEFAULT_WIDTH
from repro.maxsat import MaxSatEngine, make_engine
from repro.spec import Specification


def run_comss_loop(
    engine: MaxSatEngine, report: LocalizationReport, max_candidates: int
) -> None:
    """Lines 5-15 of Algorithm 1: enumerate and block CoMSSes.

    Shared by the one-shot localizer and the session API so both produce
    identical candidate sequences.  Appends to ``report.candidates`` and
    sets ``report.maxsat_calls``; the caller accounts for SAT calls and
    wall time (the session reports per-test deltas on a shared engine).
    """
    maxsat_calls = 0
    for _ in range(max_candidates):
        result = engine.solve_current()
        maxsat_calls += 1
        if not result.satisfiable or not result.falsified:
            break
        groups = tuple(
            label
            for label in result.falsified_labels
            if isinstance(label, StatementGroup)
        )
        if not groups:
            break
        report.candidates.append(BugLocation(groups=groups, cost=result.cost))
        engine.block(result.falsified)
    report.maxsat_calls = maxsat_calls


class BugAssistLocalizer:
    """Error localization by maximum satisfiability (the BugAssist tool)."""

    def __init__(
        self,
        program: ast.Program,
        width: int = DEFAULT_WIDTH,
        strategy: str = "hitting-set",
        mode: str = "program",
        unwind: int = 16,
        max_candidates: int = 25,
        concrete_functions: Iterable[str] = (),
        hard_functions: Iterable[str] = (),
        hard_lines: Iterable[int] = (),
    ) -> None:
        """Configure the localizer.

        ``strategy`` selects the MaxSAT engine.  ``mode`` selects how the
        formula is built: ``"program"`` encodes the whole program (both
        branches of every conditional, loops unrolled up to ``unwind``) the
        way CBMC does, while ``"trace"`` encodes only the dynamic path of the
        failing execution (used with the trace-reduction techniques).
        ``concrete_functions`` are executed concretely only (concolic trace
        reduction, ``mode="trace"`` only), while ``hard_functions`` /
        ``hard_lines`` are encoded but excluded from the candidate set
        (library code assumed correct).  ``max_candidates`` bounds the number
        of CoMSS iterations.
        """
        if mode not in ("program", "trace"):
            raise ValueError(f"unknown localization mode {mode!r}")
        self.program = program
        self.width = width
        self.strategy = strategy
        self.mode = mode
        self.unwind = unwind
        self.max_candidates = max_candidates
        self.concrete_functions = tuple(concrete_functions)
        self.hard_functions = tuple(hard_functions)
        self.hard_lines = set(hard_lines)

    # ------------------------------------------------------------------ API

    def build_trace_formula(
        self,
        inputs: Sequence[int] | Mapping[str, int],
        spec: Specification,
        entry: str = "main",
        nondet_values: Sequence[int] = (),
    ) -> TraceFormula:
        """Build the extended trace formula for one failing test."""
        if self.mode == "program":
            from repro.bmc import BoundedModelChecker

            checker = BoundedModelChecker(
                self.program,
                width=self.width,
                unwind=self.unwind,
                group_statements=True,
                hard_functions=self.hard_functions,
            )
            return checker.encode_program_formula(
                inputs, spec, entry=entry, nondet_values=nondet_values
            )
        tracer = ConcolicTracer(
            self.program,
            width=self.width,
            concrete_functions=self.concrete_functions,
            hard_functions=self.hard_functions,
        )
        return tracer.trace(inputs, spec, entry=entry, nondet_values=nondet_values)

    def localize_trace(
        self,
        formula: TraceFormula,
        program_name: Optional[str] = None,
    ) -> LocalizationReport:
        """Run the CoMSS enumeration loop of Algorithm 1 on a trace formula."""
        started = time.perf_counter()
        wcnf, selector_to_group = formula.to_wcnf(hard_groups=self.hard_lines or None)
        report = LocalizationReport(
            program_name=program_name or self.program.name,
            test_inputs=dict(formula.test_inputs),
            specification=formula.assertion_description,
            trace_assignments=formula.num_assignments,
            trace_variables=formula.num_vars,
            trace_clauses=formula.num_clauses,
        )
        engine = make_engine(self.strategy)
        engine.load(wcnf)
        run_comss_loop(engine, report, self.max_candidates)
        report.sat_calls = engine.sat_calls
        report.propagations = engine.solver_stats.propagations
        report.conflicts = engine.solver_stats.conflicts
        report.time_seconds = time.perf_counter() - started
        return report

    def localize_test(
        self,
        inputs: Sequence[int] | Mapping[str, int],
        spec: Specification,
        entry: str = "main",
        nondet_values: Sequence[int] = (),
        program_name: Optional[str] = None,
    ) -> LocalizationReport:
        """Localize starting from a failing test (trace + CoMSS loop)."""
        formula = self.build_trace_formula(
            inputs, spec, entry=entry, nondet_values=nondet_values
        )
        return self.localize_trace(formula, program_name=program_name)
