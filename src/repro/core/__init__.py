"""The BugAssist algorithms — the paper's primary contribution.

* :class:`BugAssistLocalizer` — Algorithm 1: build the extended trace
  formula for a failing test, repeatedly extract CoMSSes from the partial
  MaxSAT instance, block each one, and report the corresponding source
  lines as candidate error locations.
* :func:`rank_locations` / :class:`RankedLocalization` — Section 4.3:
  aggregate localization over many failing tests and rank lines by how
  often they are reported.
* :class:`OffByOneRepairer` — Algorithm 2 (Section 5.1): mutate constants
  (and optionally operators) at reported locations and check whether the
  failure disappears.
* :class:`LoopIterationLocalizer` — Section 5.2: weighted soft clauses with
  per-iteration selector variables to pin-point the loop iteration at which
  the failure is first caused.
* :class:`LocalizationSession` — the session API: compile the
  whole-program encoding once, then ``localize``/``localize_batch`` many
  failing tests against it with solver push/pop between tests.
* :class:`BugAssistPipeline` — the end-to-end flow of Figure 1 (failing
  trace generation via tests or BMC, localization, optional repair);
  deprecated in favour of the session.
"""

from repro.core.report import BugLocation, LocalizationReport, RankedLocalization
from repro.core.localizer import BugAssistLocalizer
from repro.core.ranking import merge_reports, rank_locations
from repro.core.repair import OffByOneRepairer, RepairResult
from repro.core.loops import LoopIterationLocalizer, LoopIterationReport
from repro.core.session import (
    BatchLocalizationError,
    LocalizationSession,
    SessionStats,
    ShardLocalizationError,
    TestCase,
)
from repro.core.pipeline import BugAssistPipeline, PipelineConfig
from repro.spec import Specification

__all__ = [
    "BatchLocalizationError",
    "BugAssistLocalizer",
    "BugLocation",
    "ShardLocalizationError",
    "LocalizationReport",
    "LocalizationSession",
    "RankedLocalization",
    "SessionStats",
    "TestCase",
    "merge_reports",
    "rank_locations",
    "OffByOneRepairer",
    "RepairResult",
    "LoopIterationLocalizer",
    "LoopIterationReport",
    "BugAssistPipeline",
    "PipelineConfig",
    "Specification",
]
