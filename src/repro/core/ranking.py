"""Multi-trace ranking of bug locations (paper Section 4.3).

BugAssist becomes more precise when run with several failing tests: each run
reports a set of candidate lines, and ranking the lines by how frequently
they are reported narrows the search to the true fault.

The runner accepts either a per-test
:class:`~repro.core.localizer.BugAssistLocalizer` (one encoding per failing
test) or a :class:`~repro.core.session.LocalizationSession` (one shared
encoding for the whole batch) — both expose the same ``localize_test``
surface.  :func:`merge_reports` is the order-preserving aggregation step,
shared with the session's sharded batch executor so serial and process-pool
runs rank identically.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.core.report import LocalizationReport, RankedLocalization
from repro.spec import Specification

TestCase = Sequence[int] | Mapping[str, int]


def merge_reports(
    program_name: str,
    reports: Iterable[LocalizationReport],
    on_run: Optional[Callable[[LocalizationReport], None]] = None,
) -> RankedLocalization:
    """Aggregate per-test reports into a ranked localization.

    Every report counts each of its lines once; the ranking sorts by
    decreasing report frequency (ties by line number).
    """
    ranked = RankedLocalization(program_name=program_name)
    for report in reports:
        ranked.runs.append(report)
        for line in report.lines:
            ranked.line_counts[line] = ranked.line_counts.get(line, 0) + 1
        if on_run is not None:
            on_run(report)
    return ranked


def _default_program_name(localizer) -> str:
    program = getattr(localizer, "program", None)
    if program is not None:
        return program.name
    return localizer.compiled.program_name


def rank_locations(
    localizer,
    failing_tests: Iterable[tuple[TestCase, Specification]],
    entry: str = "main",
    program_name: Optional[str] = None,
    max_runs: Optional[int] = None,
    on_run: Optional[Callable[[LocalizationReport], None]] = None,
) -> RankedLocalization:
    """Run BugAssist on several failing tests and rank reported lines.

    ``failing_tests`` yields (test input, specification) pairs — the
    specification is per-test because the Siemens benchmarks use the golden
    output of each individual test as its correctness condition.
    ``localizer`` is anything with the ``localize_test`` surface: a
    :class:`~repro.core.localizer.BugAssistLocalizer` or a
    :class:`~repro.core.session.LocalizationSession`.
    """
    name = program_name or _default_program_name(localizer)

    def reports() -> Iterable[LocalizationReport]:
        for index, (inputs, spec) in enumerate(failing_tests):
            if max_runs is not None and index >= max_runs:
                break
            yield localizer.localize_test(
                inputs, spec, entry=entry, program_name=program_name
            )

    return merge_reports(name, reports(), on_run=on_run)
