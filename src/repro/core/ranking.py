"""Multi-trace ranking of bug locations (paper Section 4.3).

BugAssist becomes more precise when run with several failing tests: each run
reports a set of candidate lines, and ranking the lines by how frequently
they are reported narrows the search to the true fault.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.core.localizer import BugAssistLocalizer
from repro.core.report import LocalizationReport, RankedLocalization
from repro.spec import Specification

TestCase = Sequence[int] | Mapping[str, int]


def rank_locations(
    localizer: BugAssistLocalizer,
    failing_tests: Iterable[tuple[TestCase, Specification]],
    entry: str = "main",
    program_name: Optional[str] = None,
    max_runs: Optional[int] = None,
    on_run: Optional[Callable[[LocalizationReport], None]] = None,
) -> RankedLocalization:
    """Run BugAssist on several failing tests and rank reported lines.

    ``failing_tests`` yields (test input, specification) pairs — the
    specification is per-test because the Siemens benchmarks use the golden
    output of each individual test as its correctness condition.
    """
    ranked = RankedLocalization(program_name=program_name or localizer.program.name)
    for index, (inputs, spec) in enumerate(failing_tests):
        if max_runs is not None and index >= max_runs:
            break
        report = localizer.localize_test(
            inputs, spec, entry=entry, program_name=program_name
        )
        ranked.runs.append(report)
        for line in report.lines:
            ranked.line_counts[line] = ranked.line_counts.get(line, 0) + 1
        if on_run is not None:
            on_run(report)
    return ranked
