"""BugAssist reproduction: error localization using maximum satisfiability.

This package reproduces the system described in "Cause Clue Clauses: Error
Localization using Maximum Satisfiability" (Jose & Majumdar, PLDI 2011).

Layering, bottom-up:

* :mod:`repro.sat` — CDCL SAT solver with assumptions and assumption cores.
* :mod:`repro.maxsat` — partial weighted MaxSAT (core-guided and linear
  search), MSS/MCS (CoMSS) extraction and enumeration.
* :mod:`repro.lang` — the mini-C language: parser, type checker and a
  reference interpreter used for golden outputs.
* :mod:`repro.cfg` — program/CFG model and static slicing.
* :mod:`repro.encoding` — bit-precise (bit-blasted) encoding of statements
  into CNF with per-statement selector variables (clause groups).
* :mod:`repro.bmc` — bounded model checking: whole-program unrolling,
  assertion checking and counterexample/test extraction (CBMC replacement).
* :mod:`repro.concolic` — concolic tracer: runs a test concretely and emits
  the trace formula for the executed path.
* :mod:`repro.reduction` — trace reduction: dynamic slicing, concretization
  and ddmin delta debugging.
* :mod:`repro.core` — the BugAssist algorithms: localization (Algorithm 1),
  ranking, off-by-one/operator repair (Algorithm 2) and loop-iteration
  localization.
* :mod:`repro.siemens` — the Siemens-style benchmark programs (TCAS with 41
  injected-fault versions, tot_info, print_tokens, schedule, schedule2).
"""

from repro.version import __version__

__all__ = ["__version__"]
