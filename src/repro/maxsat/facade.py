"""User-facing entry points for solving partial MaxSAT instances."""

from __future__ import annotations

from repro.maxsat.engine import MaxSatEngine
from repro.maxsat.hitting_set import HittingSetMaxSat
from repro.maxsat.linear_search import LinearSearchMaxSat
from repro.maxsat.msu3 import Msu3MaxSat
from repro.maxsat.result import MaxSatResult
from repro.maxsat.wcnf import WCNF

STRATEGIES = ("hitting-set", "msu3", "linear")


def make_engine(strategy: str = "hitting-set") -> MaxSatEngine:
    """Instantiate a MaxSAT engine by name.

    ``"hitting-set"`` (default) is exact for weighted and unweighted
    instances; ``"msu3"`` and ``"linear"`` handle the unweighted partial
    MaxSAT instances produced by plain localization and exist mainly for
    cross-checking and the ablation benchmarks.
    """
    if strategy == "hitting-set":
        return HittingSetMaxSat()
    if strategy == "msu3":
        return Msu3MaxSat()
    if strategy == "linear":
        return LinearSearchMaxSat()
    raise ValueError(f"unknown MaxSAT strategy {strategy!r}; expected one of {STRATEGIES}")


def solve_maxsat(wcnf: WCNF, strategy: str = "auto") -> MaxSatResult:
    """Solve a partial weighted MaxSAT instance.

    With ``strategy="auto"`` the engine is picked from the instance: the
    core-guided MSU3 engine for unweighted instances (it only pays for the
    soft clauses that actually appear in cores) and the hitting-set engine
    for weighted ones (MSU3 cannot count non-uniform weights, while the
    hitting-set oracle is exact for arbitrary positive integers).
    """
    if strategy == "auto":
        strategy = "hitting-set" if wcnf.is_weighted() else "msu3"
    engine = make_engine(strategy)
    return engine.solve(wcnf)
