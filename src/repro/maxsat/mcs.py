"""Enumeration of minimal correction sets (MCS / CoMSS).

The paper enumerates CoMSSes by repeatedly calling the MaxSAT solver and
adding a hard *blocking clause* over the selectors of each reported set
(Algorithm 1, lines 13-14).  This module provides a generic version of that
loop over arbitrary WCNF instances: correction sets are produced in order of
non-decreasing cost, and each is blocked by requiring at least one of its
soft clauses to be satisfied in later iterations.

The loop is incremental: one engine (and one underlying SAT solver) is
loaded once, and each blocking clause is added to the live solver through
:meth:`~repro.maxsat.engine.MaxSatEngine.block`, so learnt clauses and
solver heuristics carry over between correction sets.
"""

from __future__ import annotations

from typing import Iterator

from repro.maxsat.facade import make_engine
from repro.maxsat.result import MaxSatResult
from repro.maxsat.wcnf import WCNF


def enumerate_mcses(
    wcnf: WCNF,
    max_count: int | None = None,
    strategy: str = "auto",
) -> Iterator[MaxSatResult]:
    """Yield correction sets of ``wcnf`` in order of non-decreasing cost.

    Each yielded :class:`MaxSatResult` has ``falsified`` set to an MCS; the
    instance is then blocked so the same set is not produced twice.  The
    iteration stops when the blocked instance has no further correction set
    (the residual MaxSAT instance falsifies nothing new), or after
    ``max_count`` results.
    """
    engine = make_engine("hitting-set" if strategy == "auto" else strategy)
    engine.load(wcnf)
    produced = 0
    seen: set[frozenset[int]] = set()
    while max_count is None or produced < max_count:
        result = engine.solve_current()
        if not result.satisfiable:
            return
        if not result.falsified:
            # Everything satisfiable: no (further) correction set exists.
            return
        key = frozenset(result.falsified)
        if key in seen:
            # Defensive: a repeated set means blocking failed to cut it off.
            return
        seen.add(key)
        yield result
        produced += 1
        # Keep the blocked clauses soft (unlike Algorithm 1's localization
        # loop): enumeration wants every correction set, in cost order.
        engine.block(result.falsified, retire=False)
