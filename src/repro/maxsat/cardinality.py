"""Cardinality-constraint encodings (totalizer and sequential counter).

Unsatisfiability-based MaxSAT solvers relax clauses in each unsatisfiable
sub-formula and then "use cardinality constraints to constrain the number of
relaxed clauses" (paper Section 3.3).  Both encodings produce auxiliary
output variables; constraining the outputs yields at-most-k / at-least-k
constraints over the input literals.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence


class TotalizerEncoding:
    """Totalizer encoding of ``sum(inputs) compared-to k``.

    After construction, ``outputs[j]`` (0-based) is an auxiliary literal that
    is forced true whenever at least ``j + 1`` of the input literals are
    true.  Asserting ``-outputs[k]`` therefore enforces *at most k* true
    inputs; asserting ``outputs[k - 1]`` enforces *at least k*.

    Clauses are emitted through the ``add_clause`` callback so the encoding
    can target either a :class:`repro.sat.Solver` or a :class:`WCNF`.

    The encoding is *incremental*: :meth:`extend` grows an existing network
    with additional input literals by building a subtree for the new inputs
    and merging it once with the current root, instead of re-encoding the
    whole cardinality network.  An empty initial input list is allowed, so
    core-guided engines can start from nothing and grow per discovered core.
    """

    def __init__(
        self,
        inputs: Sequence[int],
        new_var: Callable[[], int],
        add_clause: Callable[[list[int]], object],
        both_directions: bool = True,
    ) -> None:
        self._new_var = new_var
        self._add_clause = add_clause
        self._both = both_directions
        self.inputs = list(inputs)
        self.outputs = self._build(self.inputs)

    def extend(self, new_inputs: Sequence[int]) -> None:
        """Grow the totalizer with more input literals.

        Builds a subtree over ``new_inputs`` and merges it with the current
        root: one merge of size ``len(outputs) + len(new_inputs)`` instead of
        re-encoding the whole network each core iteration.  Previously
        emitted clauses and output variables stay valid; ``outputs`` is
        replaced by the merged root's outputs.
        """
        added = list(new_inputs)
        if not added:
            return
        subtree = self._build(added)
        if not self.inputs:
            self.outputs = subtree
        else:
            self.outputs = self._merge(self.outputs, subtree)
        self.inputs.extend(added)

    def _build(self, lits: list[int]) -> list[int]:
        if len(lits) <= 1:
            return list(lits)
        mid = len(lits) // 2
        left = self._build(lits[:mid])
        right = self._build(lits[mid:])
        return self._merge(left, right)

    def _merge(self, left: list[int], right: list[int]) -> list[int]:
        total = len(left) + len(right)
        outputs = [self._new_var() for _ in range(total)]
        # sum(left) >= i and sum(right) >= j  implies  sum >= i + j
        for i in range(len(left) + 1):
            for j in range(len(right) + 1):
                if i + j == 0:
                    continue
                clause: list[int] = []
                if i > 0:
                    clause.append(-left[i - 1])
                if j > 0:
                    clause.append(-right[j - 1])
                clause.append(outputs[i + j - 1])
                self._add_clause(clause)
        if self._both:
            # sum(left) <= i and sum(right) <= j  implies  sum <= i + j
            for i in range(len(left) + 1):
                for j in range(len(right) + 1):
                    if i + j == total:
                        continue
                    clause = []
                    if i < len(left):
                        clause.append(left[i])
                    if j < len(right):
                        clause.append(right[j])
                    clause.append(-outputs[i + j])
                    self._add_clause(clause)
        return outputs

    def at_most(self, bound: int) -> list[int]:
        """Assumption literals enforcing ``sum(inputs) <= bound``."""
        if bound >= len(self.outputs):
            return []
        return [-self.outputs[bound]]

    def at_least(self, bound: int) -> list[int]:
        """Assumption literals enforcing ``sum(inputs) >= bound``."""
        if bound <= 0:
            return []
        if bound > len(self.outputs):
            raise ValueError("bound exceeds the number of inputs")
        return [self.outputs[bound - 1]]


def encode_at_most_k(
    inputs: Sequence[int],
    bound: int,
    new_var: Callable[[], int],
    add_clause: Callable[[list[int]], object],
) -> None:
    """Sequential-counter encoding of ``at most bound`` of ``inputs`` are true.

    Sinz's sequential counter: registers ``s[i][j]`` meaning "at least j+1 of
    the first i+1 inputs are true".  Used for one-shot (non-incremental)
    cardinality constraints.
    """
    n = len(inputs)
    if bound < 0:
        raise ValueError("bound must be non-negative")
    if bound >= n:
        return
    if bound == 0:
        for lit in inputs:
            add_clause([-lit])
        return
    registers = [[new_var() for _ in range(bound)] for _ in range(n)]
    add_clause([-inputs[0], registers[0][0]])
    for j in range(1, bound):
        add_clause([-registers[0][j]])
    for i in range(1, n):
        add_clause([-inputs[i], registers[i][0]])
        add_clause([-registers[i - 1][0], registers[i][0]])
        for j in range(1, bound):
            add_clause([-inputs[i], -registers[i - 1][j - 1], registers[i][j]])
            add_clause([-registers[i - 1][j], registers[i][j]])
        add_clause([-inputs[i], -registers[i - 1][bound - 1]])


def encode_exactly_one(
    inputs: Sequence[int],
    add_clause: Callable[[list[int]], object],
) -> None:
    """Pairwise exactly-one constraint (used by the Fu–Malik style relaxation)."""
    add_clause(list(inputs))
    for index, first in enumerate(inputs):
        for second in inputs[index + 1 :]:
            add_clause([-first, -second])
