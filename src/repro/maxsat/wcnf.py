"""Partial weighted CNF container used by every MaxSAT engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Optional


@dataclass(frozen=True)
class SoftClause:
    """A soft clause: literals, a positive integer weight and an optional label.

    Labels are opaque to the solvers; BugAssist uses them to map soft clauses
    back to program statements (selector-variable groups).
    """

    lits: tuple[int, ...]
    weight: int = 1
    label: Optional[Hashable] = None


class WCNF:
    """A partial weighted CNF formula.

    Hard clauses must be satisfied; soft clauses each carry a positive weight
    and the solvers maximise the total weight of satisfied soft clauses
    (equivalently, minimise the total weight of falsified ones).
    """

    def __init__(self) -> None:
        self.hard: list[list[int]] = []
        self.soft: list[SoftClause] = []
        self._num_vars = 0
        #: Optional structural signature of the encoding this instance came
        #: from (the gate-cache signature); engines use it to decide whether
        #: archived cross-test cores may be reused across :meth:`load` calls.
        self.signature: Optional[str] = None

    # ------------------------------------------------------------- building

    @property
    def num_vars(self) -> int:
        """Highest variable index mentioned so far (or allocated)."""
        return self._num_vars

    def new_var(self) -> int:
        """Allocate a fresh variable index not used by any clause yet."""
        self._num_vars += 1
        return self._num_vars

    def add_hard(self, lits: Iterable[int]) -> None:
        """Add a hard clause."""
        clause = self._checked(lits)
        self.hard.append(clause)

    def add_soft(
        self,
        lits: Iterable[int],
        weight: int = 1,
        label: Optional[Hashable] = None,
    ) -> int:
        """Add a soft clause and return its index."""
        if weight <= 0:
            raise ValueError("soft clause weight must be a positive integer")
        clause = self._checked(lits)
        self.soft.append(SoftClause(tuple(clause), weight, label))
        return len(self.soft) - 1

    def add_soft_group(
        self,
        clauses: Iterable[Iterable[int]],
        weight: int = 1,
        label: Optional[Hashable] = None,
        selector: Optional[int] = None,
    ) -> int:
        """Add a *group* of clauses controlled by one selector variable.

        This is the clause-grouping construction of Section 3.4 of the paper:
        every clause ``c`` of the group becomes the hard clause ``(!s or c)``
        and the single soft clause ``[s]`` (weight ``weight``) stands for the
        whole group.  Returns the selector variable.
        """
        materialized = [list(clause) for clause in clauses]
        for clause in materialized:
            for lit in clause:
                if lit == 0:
                    raise ValueError("0 is not a valid literal")
                self._num_vars = max(self._num_vars, abs(lit))
        if selector is None:
            selector = self.new_var()
        else:
            self._num_vars = max(self._num_vars, selector)
        for clause in materialized:
            self.add_hard(clause + [-selector])
        self.add_soft([selector], weight=weight, label=label)
        return selector

    # ------------------------------------------------------------ inspection

    @property
    def total_soft_weight(self) -> int:
        """Sum of all soft clause weights."""
        return sum(soft.weight for soft in self.soft)

    def is_weighted(self) -> bool:
        """True when soft clauses carry non-uniform weights."""
        return len({soft.weight for soft in self.soft}) > 1

    def copy(self) -> "WCNF":
        """Deep-enough copy (clause lists are copied; literals are ints)."""
        duplicate = WCNF()
        duplicate.hard = [list(clause) for clause in self.hard]
        duplicate.soft = list(self.soft)
        duplicate._num_vars = self._num_vars
        duplicate.signature = self.signature
        return duplicate

    # -------------------------------------------------------------- helpers

    def _checked(self, lits: Iterable[int]) -> list[int]:
        clause = list(lits)
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self._num_vars = max(self._num_vars, abs(lit))
        return clause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WCNF(vars={self._num_vars}, hard={len(self.hard)}, "
            f"soft={len(self.soft)}, weight={self.total_soft_weight})"
        )
