"""MSU3-style unsatisfiable-core-guided partial MaxSAT.

This mirrors the algorithm family behind MSUnCORE, the solver used by the
paper: "identifying unsatisfiable sub-formulas and relaxing clauses in each
unsatisfiable sub-formula by associating a relaxation variable with each
such clause; cardinality constraints are used to constrain the number of
relaxed clauses" (Section 3.3).

The cardinality network over the relaxed clauses' violation indicators is
grown *incrementally*: each newly discovered core extends the existing
:class:`~repro.maxsat.cardinality.TotalizerEncoding` with the fresh
indicators (one subtree merge) instead of re-encoding the whole network on
every core iteration.

The engine handles *unweighted* partial MaxSAT (every soft clause weight 1);
for weighted instances use :class:`repro.maxsat.HittingSetMaxSat`.  A
deduplicated binding standing for several identical soft clauses carries
their summed weight and is entered into the totalizer once per unit of
weight, so the bound still counts falsified clauses exactly.
"""

from __future__ import annotations

from repro.maxsat.cardinality import TotalizerEncoding
from repro.maxsat.engine import MaxSatEngine
from repro.maxsat.result import MaxSatResult


class Msu3MaxSat(MaxSatEngine):
    """Core-guided (MSU3) engine for unweighted partial MaxSAT."""

    def solve_current(self) -> MaxSatResult:
        if self._wcnf.is_weighted():
            raise ValueError(
                "MSU3 engine only supports unweighted soft clauses; "
                "use HittingSetMaxSat for weighted instances"
            )
        if not self._hard_clauses_satisfiable():
            return self._unsatisfiable_result()
        solver = self._solver
        active = self._active_bindings()
        relaxed: set[int] = set()
        bound = 0
        max_bound = sum(binding.weight for binding in active)
        totalizer = TotalizerEncoding(
            [],
            new_var=solver.new_var,
            add_clause=solver.add_clause,
            both_directions=False,
        )

        while True:
            assumptions = [
                binding.assumption
                for binding in active
                if binding.position not in relaxed
            ]
            bound_lits = totalizer.at_most(bound)
            assumptions.extend(bound_lits)
            if self._solve(assumptions):
                return self._result_from_model()

            core_lits = solver.unsat_core()
            newly_relaxed = {
                binding.position: binding
                for lit in core_lits
                for binding in (self._assumption_to_binding.get(lit),)
                if binding is not None
                and binding.active
                and binding.position not in relaxed
            }
            involves_bound = any(lit in bound_lits for lit in core_lits)
            if not newly_relaxed and not involves_bound:
                # The core involves neither soft clauses nor the cardinality
                # bound: the hard clauses alone are inconsistent.
                return self._unsatisfiable_result()
            if bound >= max_bound:
                return self._unsatisfiable_result()
            for binding in newly_relaxed.values():
                relaxed.add(binding.position)
                # One indicator per unit of weight keeps the bound counting
                # falsified clauses even for deduplicated duplicates.
                totalizer.extend([-binding.assumption] * binding.weight)
            bound += 1
