"""MSU3-style unsatisfiable-core-guided partial MaxSAT.

This mirrors the algorithm family behind MSUnCORE, the solver used by the
paper: "identifying unsatisfiable sub-formulas and relaxing clauses in each
unsatisfiable sub-formula by associating a relaxation variable with each
such clause; cardinality constraints are used to constrain the number of
relaxed clauses" (Section 3.3).

The engine handles *unweighted* partial MaxSAT (every soft clause weight 1);
for weighted instances use :class:`repro.maxsat.HittingSetMaxSat`.
"""

from __future__ import annotations

from repro.maxsat.cardinality import TotalizerEncoding
from repro.maxsat.engine import MaxSatEngine
from repro.maxsat.result import MaxSatResult
from repro.maxsat.wcnf import WCNF


class Msu3MaxSat(MaxSatEngine):
    """Core-guided (MSU3) engine for unweighted partial MaxSAT."""

    def solve(self, wcnf: WCNF) -> MaxSatResult:
        if wcnf.is_weighted():
            raise ValueError(
                "MSU3 engine only supports unweighted soft clauses; "
                "use HittingSetMaxSat for weighted instances"
            )
        solver, bindings, assumption_to_index = self._setup(wcnf)
        if not self._hard_clauses_satisfiable(solver):
            return self._unsatisfiable_result()

        relaxed: set[int] = set()
        bound = 0
        totalizer: TotalizerEncoding | None = None
        assumption_of = {binding.index: binding.assumption for binding in bindings}

        while True:
            assumptions = [
                assumption_of[binding.index]
                for binding in bindings
                if binding.index not in relaxed
            ]
            if totalizer is not None:
                assumptions.extend(totalizer.at_most(bound))
            if self._solve(solver, assumptions):
                return self._result_from_model(wcnf, solver)

            core_lits = solver.unsat_core()
            newly_relaxed = {
                assumption_to_index[lit]
                for lit in core_lits
                if lit in assumption_to_index and assumption_to_index[lit] not in relaxed
            }
            if not newly_relaxed and not any(
                lit in assumption_to_index for lit in core_lits
            ) and totalizer is None:
                # Core involves neither soft clauses nor the cardinality bound.
                return self._unsatisfiable_result()
            if bound >= len(bindings):
                return self._unsatisfiable_result()
            relaxed |= newly_relaxed
            bound += 1
            if relaxed:
                indicators = [-assumption_of[index] for index in sorted(relaxed)]
                totalizer = TotalizerEncoding(
                    indicators,
                    new_var=solver.new_var,
                    add_clause=solver.add_clause,
                    both_directions=False,
                )
