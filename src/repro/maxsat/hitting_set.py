"""Implicit-hitting-set (MaxHS-style) partial weighted MaxSAT engine.

The engine alternates between two oracles:

1. a SAT oracle solving the hard clauses plus the soft clauses not in the
   current candidate correction set, and
2. an exact minimum-cost hitting-set oracle over the unsatisfiable cores
   collected so far.

When the SAT oracle succeeds, the candidate hitting set is an optimal
correction set (CoMSS) and its cost the MaxSAT optimum.  The approach is
exact for arbitrary positive integer weights, which is what the
loop-iteration localization of Section 5.2 needs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.maxsat.engine import MaxSatEngine
from repro.maxsat.result import MaxSatResult


#: Upper bound on archived cross-layer candidate cores (newest kept).
MAX_STALE_CORES = 64

#: Bounds for the *post-blocking* core archive: cores mined after blocking
#: started, keyed by (encoding signature, retired-binding set) so they are
#: only offered again in an equivalent blocking context.
MAX_POST_KEYS = 32
MAX_POST_CORES_PER_KEY = 16


class HittingSetMaxSat(MaxSatEngine):
    """Exact weighted partial MaxSAT via implicit hitting sets.

    The engine is incremental across :meth:`block` calls: cores collected in
    earlier CoMSS iterations stay valid (blocking only *adds* hard clauses)
    and keep seeding the hitting-set oracle.  Cores touching a retired soft
    clause are strengthened when the blocking clause root-forces that
    clause's assumption (singleton CoMSSes) and dropped otherwise.

    Across layers (the session API's per-test push/pop) cores do *not* stay
    valid — they are conditioned on the retracted per-test units — but in
    practice the failing tests of one faulty program produce almost the
    same initial cores.  Cores mined before the layer's first blocking
    clause are therefore archived as *candidates* and re-validated at the
    start of the next layer with one cheap budgeted SAT probe each; the
    ones that hold seed the oracle, replacing the expensive
    full-assumption core-mining calls of the first enumeration step.

    Cores mined *after* blocking started are conditioned on the blocking
    sequence, so they are archived separately, keyed by the encoding's
    gate-cache signature plus the exact set of retired bindings at mining
    time, and only offered again when a later test reaches the equivalent
    blocking context (reuse only — the probe budget and search strategy are
    unchanged).  The archives survive :meth:`load` when the new instance
    carries the same structural signature.
    """

    def __init__(self, max_iterations: int = 100000) -> None:
        super().__init__()
        self.max_iterations = max_iterations
        #: Cores promoted from a *subsumed* post-blocking shelf (one whose
        #: retired-binding context is a strict subset of the current one) —
        #: hits the exact-match lookup alone would have missed.
        self.post_subsumption_hits = 0
        self.cores: list[frozenset[int]] = []
        self._core_snapshots: list[list[frozenset[int]]] = []
        self._stale_cores: list[frozenset[int]] = []
        self._stale_misses: dict[frozenset[int], int] = {}
        self._stale_post_cores: dict[tuple, list[frozenset[int]]] = {}
        self._post_misses: dict[frozenset[int], int] = {}
        self._probed_post_keys: set[tuple] = set()
        self._archive_signature: Optional[str] = None
        self._probed = False
        self._volatile: set[int] = set()
        self._volatile_order: list[int] = []
        self._slot_cache: Optional[list] = None
        self._last_hitting_set: set[int] = set()

    def _on_load(self) -> None:
        self.cores = []
        self._core_snapshots = []
        # Candidate archives survive a reload of the *same* encoding (equal
        # gate-cache signature); anything else starts from scratch.
        same_encoding = (
            self.signature is not None and self.signature == self._archive_signature
        )
        if not same_encoding:
            self._stale_cores = []
            self._stale_misses = {}
            self._stale_post_cores = {}
            self._post_misses = {}
        self._archive_signature = self.signature
        self._probed_post_keys = set()
        self._probed = False
        self._volatile = set()
        self._volatile_order = []
        self._slot_cache = None
        self._last_hitting_set = set()

    def _slot_order(self) -> list:
        """Bindings in assumption-slot order: stable ones first.

        Positions that ever appeared in a core or were retired (the
        "volatile" slots — exactly the ones the hitting set and the CoMSS
        retirements flip) go last, so a flip invalidates only the short
        tail of the solver's kept assumption trail.  The tail is
        append-only (discovery order, not sorted), so marking a new
        position volatile perturbs the layout at one point instead of
        reshuffling the whole tail.  The set is engine-wide and survives
        layer pops: the next failing test starts with the right layout
        immediately.
        """
        if self._slot_cache is None:
            stable = [b for b in self._bindings if b.position not in self._volatile]
            moving = [self._bindings[position] for position in self._volatile_order]
            self._slot_cache = stable + moving
        return self._slot_cache

    def _mark_volatile(self, positions) -> None:
        for position in positions:
            if position not in self._volatile:
                self._volatile.add(position)
                self._volatile_order.append(position)
                self._slot_cache = None

    def _on_push(self) -> None:
        # Cores found inside a layer are conditioned on the layer's clauses
        # (the per-test units); they become invalid once the layer is popped.
        self._core_snapshots.append(list(self.cores))
        self._probed = False
        self._probed_post_keys = set()
        # The tie-breaking hint is per-layer: a stale hitting set from the
        # previous test would drag ties toward its late-enumeration shape.
        self._last_hitting_set = set()

    def _on_pop(self) -> None:
        self.cores = self._core_snapshots.pop()
        self._probed = False
        self._probed_post_keys = set()

    def _archive(self, core: frozenset[int]) -> None:
        """Remember a discovered core as a candidate for future layers."""
        shelf = self._stale_cores
        if core not in shelf:
            shelf.append(core)
            while len(shelf) > MAX_STALE_CORES:
                self._stale_misses.pop(shelf.pop(0), None)

    def _blocking_context(self) -> frozenset[int]:
        """The set of retired binding positions (the blocking state key)."""
        return frozenset(
            binding.position for binding in self._bindings if not binding.active
        )

    def _archive_post(self, core: frozenset[int]) -> None:
        """Archive a post-blocking core under its exact blocking context."""
        key = (self.signature, self._blocking_context())
        shelf = self._stale_post_cores.setdefault(key, [])
        if core not in shelf:
            shelf.append(core)
            while len(shelf) > MAX_POST_CORES_PER_KEY:
                self._post_misses.pop(shelf.pop(0), None)
        while len(self._stale_post_cores) > MAX_POST_KEYS:
            oldest = next(iter(self._stale_post_cores))
            for old in self._stale_post_cores.pop(oldest):
                self._post_misses.pop(old, None)

    def _validate_stale_cores(self) -> None:
        """Promote archived pre-blocking candidates that hold in this layer."""
        self._probe_candidates(self._stale_cores, self._stale_misses)

    def _validate_post_cores(self) -> None:
        """Probe the post-blocking archive for the current blocking context.

        Besides the exact-context shelf, shelves archived at a blocking
        context that is a *strict subset* of the current one are probed too
        (the ROADMAP's subsumption-aware lookup): those cores were mined
        with fewer retirements, and blocking since then only added hard
        clauses, so they remain plausible — the budgeted probe, which also
        skips any core touching a now-retired binding, keeps the reuse
        sound.  Cores promoted this way are counted in
        :attr:`post_subsumption_hits`.
        """
        context = self._blocking_context()
        key = (self.signature, context)
        if key in self._probed_post_keys:
            return
        self._probed_post_keys.add(key)
        shelf = self._stale_post_cores.get(key)
        if shelf:
            self._probe_candidates(shelf, self._post_misses)
        for other_key in list(self._stale_post_cores):
            other_signature, other_context = other_key
            if other_key == key or other_signature != self.signature:
                continue
            if other_context < context:
                other_shelf = self._stale_post_cores.get(other_key)
                if other_shelf:
                    self.post_subsumption_hits += self._probe_candidates(
                        other_shelf, self._post_misses
                    )

    def _probe_candidates(
        self,
        shelf: list[frozenset[int]],
        misses: dict[frozenset[int], int],
    ) -> int:
        """Promote archived candidate cores that hold under this layer.

        Each candidate is checked with a SAT call assuming only its own
        bindings — a tiny propagation cone compared to the full-assumption
        mining call it replaces.  UNSAT confirms (and possibly shrinks) the
        core; SAT (or an exhausted probe budget) discards it.  Returns the
        number of cores promoted into :attr:`cores`.
        """
        if not shelf:
            return 0
        promoted = 0
        seen = set(self.cores)
        true_slot = self._true_slot
        for core in list(shelf):
            if core in seen:
                continue
            bindings = [self._bindings[position] for position in core]
            if any(not binding.active for binding in bindings):
                continue
            # The probe uses the same fixed assumption layout as the main
            # solves (placeholder in every slot outside the core), so the
            # per-test cone on the kept trail is propagated once, not per
            # probe.  A still-valid core then conflicts within a handful of
            # free decisions; anything needing a real model search is not
            # worth confirming.
            assumptions = [
                binding.assumption if binding.position in core else true_slot
                for binding in self._slot_order()
            ]
            self.sat_calls += 1
            outcome = self._solver.solve_limited(
                assumptions + self._block_assumptions,
                max_decisions=len(core) + 16,
            )
            if outcome is not False:
                # Candidates that keep failing validation are test-specific
                # noise: stop probing them after a couple of misses.
                count = misses.get(core, 0) + 1
                misses[core] = count
                if count >= 2:
                    shelf.remove(core)
                    misses.pop(core, None)
                continue
            misses.pop(core, None)
            refined = frozenset(
                self._assumption_to_binding[lit].position
                for lit in self._solver.unsat_core()
                if lit in self._assumption_to_binding
                and self._assumption_to_binding[lit].active
            )
            if refined and refined not in seen:
                self.cores.append(refined)
                seen.add(refined)
                promoted += 1
        return promoted

    def _on_block(self, retired) -> None:
        # A blocked *singleton* CoMSS adds a unit blocking clause, fixing the
        # retired clause's assumption true at the root.  A core containing
        # such a binding is then *strengthened*, not invalidated: from
        # ``hard and a and rest`` UNSAT and ``hard forces a`` follows
        # ``hard and rest`` UNSAT, so the binding is simply removed from the
        # core.  Retirees that are not root-forced (multi-clause CoMSSes)
        # genuinely invalidate their cores, which are dropped — the SAT
        # oracle re-derives whatever conflict remains.
        self._mark_volatile(binding.position for binding in retired)
        forced = {
            binding.position
            for binding in retired
            if self._assumption_forced(binding)
        }
        free = {binding.position for binding in retired} - forced
        strengthened: list[frozenset[int]] = []
        for core in self.cores:
            if core & free:
                continue
            reduced = core - forced
            if reduced:
                # An empty reduction would mean the hard clauses are already
                # unsatisfiable; the next SAT call reports that directly.
                strengthened.append(reduced)
        self.cores = strengthened

    def solve_current(self) -> MaxSatResult:
        # No upfront hard-clause SAT check: the mining loop subsumes it.  An
        # unsatisfiable hard set surfaces as an UNSAT call whose core
        # involves no soft binding, which returns "unsatisfiable" below —
        # and skipping the check saves the one solve per instance that has
        # to complete a full model with every soft clause disabled.
        if self._layers and not self._probed:
            self._probed = True
            self._validate_stale_cores()
        if self._layers and self._blocks > self._layers[-1].blocks:
            # Mid-enumeration: a previous test may have archived the cores
            # it mined at this exact blocking context — seed from them.
            self._validate_post_cores()
        weights = [binding.weight for binding in self._bindings]
        true_slot = self._true_slot
        for _ in range(self.max_iterations):
            hitting_set = minimum_cost_hitting_set(
                self.cores, weights, prefer=self._last_hitting_set
            )
            self._last_hitting_set = hitting_set
            # Fixed assumption layout: one slot per binding (stable slots
            # first, volatile last), disabled slots (retired or in the
            # hitting set) hold the root-true placeholder so the solver's
            # kept assumption trail stays aligned across solves.
            assumptions = [
                binding.assumption
                if binding.active and binding.position not in hitting_set
                else true_slot
                for binding in self._slot_order()
            ]
            if self._solve(assumptions):
                return self._result_from_model()
            core = frozenset(
                self._assumption_to_binding[lit].position
                for lit in self._solver.unsat_core()
                if lit in self._assumption_to_binding
                and self._assumption_to_binding[lit].active
            )
            if not core:
                # The conflict does not involve any soft clause: the hard
                # clauses together with already-forced literals are
                # inconsistent, so no correction set exists.
                return self._unsatisfiable_result()
            self.cores.append(core)
            self._mark_volatile(core)
            if self._layers:
                if self._blocks == self._layers[-1].blocks:
                    # Candidate for the next layer's opening enumeration.
                    self._archive(core)
                else:
                    # Conditioned on the blocking sequence: archive under
                    # the exact blocking context so an equivalent moment in
                    # a later test can seed from it.
                    self._archive_post(core)
        raise RuntimeError("hitting-set MaxSAT did not converge within the iteration budget")


def minimum_cost_hitting_set(
    cores: Sequence[frozenset[int]],
    weights: Sequence[int],
    prefer: Optional[set[int]] = None,
) -> set[int]:
    """Exact minimum-cost hitting set by branch and bound.

    ``cores`` is a collection of sets of soft-clause indices; the result is a
    set of indices intersecting every core with minimum total weight.  The
    number and size of cores produced by trace formulas is small (they
    correspond to candidate bug locations), so an exact exponential search is
    affordable and keeps the engine optimal.

    ``prefer`` breaks ties between equal-weight elements towards members of
    a previous hitting set: optima are often non-unique, and a stable choice
    keeps the SAT solver's assumption trail (which flips one slot per
    hitting-set member) reusable between engine iterations.
    """
    if not cores:
        return set()
    ordered = sorted(cores, key=len)
    best_cost = [sum(weights[index] for core in ordered for index in core) + 1]
    best_set: list[set[int]] = [set()]
    found = [False]
    prefer = prefer or set()

    def search(core_position: int, chosen: set[int], cost: int) -> None:
        if cost >= best_cost[0] and found[0]:
            return
        while core_position < len(ordered) and ordered[core_position] & chosen:
            core_position += 1
        if core_position == len(ordered):
            if not found[0] or cost < best_cost[0]:
                best_cost[0] = cost
                best_set[0] = set(chosen)
                found[0] = True
            return
        candidates = sorted(
            ordered[core_position],
            key=lambda index: (weights[index], index not in prefer, index),
        )
        for index in candidates:
            chosen.add(index)
            search(core_position + 1, chosen, cost + weights[index])
            chosen.discard(index)

    search(0, set(), 0)
    return best_set[0]
