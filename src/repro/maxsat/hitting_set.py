"""Implicit-hitting-set (MaxHS-style) partial weighted MaxSAT engine.

The engine alternates between two oracles:

1. a SAT oracle solving the hard clauses plus the soft clauses not in the
   current candidate correction set, and
2. an exact minimum-cost hitting-set oracle over the unsatisfiable cores
   collected so far.

When the SAT oracle succeeds, the candidate hitting set is an optimal
correction set (CoMSS) and its cost the MaxSAT optimum.  The approach is
exact for arbitrary positive integer weights, which is what the
loop-iteration localization of Section 5.2 needs.
"""

from __future__ import annotations

from typing import Sequence

from repro.maxsat.engine import MaxSatEngine
from repro.maxsat.result import MaxSatResult


class HittingSetMaxSat(MaxSatEngine):
    """Exact weighted partial MaxSAT via implicit hitting sets.

    The engine is incremental across :meth:`block` calls: cores collected in
    earlier CoMSS iterations stay valid (blocking only *adds* hard clauses)
    and keep seeding the hitting-set oracle.  Cores touching a retired soft
    clause are strengthened when the blocking clause root-forces that
    clause's assumption (singleton CoMSSes) and dropped otherwise.
    """

    def __init__(self, max_iterations: int = 100000) -> None:
        super().__init__()
        self.max_iterations = max_iterations
        self.cores: list[frozenset[int]] = []

    def _on_load(self) -> None:
        self.cores = []

    def _on_block(self, retired) -> None:
        # A blocked *singleton* CoMSS adds a unit blocking clause, fixing the
        # retired clause's assumption true at the root.  A core containing
        # such a binding is then *strengthened*, not invalidated: from
        # ``hard and a and rest`` UNSAT and ``hard forces a`` follows
        # ``hard and rest`` UNSAT, so the binding is simply removed from the
        # core.  Retirees that are not root-forced (multi-clause CoMSSes)
        # genuinely invalidate their cores, which are dropped — the SAT
        # oracle re-derives whatever conflict remains.
        forced = {
            binding.position
            for binding in retired
            if self._solver.root_value(binding.assumption) is True
        }
        free = {binding.position for binding in retired} - forced
        strengthened: list[frozenset[int]] = []
        for core in self.cores:
            if core & free:
                continue
            reduced = core - forced
            if reduced:
                # An empty reduction would mean the hard clauses are already
                # unsatisfiable; the next SAT call reports that directly.
                strengthened.append(reduced)
        self.cores = strengthened

    def solve_current(self) -> MaxSatResult:
        if not self._hard_clauses_satisfiable():
            return self._unsatisfiable_result()
        active = self._active_bindings()
        weights = [binding.weight for binding in self._bindings]
        for _ in range(self.max_iterations):
            hitting_set = minimum_cost_hitting_set(self.cores, weights)
            assumptions = [
                binding.assumption
                for binding in active
                if binding.position not in hitting_set
            ]
            if self._solve(assumptions):
                return self._result_from_model()
            core = frozenset(
                self._assumption_to_binding[lit].position
                for lit in self._solver.unsat_core()
                if lit in self._assumption_to_binding
                and self._assumption_to_binding[lit].active
            )
            if not core:
                # The conflict does not involve any soft clause: the hard
                # clauses together with already-forced literals are
                # inconsistent, so no correction set exists.
                return self._unsatisfiable_result()
            self.cores.append(core)
        raise RuntimeError("hitting-set MaxSAT did not converge within the iteration budget")


def minimum_cost_hitting_set(
    cores: Sequence[frozenset[int]], weights: Sequence[int]
) -> set[int]:
    """Exact minimum-cost hitting set by branch and bound.

    ``cores`` is a collection of sets of soft-clause indices; the result is a
    set of indices intersecting every core with minimum total weight.  The
    number and size of cores produced by trace formulas is small (they
    correspond to candidate bug locations), so an exact exponential search is
    affordable and keeps the engine optimal.
    """
    if not cores:
        return set()
    ordered = sorted(cores, key=len)
    best_cost = [sum(weights[index] for core in ordered for index in core) + 1]
    best_set: list[set[int]] = [set()]
    found = [False]

    def search(core_position: int, chosen: set[int], cost: int) -> None:
        if cost >= best_cost[0] and found[0]:
            return
        while core_position < len(ordered) and ordered[core_position] & chosen:
            core_position += 1
        if core_position == len(ordered):
            if not found[0] or cost < best_cost[0]:
                best_cost[0] = cost
                best_set[0] = set(chosen)
                found[0] = True
            return
        candidates = sorted(ordered[core_position], key=lambda index: weights[index])
        for index in candidates:
            chosen.add(index)
            search(core_position + 1, chosen, cost + weights[index])
            chosen.discard(index)

    search(0, set(), 0)
    return best_set[0]
