"""Implicit-hitting-set (MaxHS-style) partial weighted MaxSAT engine.

The engine alternates between two oracles:

1. a SAT oracle solving the hard clauses plus the soft clauses not in the
   current candidate correction set, and
2. an exact minimum-cost hitting-set oracle over the unsatisfiable cores
   collected so far.

When the SAT oracle succeeds, the candidate hitting set is an optimal
correction set (CoMSS) and its cost the MaxSAT optimum.  The approach is
exact for arbitrary positive integer weights, which is what the
loop-iteration localization of Section 5.2 needs.
"""

from __future__ import annotations

from typing import Sequence

from repro.maxsat.engine import MaxSatEngine
from repro.maxsat.result import MaxSatResult
from repro.maxsat.wcnf import WCNF


class HittingSetMaxSat(MaxSatEngine):
    """Exact weighted partial MaxSAT via implicit hitting sets."""

    def __init__(self, max_iterations: int = 100000) -> None:
        super().__init__()
        self.max_iterations = max_iterations
        self.cores: list[frozenset[int]] = []

    def solve(self, wcnf: WCNF) -> MaxSatResult:
        solver, bindings, assumption_to_index = self._setup(wcnf)
        if not self._hard_clauses_satisfiable(solver):
            return self._unsatisfiable_result()
        weights = [binding.weight for binding in bindings]
        self.cores = []
        for _ in range(self.max_iterations):
            hitting_set = minimum_cost_hitting_set(self.cores, weights)
            assumptions = [
                binding.assumption
                for binding in bindings
                if binding.index not in hitting_set
            ]
            if self._solve(solver, assumptions):
                return self._result_from_model(wcnf, solver)
            core_lits = solver.unsat_core()
            core = frozenset(
                assumption_to_index[lit]
                for lit in core_lits
                if lit in assumption_to_index
            )
            if not core:
                # The conflict does not involve any soft clause: the hard
                # clauses together with already-forced literals are
                # inconsistent, so no correction set exists.
                return self._unsatisfiable_result()
            self.cores.append(core)
        raise RuntimeError("hitting-set MaxSAT did not converge within the iteration budget")


def minimum_cost_hitting_set(
    cores: Sequence[frozenset[int]], weights: Sequence[int]
) -> set[int]:
    """Exact minimum-cost hitting set by branch and bound.

    ``cores`` is a collection of sets of soft-clause indices; the result is a
    set of indices intersecting every core with minimum total weight.  The
    number and size of cores produced by trace formulas is small (they
    correspond to candidate bug locations), so an exact exponential search is
    affordable and keeps the engine optimal.
    """
    if not cores:
        return set()
    ordered = sorted(cores, key=len)
    best_cost = [sum(weights[index] for core in ordered for index in core) + 1]
    best_set: list[set[int]] = [set()]
    found = [False]

    def search(core_position: int, chosen: set[int], cost: int) -> None:
        if cost >= best_cost[0] and found[0]:
            return
        while core_position < len(ordered) and ordered[core_position] & chosen:
            core_position += 1
        if core_position == len(ordered):
            if not found[0] or cost < best_cost[0]:
                best_cost[0] = cost
                best_set[0] = set(chosen)
                found[0] = True
            return
        candidates = sorted(ordered[core_position], key=lambda index: weights[index])
        for index in candidates:
            chosen.add(index)
            search(core_position + 1, chosen, cost + weights[index])
            chosen.discard(index)

    search(0, set(), 0)
    return best_set[0]
