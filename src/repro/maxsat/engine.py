"""Shared machinery for the MaxSAT engines.

Every engine lowers the soft clauses to *assumption literals* on a single
incremental :class:`repro.sat.Solver`:

* a unit soft clause ``[l]`` is assumed directly through ``l``;
* a longer soft clause ``c`` receives a fresh selector ``s`` and the hard
  clause ``c or not s``, and is assumed through ``s``;
* identical soft clauses share one binding (and therefore one assumption),
  so duplicates always get the same violation indicator.

Assuming the literal enforces the soft clause; the literal's negation acts
as the clause's *violation indicator* for cardinality constraints.  Cores
returned by the SAT solver are subsets of the assumed literals and map back
to soft-clause bindings.

Engines are **incremental**: :meth:`MaxSatEngine.load` builds the solver
once, :meth:`MaxSatEngine.solve_current` runs the engine's strategy on the
live solver (reusing its clause database, learnt clauses, variable
activities and saved phases), and :meth:`MaxSatEngine.block` retires a
correction set by adding its blocking clause as a hard clause on the *same*
solver — the CoMSS enumeration of Algorithm 1 never rebuilds the instance.
The one-shot :meth:`MaxSatEngine.solve` remains as ``load`` + ``solve_current``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.maxsat.result import MaxSatResult
from repro.maxsat.wcnf import WCNF
from repro.sat import Solver


@dataclass
class _SoftBinding:
    """Book-keeping tying one distinct soft clause to its assumption literal.

    ``indices`` lists every ``wcnf.soft`` position the binding stands for
    (more than one when the instance contains duplicate soft clauses) and
    ``weight`` is their summed weight.  ``position`` is the binding's index
    in the engine's binding list, which is what cores and hitting sets are
    expressed over.
    """

    position: int
    indices: list[int]
    assumption: int
    weight: int
    active: bool = True


class MaxSatEngine:
    """Base class: persistent instance state, model evaluation, results."""

    def __init__(self) -> None:
        self.sat_calls = 0
        self._wcnf: Optional[WCNF] = None
        self._solver: Optional[Solver] = None
        self._bindings: list[_SoftBinding] = []
        self._assumption_to_binding: dict[int, _SoftBinding] = {}
        self._hard_checked = False
        self._hard_ok = False

    # -- interface -----------------------------------------------------------

    def solve(self, wcnf: WCNF) -> MaxSatResult:
        """One-shot solve: load the instance and run the engine's strategy."""
        self.load(wcnf)
        return self.solve_current()

    def solve_current(self) -> MaxSatResult:  # pragma: no cover - abstract
        """Solve the currently loaded (possibly blocked) instance."""
        raise NotImplementedError

    def load(self, wcnf: WCNF) -> None:
        """Load the instance into a fresh persistent solver and bind softs.

        Identical soft clauses are deduplicated into a single binding so
        both copies share one assumption literal (and hence one consistent
        violation indicator).
        """
        solver = Solver()
        solver.ensure_vars(wcnf.num_vars)
        for clause in wcnf.hard:
            solver.add_clause(clause)
        bindings: list[_SoftBinding] = []
        by_clause: dict[tuple[int, ...], _SoftBinding] = {}
        for index, soft in enumerate(wcnf.soft):
            key = tuple(sorted(soft.lits))
            existing = by_clause.get(key)
            if existing is not None:
                existing.indices.append(index)
                existing.weight += soft.weight
                continue
            lits = list(soft.lits)
            if len(lits) == 1:
                assumption = lits[0]
                solver.ensure_vars(abs(assumption))
            else:
                selector = solver.new_var()
                solver.add_clause(lits + [-selector])
                assumption = selector
            binding = _SoftBinding(len(bindings), [index], assumption, soft.weight)
            by_clause[key] = binding
            bindings.append(binding)
        self._wcnf = wcnf
        self._solver = solver
        self._bindings = bindings
        self._assumption_to_binding = {b.assumption: b for b in bindings}
        self._hard_checked = False
        self._hard_ok = False
        self._on_load()

    def block(self, falsified: Sequence[int], retire: bool = True) -> None:
        """Block a correction set with a hard clause on the live solver.

        The blocking clause ``beta`` (the disjunction of the correction
        set's soft clauses) becomes hard — on the same solver, so learnt
        clauses, activities and phases carry over to the next
        :meth:`solve_current`.  With ``retire=True`` (lines 13-14 of
        Algorithm 1) the blocked soft clauses also leave the soft set, so
        later solves explore different statements; with ``retire=False``
        they stay soft, which enumerates *all* correction sets in order of
        non-decreasing cost.
        """
        if self._solver is None:
            raise RuntimeError("no instance loaded; call load() first")
        if not falsified:
            # An empty blocking clause would make the solver permanently
            # unsatisfiable; an empty correction set means "nothing to block".
            raise ValueError("cannot block an empty correction set")
        blocked = set(falsified)
        beta: list[int] = []
        for index in sorted(blocked):
            beta.extend(self._wcnf.soft[index].lits)
        self._solver.add_clause(beta)
        if not retire:
            return
        retired: list[_SoftBinding] = []
        for binding in self._bindings:
            if binding.active and blocked.intersection(binding.indices):
                binding.active = False
                retired.append(binding)
        self._on_block(retired)

    # -- engine hooks --------------------------------------------------------

    def _on_load(self) -> None:
        """Reset engine-specific state after a new instance is loaded."""

    def _on_block(self, retired: list[_SoftBinding]) -> None:
        """React to soft clauses being retired by :meth:`block`."""

    # -- shared helpers ------------------------------------------------------

    def _active_bindings(self) -> list[_SoftBinding]:
        return [binding for binding in self._bindings if binding.active]

    def _solve(self, assumptions: list[int]) -> bool:
        self.sat_calls += 1
        return self._solver.solve(assumptions)

    def _hard_clauses_satisfiable(self) -> bool:
        """SAT-check the hard clauses alone, once per loaded instance.

        Blocking clauses added later can only make the hard set unsatisfiable
        in ways the engines' core analysis already detects, so the check is
        not repeated after :meth:`block`.
        """
        if not self._hard_checked:
            self._hard_ok = self._solve([])
            self._hard_checked = True
        return self._hard_ok

    def _result_from_model(self) -> MaxSatResult:
        wcnf = self._wcnf
        # The partial model: don't-care variables stay absent so the
        # per-clause completion below can pick the favourable value.
        model = self._solver.get_model()
        falsified: list[int] = []
        for binding in self._bindings:
            if not binding.active:
                continue
            lits = wcnf.soft[binding.indices[0]].lits
            status = evaluate_clause(lits, model)
            if status is True:
                continue
            if status is False:
                falsified.extend(binding.indices)
                continue
            # A don't-care literal: complete the model in the clause's
            # favour instead of over-counting the cost.
            model[abs(status)] = status > 0
        falsified.sort()
        cost = sum(wcnf.soft[index].weight for index in falsified)
        labels = [
            wcnf.soft[index].label
            for index in falsified
            if wcnf.soft[index].label is not None
        ]
        return MaxSatResult(
            satisfiable=True,
            cost=cost,
            model=model,
            falsified=falsified,
            falsified_labels=labels,
            sat_calls=self.sat_calls,
        )

    def _unsatisfiable_result(self) -> MaxSatResult:
        return MaxSatResult(satisfiable=False, sat_calls=self.sat_calls)


def evaluate_clause(
    lits: tuple[int, ...] | list[int], model: dict[int, bool]
) -> bool | int:
    """Three-valued clause evaluation under a possibly partial model.

    Returns ``True`` when some literal is satisfied, ``False`` when every
    literal is falsified, and otherwise one of the *unassigned* literals —
    the clause is then a don't-care that any completion may still satisfy.
    """
    unassigned: int = 0
    for lit in lits:
        value = model.get(abs(lit))
        if value is None:
            unassigned = lit
        elif value == (lit > 0):
            return True
    return unassigned if unassigned else False


def clause_satisfied(
    lits: tuple[int, ...] | list[int], model: dict[int, bool]
) -> bool:
    """Evaluate a clause under a *complete* model.

    For partial models prefer :func:`evaluate_clause`, which reports
    don't-care literals instead of silently treating them as falsified.
    """
    for lit in lits:
        if model.get(abs(lit), False) == (lit > 0):
            return True
    return False
