"""Shared machinery for the MaxSAT engines.

Every engine lowers the soft clauses to *assumption literals* on a single
incremental :class:`repro.sat.Solver`:

* a unit soft clause ``[l]`` is assumed directly through ``l``;
* a longer soft clause ``c`` receives a fresh selector ``s`` and the hard
  clause ``c or not s``, and is assumed through ``s``.

Assuming the literal enforces the soft clause; the literal's negation acts
as the clause's *violation indicator* for cardinality constraints.  Cores
returned by the SAT solver are subsets of the assumed literals and map back
to soft-clause indices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.maxsat.result import MaxSatResult
from repro.maxsat.wcnf import WCNF
from repro.sat import Solver


@dataclass
class _SoftBinding:
    """Book-keeping tying one soft clause to its assumption literal."""

    index: int
    assumption: int
    weight: int


class MaxSatEngine:
    """Base class: instance set-up, model evaluation, result construction."""

    def __init__(self) -> None:
        self.sat_calls = 0

    # -- interface -----------------------------------------------------------

    def solve(self, wcnf: WCNF) -> MaxSatResult:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------

    def _setup(self, wcnf: WCNF) -> tuple[Solver, list[_SoftBinding], dict[int, int]]:
        """Load the instance into a fresh solver and bind soft clauses."""
        solver = Solver()
        solver.ensure_vars(wcnf.num_vars)
        for clause in wcnf.hard:
            solver.add_clause(clause)
        bindings: list[_SoftBinding] = []
        assumption_to_index: dict[int, int] = {}
        for index, soft in enumerate(wcnf.soft):
            lits = list(soft.lits)
            if len(lits) == 1 and lits[0] not in assumption_to_index:
                assumption = lits[0]
                solver.ensure_vars(abs(assumption))
            else:
                selector = solver.new_var()
                solver.add_clause(lits + [-selector])
                assumption = selector
            assumption_to_index[assumption] = index
            bindings.append(_SoftBinding(index, assumption, soft.weight))
        return solver, bindings, assumption_to_index

    def _solve(self, solver: Solver, assumptions: list[int]) -> bool:
        self.sat_calls += 1
        return solver.solve(assumptions)

    def _hard_clauses_satisfiable(self, solver: Solver) -> bool:
        return self._solve(solver, [])

    def _result_from_model(self, wcnf: WCNF, solver: Solver) -> MaxSatResult:
        model = solver.get_model()
        falsified = [
            index
            for index, soft in enumerate(wcnf.soft)
            if not clause_satisfied(soft.lits, model)
        ]
        cost = sum(wcnf.soft[index].weight for index in falsified)
        labels = [
            wcnf.soft[index].label
            for index in falsified
            if wcnf.soft[index].label is not None
        ]
        return MaxSatResult(
            satisfiable=True,
            cost=cost,
            model=model,
            falsified=falsified,
            falsified_labels=labels,
            sat_calls=self.sat_calls,
        )

    def _unsatisfiable_result(self) -> MaxSatResult:
        return MaxSatResult(satisfiable=False, sat_calls=self.sat_calls)


def clause_satisfied(lits: tuple[int, ...] | list[int], model: dict[int, bool]) -> bool:
    """Evaluate a clause under a (possibly partial) model.

    Unassigned variables are treated as false, matching the convention that
    the SAT solver only leaves don't-care variables unassigned.
    """
    for lit in lits:
        value = model.get(abs(lit), False)
        if value == (lit > 0):
            return True
    return False
