"""Shared machinery for the MaxSAT engines.

Every engine lowers the soft clauses to *assumption literals* on a single
incremental :class:`repro.sat.Solver`:

* a unit soft clause ``[l]`` is assumed directly through ``l``;
* a longer soft clause ``c`` receives a fresh selector ``s`` and the hard
  clause ``c or not s``, and is assumed through ``s``;
* identical soft clauses share one binding (and therefore one assumption),
  so duplicates always get the same violation indicator.

Assuming the literal enforces the soft clause; the literal's negation acts
as the clause's *violation indicator* for cardinality constraints.  Cores
returned by the SAT solver are subsets of the assumed literals and map back
to soft-clause bindings.

Engines are **incremental**: :meth:`MaxSatEngine.load` builds the solver
once, :meth:`MaxSatEngine.solve_current` runs the engine's strategy on the
live solver (reusing its clause database, learnt clauses, variable
activities and saved phases), and :meth:`MaxSatEngine.block` retires a
correction set by adding its blocking clause as a hard clause on the *same*
solver — the CoMSS enumeration of Algorithm 1 never rebuilds the instance.
The one-shot :meth:`MaxSatEngine.solve` remains as ``load`` + ``solve_current``.

Engines are additionally **layered**: :meth:`MaxSatEngine.push_layer` opens
a retractable layer on the persistent solver and
:meth:`MaxSatEngine.pop_layer` undoes everything that happened inside it —
hard clauses added through :meth:`MaxSatEngine.add_hard` (per-test inputs
and specifications), blocking clauses, and soft-clause retirements, whose
bindings are re-activated.  This is what lets a
:class:`~repro.core.session.LocalizationSession` load one whole-program
instance and run the CoMSS enumeration of many failing tests against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.maxsat.result import MaxSatResult
from repro.maxsat.wcnf import WCNF
from repro.sat import Solver, SolverStats


@dataclass
class _SoftBinding:
    """Book-keeping tying one distinct soft clause to its assumption literal.

    ``indices`` lists every ``wcnf.soft`` position the binding stands for
    (more than one when the instance contains duplicate soft clauses) and
    ``weight`` is their summed weight.  ``position`` is the binding's index
    in the engine's binding list, which is what cores and hitting sets are
    expressed over.
    """

    position: int
    indices: list[int]
    assumption: int
    weight: int
    active: bool = True


@dataclass
class _EngineLayer:
    """Per-layer undo record: retired bindings, forced set, blocking state."""

    retired: list[_SoftBinding] = field(default_factory=list)
    forced: set[int] = field(default_factory=set)
    blocks: int = 0
    block_selector: Optional[int] = None
    #: Solver-statistics snapshot taken when the layer opened, so per-test
    #: benchmark numbers report this layer's work only (not the session's
    #: cumulative counters).
    stats_mark: Optional["SolverStats"] = None
    sat_calls_mark: int = 0


class MaxSatEngine:
    """Base class: persistent instance state, model evaluation, results."""

    def __init__(self) -> None:
        self.sat_calls = 0
        #: Structural signature of the loaded instance's encoding (if any).
        self.signature: Optional[str] = None
        self._wcnf: Optional[WCNF] = None
        self._solver: Optional[Solver] = None
        self._bindings: list[_SoftBinding] = []
        self._assumption_to_binding: dict[int, _SoftBinding] = {}
        self._hard_checked = False
        self._hard_ok = False
        self._layers: list[_EngineLayer] = []
        self._layer_forced: set[int] = set()
        self._blocks = 0
        self._block_selector: Optional[int] = None
        self._true_slot = 0

    # -- interface -----------------------------------------------------------

    def solve(self, wcnf: WCNF) -> MaxSatResult:
        """One-shot solve: load the instance and run the engine's strategy."""
        self.load(wcnf)
        return self.solve_current()

    def solve_current(self) -> MaxSatResult:  # pragma: no cover - abstract
        """Solve the currently loaded (possibly blocked) instance."""
        raise NotImplementedError

    def load(self, wcnf: WCNF) -> None:
        """Load the instance into a fresh persistent solver and bind softs.

        Identical soft clauses are deduplicated into a single binding so
        both copies share one assumption literal (and hence one consistent
        violation indicator).
        """
        solver = Solver()
        solver.ensure_vars(wcnf.num_vars)
        for clause in wcnf.hard:
            solver.add_clause(clause)
        bindings: list[_SoftBinding] = []
        by_clause: dict[tuple[int, ...], _SoftBinding] = {}
        for index, soft in enumerate(wcnf.soft):
            key = tuple(sorted(soft.lits))
            existing = by_clause.get(key)
            if existing is not None:
                existing.indices.append(index)
                existing.weight += soft.weight
                continue
            lits = list(soft.lits)
            if len(lits) == 1:
                assumption = lits[0]
                solver.ensure_vars(abs(assumption))
            else:
                selector = solver.new_var()
                solver.add_clause(lits + [-selector])
                assumption = selector
            binding = _SoftBinding(len(bindings), [index], assumption, soft.weight)
            by_clause[key] = binding
            bindings.append(binding)
        self._wcnf = wcnf
        self._solver = solver
        self._bindings = bindings
        self.signature = getattr(wcnf, "signature", None)
        self._assumption_to_binding = {b.assumption: b for b in bindings}
        self._hard_checked = False
        self._hard_ok = False
        self._layers = []
        self._layer_forced = set()
        self._blocks = 0
        self._block_selector = None
        # A root-true literal used as a placeholder assumption: engines keep
        # their assumption lists at a fixed layout (one slot per binding) and
        # put this literal in disabled slots, so the solver's kept trail
        # stays aligned across solves instead of shifting at every retired
        # or excluded binding.
        self._true_slot = solver.new_var()
        solver.add_clause([self._true_slot])
        self._on_load()

    # -- layers --------------------------------------------------------------

    @property
    def num_layers(self) -> int:
        """Number of retractable layers currently open."""
        return len(self._layers)

    def push_layer(self) -> None:
        """Open a retractable layer on the loaded instance.

        Everything that happens until the matching :meth:`pop_layer` —
        clauses added via :meth:`add_hard`, blocking clauses and soft
        retirements from :meth:`block`, engine-internal auxiliary clauses —
        is undone by the pop, while learnt clauses, variable activities and
        saved phases of the underlying solver carry over.
        """
        if self._solver is None:
            raise RuntimeError("no instance loaded; call load() first")
        self._solver.push()
        self._layers.append(
            _EngineLayer(
                forced=set(self._layer_forced),
                blocks=self._blocks,
                block_selector=self._block_selector,
                stats_mark=self._solver.stats.snapshot(),
                sat_calls_mark=self.sat_calls,
            )
        )
        self._hard_checked = False
        self._on_push()

    def pop_layer(self) -> None:
        """Retract the most recent layer: clauses out, retired softs back in."""
        if not self._layers:
            raise RuntimeError("no layer to pop")
        layer = self._layers.pop()
        self._solver.pop()
        for binding in layer.retired:
            binding.active = True
        self._layer_forced = layer.forced
        self._blocks = layer.blocks
        self._block_selector = layer.block_selector
        self._hard_checked = False
        self._on_pop()

    def add_hard(self, clause: Iterable[int]) -> None:
        """Add a hard clause to the live solver (layered while a layer is open).

        Used by the session API to assert the per-test input and
        specification units on top of the shared program encoding.
        """
        if self._solver is None:
            raise RuntimeError("no instance loaded; call load() first")
        lits = list(clause)
        self._solver.add_clause(lits)
        if len(lits) == 1:
            # A unit hard clause forces its literal for as long as the
            # current layers live; record it so core bookkeeping
            # (:meth:`_assumption_forced`) sees through the layer selector.
            self._layer_forced.add(lits[0])

    def set_phases(self, phases: Mapping[int, bool]) -> None:
        """Seed solver phases (warm start from a concrete failing trace)."""
        if self._solver is None:
            raise RuntimeError("no instance loaded; call load() first")
        self._solver.set_phases(phases)

    # -- statistics ----------------------------------------------------------

    @property
    def solver_stats(self) -> SolverStats:
        """Cumulative statistics of the engine's persistent solver."""
        if self._solver is None:
            return SolverStats()
        return self._solver.stats

    def layer_stats(self) -> SolverStats:
        """Solver-statistics delta accumulated inside the innermost layer.

        On a long-lived session solver the cumulative counters mix every
        test localized so far; this reports only the work done since the
        innermost :meth:`push_layer`, so per-test benchmark numbers are not
        polluted by earlier tests.  Outside any layer it returns the
        cumulative statistics.
        """
        if self._solver is None:
            return SolverStats()
        if not self._layers or self._layers[-1].stats_mark is None:
            return self._solver.stats.snapshot()
        return self._solver.stats.since(self._layers[-1].stats_mark)

    def layer_sat_calls(self) -> int:
        """SAT calls issued inside the innermost layer (all calls if none)."""
        if not self._layers:
            return self.sat_calls
        return self.sat_calls - self._layers[-1].sat_calls_mark

    def layer_profile(self) -> dict[str, int]:
        """Per-request solver-effort profile of the innermost layer.

        A flat, JSON-friendly view of :meth:`layer_stats` plus the layer's
        SAT-call count — what a serving layer attaches to each localization
        response so clients see the cost of *their* request, not the
        cumulative counters of the warm session answering it.
        """
        stats = self.layer_stats()
        return {
            "sat_calls": self.layer_sat_calls(),
            "propagations": stats.propagations,
            "conflicts": stats.conflicts,
            "decisions": stats.decisions,
            "restarts": stats.restarts,
            "learnt_clauses": stats.learnt_clauses,
        }

    def block(self, falsified: Sequence[int], retire: bool = True) -> None:
        """Block a correction set with a hard clause on the live solver.

        The blocking clause ``beta`` (the disjunction of the correction
        set's soft clauses) becomes hard — on the same solver, so learnt
        clauses, activities and phases carry over to the next
        :meth:`solve_current`.  With ``retire=True`` (lines 13-14 of
        Algorithm 1) the blocked soft clauses also leave the soft set, so
        later solves explore different statements; with ``retire=False``
        they stay soft, which enumerates *all* correction sets in order of
        non-decreasing cost.
        """
        if self._solver is None:
            raise RuntimeError("no instance loaded; call load() first")
        if not falsified:
            # An empty blocking clause would make the solver permanently
            # unsatisfiable; an empty correction set means "nothing to block".
            raise ValueError("cannot block an empty correction set")
        blocked = set(falsified)
        beta: list[int] = []
        beta_seen: set[int] = set()
        for index in sorted(blocked):
            for lit in self._wcnf.soft[index].lits:
                # Deduplicate so a binding standing for several identical
                # unit softs still yields a unit beta (singleton tracking).
                if lit not in beta_seen:
                    beta_seen.add(lit)
                    beta.append(lit)
        # The blocking clause is enforced through an always-assumed selector
        # rather than added verbatim: ``beta or -selector`` has a non-false
        # literal under any kept assumption trail, so blocking never forces
        # the solver back to level 0 (a unit ``beta`` would).  One selector
        # is shared by every blocking clause of the current layer — blocks
        # are only ever retracted together, and a single reusable selector
        # keeps the assumption layout constant across the CoMSS loop.
        if self._block_selector is None:
            self._block_selector = self._solver.new_var()
        self._solver.add_clause(beta + [-self._block_selector])
        self._blocks += 1
        if len(beta) == 1:
            # A singleton blocking clause (CoMSS of one unit soft) forces the
            # retired clause's assumption for as long as the selector is
            # assumed — which is always, within the current layers.
            self._layer_forced.add(beta[0])
        if not retire:
            return
        retired: list[_SoftBinding] = []
        for binding in self._bindings:
            if binding.active and blocked.intersection(binding.indices):
                binding.active = False
                retired.append(binding)
        if self._layers:
            self._layers[-1].retired.extend(retired)
        self._on_block(retired)

    # -- engine hooks --------------------------------------------------------

    def _on_load(self) -> None:
        """Reset engine-specific state after a new instance is loaded."""

    def _on_block(self, retired: list[_SoftBinding]) -> None:
        """React to soft clauses being retired by :meth:`block`."""

    def _on_push(self) -> None:
        """Snapshot engine-specific state before a new layer starts."""

    def _on_pop(self) -> None:
        """Restore engine-specific state after a layer is retracted."""

    # -- shared helpers ------------------------------------------------------

    def _active_bindings(self) -> list[_SoftBinding]:
        return [binding for binding in self._bindings if binding.active]

    def _assumption_forced(self, binding: _SoftBinding) -> bool:
        """Is the binding's assumption literal forced by the hard clauses?

        "Forced" means either fixed at the solver's root level or implied by
        a unit clause living in one of the currently open layers (where the
        layer selector hides it from :meth:`Solver.root_value`).
        """
        return (
            self._solver.root_value(binding.assumption) is True
            or binding.assumption in self._layer_forced
        )

    @property
    def _block_assumptions(self) -> list[int]:
        """The always-on assumption enforcing the current blocking clauses."""
        if self._block_selector is None:
            return []
        return [self._block_selector]

    def _solve(self, assumptions: list[int]) -> bool:
        self.sat_calls += 1
        # The blocking selector goes after the caller's assumptions: the
        # binding prefix is the expensive part of the trail and stays
        # reusable.
        return self._solver.solve(assumptions + self._block_assumptions)

    def _hard_clauses_satisfiable(self) -> bool:
        """SAT-check the hard clauses alone, once per loaded instance.

        Blocking clauses added later can only make the hard set unsatisfiable
        in ways the engines' core analysis already detects, so the check is
        not repeated after :meth:`block`.
        """
        if not self._hard_checked:
            self._hard_ok = self._solve([])
            self._hard_checked = True
        return self._hard_ok

    def _result_from_model(self) -> MaxSatResult:
        wcnf = self._wcnf
        # The partial model: don't-care variables stay absent so the
        # per-clause completion below can pick the favourable value.
        model = self._solver.get_model()
        falsified: list[int] = []
        for binding in self._bindings:
            if not binding.active:
                continue
            lits = wcnf.soft[binding.indices[0]].lits
            status = evaluate_clause(lits, model)
            if status is True:
                continue
            if status is False:
                falsified.extend(binding.indices)
                continue
            # A don't-care literal: complete the model in the clause's
            # favour instead of over-counting the cost.
            model[abs(status)] = status > 0
        falsified.sort()
        cost = sum(wcnf.soft[index].weight for index in falsified)
        labels = [
            wcnf.soft[index].label
            for index in falsified
            if wcnf.soft[index].label is not None
        ]
        return MaxSatResult(
            satisfiable=True,
            cost=cost,
            model=model,
            falsified=falsified,
            falsified_labels=labels,
            sat_calls=self.sat_calls,
        )

    def _unsatisfiable_result(self) -> MaxSatResult:
        return MaxSatResult(satisfiable=False, sat_calls=self.sat_calls)


def evaluate_clause(
    lits: tuple[int, ...] | list[int], model: dict[int, bool]
) -> bool | int:
    """Three-valued clause evaluation under a possibly partial model.

    Returns ``True`` when some literal is satisfied, ``False`` when every
    literal is falsified, and otherwise one of the *unassigned* literals —
    the clause is then a don't-care that any completion may still satisfy.
    """
    unassigned: int = 0
    for lit in lits:
        value = model.get(abs(lit))
        if value is None:
            unassigned = lit
        elif value == (lit > 0):
            return True
    return unassigned if unassigned else False


def clause_satisfied(
    lits: tuple[int, ...] | list[int], model: dict[int, bool]
) -> bool:
    """Evaluate a clause under a *complete* model.

    For partial models prefer :func:`evaluate_clause`, which reports
    don't-care literals instead of silently treating them as falsified.
    """
    for lit in lits:
        if model.get(abs(lit), False) == (lit > 0):
            return True
    return False
