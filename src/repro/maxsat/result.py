"""Result record shared by the MaxSAT engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional


@dataclass
class MaxSatResult:
    """Outcome of a partial MaxSAT solve.

    Attributes
    ----------
    satisfiable:
        ``False`` when the *hard* clauses alone are unsatisfiable (no
        correction set exists); every other field is then meaningless.
    cost:
        Total weight of falsified soft clauses in the optimal assignment.
    model:
        A ``{var: bool}`` assignment achieving ``cost``.
    falsified:
        Indices (into ``wcnf.soft``) of the soft clauses falsified by
        ``model`` — the CoMSS / minimum correction set.
    falsified_labels:
        Labels of those soft clauses (with unlabelled clauses omitted).
    sat_calls:
        Number of calls made to the underlying SAT solver.
    """

    satisfiable: bool
    cost: int = 0
    model: Optional[dict[int, bool]] = None
    falsified: list[int] = field(default_factory=list)
    falsified_labels: list[Hashable] = field(default_factory=list)
    sat_calls: int = 0

    @property
    def comss(self) -> list[int]:
        """Alias matching the paper's terminology (CoMSS)."""
        return self.falsified
