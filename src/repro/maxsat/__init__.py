"""Partial weighted MaxSAT substrate.

The paper feeds the extended trace formula to a partial MAX-SAT solver
(MSUnCORE) and uses the *complement of a maximum satisfiable subset*
(CoMSS, also called a minimum correction set) as the set of candidate bug
locations.  This package provides that functionality on top of the CDCL
solver in :mod:`repro.sat`:

* :class:`WCNF` — a partial weighted CNF container (hard clauses plus
  weighted soft clauses, optionally labelled so results map back to program
  statements).
* Three solving engines, selectable through :func:`solve_maxsat`:

  - ``"hitting-set"`` (:class:`HittingSetMaxSat`) — an implicit-hitting-set
    (MaxHS-style) engine; exact for weighted and unweighted instances and
    the default used by BugAssist.
  - ``"msu3"`` (:class:`Msu3MaxSat`) — unsatisfiable-core-guided search in
    the style of MSUnCORE/MSU3 (unweighted partial MaxSAT).
  - ``"linear"`` (:class:`LinearSearchMaxSat`) — SAT/UNSAT linear search
    over the cost bound using a totalizer cardinality encoding.

* :func:`enumerate_mcses` — enumeration of minimal correction sets in order
  of increasing cost, the building block behind the localization loop.
"""

from repro.maxsat.wcnf import WCNF, SoftClause
from repro.maxsat.result import MaxSatResult
from repro.maxsat.engine import MaxSatEngine
from repro.maxsat.hitting_set import HittingSetMaxSat
from repro.maxsat.msu3 import Msu3MaxSat
from repro.maxsat.linear_search import LinearSearchMaxSat
from repro.maxsat.facade import solve_maxsat, make_engine
from repro.maxsat.mcs import enumerate_mcses

__all__ = [
    "WCNF",
    "SoftClause",
    "MaxSatResult",
    "MaxSatEngine",
    "HittingSetMaxSat",
    "Msu3MaxSat",
    "LinearSearchMaxSat",
    "solve_maxsat",
    "make_engine",
    "enumerate_mcses",
]
