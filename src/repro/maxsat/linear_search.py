"""Linear UNSAT-SAT search for unweighted partial MaxSAT.

All soft clauses are relaxed up front and a totalizer over their violation
indicators bounds how many may be falsified.  The bound is increased from 0
until the instance becomes satisfiable — the first satisfiable bound is the
optimum.  This is the simplest complete strategy and serves both as a
cross-check for the other engines and as the baseline in the ablation
benchmarks.
"""

from __future__ import annotations

from repro.maxsat.cardinality import TotalizerEncoding
from repro.maxsat.engine import MaxSatEngine
from repro.maxsat.result import MaxSatResult
from repro.maxsat.wcnf import WCNF


class LinearSearchMaxSat(MaxSatEngine):
    """UNSAT-to-SAT linear search engine for unweighted partial MaxSAT."""

    def solve(self, wcnf: WCNF) -> MaxSatResult:
        if wcnf.is_weighted():
            raise ValueError(
                "linear-search engine only supports unweighted soft clauses; "
                "use HittingSetMaxSat for weighted instances"
            )
        solver, bindings, _ = self._setup(wcnf)
        if not self._hard_clauses_satisfiable(solver):
            return self._unsatisfiable_result()
        if not bindings:
            return self._result_from_model(wcnf, solver)
        indicators = [-binding.assumption for binding in bindings]
        totalizer = TotalizerEncoding(
            indicators,
            new_var=solver.new_var,
            add_clause=solver.add_clause,
            both_directions=False,
        )
        for bound in range(len(bindings) + 1):
            if self._solve(solver, totalizer.at_most(bound)):
                return self._result_from_model(wcnf, solver)
        return self._unsatisfiable_result()
