"""Linear UNSAT-SAT search for unweighted partial MaxSAT.

All soft clauses are relaxed up front and a totalizer over their violation
indicators bounds how many may be falsified.  The bound is increased from 0
until the instance becomes satisfiable — the first satisfiable bound is the
optimum.  This is the simplest complete strategy and serves both as a
cross-check for the other engines and as the baseline in the ablation
benchmarks.  Unlike the core-guided engines it re-encodes its totalizer on
every :meth:`solve_current` (the set of still-active soft clauses changes
after each :meth:`~repro.maxsat.engine.MaxSatEngine.block`), which is part
of what the ablation measures; the underlying solver and its learnt clauses
are still reused.
"""

from __future__ import annotations

from repro.maxsat.cardinality import TotalizerEncoding
from repro.maxsat.engine import MaxSatEngine
from repro.maxsat.result import MaxSatResult


class LinearSearchMaxSat(MaxSatEngine):
    """UNSAT-to-SAT linear search engine for unweighted partial MaxSAT."""

    def solve_current(self) -> MaxSatResult:
        if self._wcnf.is_weighted():
            raise ValueError(
                "linear-search engine only supports unweighted soft clauses; "
                "use HittingSetMaxSat for weighted instances"
            )
        if not self._hard_clauses_satisfiable():
            return self._unsatisfiable_result()
        active = self._active_bindings()
        if not active:
            if not self._solve([]):
                return self._unsatisfiable_result()
            return self._result_from_model()
        indicators: list[int] = []
        for binding in active:
            # One indicator per unit of weight: a deduplicated binding for n
            # identical soft clauses counts n towards the bound.
            indicators.extend([-binding.assumption] * binding.weight)
        totalizer = TotalizerEncoding(
            indicators,
            new_var=self._solver.new_var,
            add_clause=self._solver.add_clause,
            both_directions=False,
        )
        for bound in range(len(indicators) + 1):
            if self._solve(totalizer.at_most(bound)):
                return self._result_from_model()
        return self._unsatisfiable_result()
