"""Fault catalogue for the TCAS benchmark (the 41 faulty versions).

The Siemens authors "created 41 versions of the program by injecting one or
more faults ... as realistic as possible" (paper Section 6.1).  The exact
mutations of the original suite are not part of the paper; this catalogue
re-creates one faulty version per Table 1 row with the *same error type*
(Table 2) and the same number of injected errors, so the localization
problem BugAssist is evaluated on has the same character.  Version names
follow the paper (versions v33 and v38 do not appear in Table 1 and are
omitted here as well).

Each fault is a set of single-line patches against the canonical TCAS source
in :mod:`repro.siemens.tcas`; the patched line numbers are the ground-truth
fault locations used for the Detect# metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ErrorType(str, Enum):
    """The error taxonomy of Table 2."""

    OPERATOR = "op"          # wrong operator usage, e.g. <= instead of <
    CODE = "code"            # logical coding bug
    ASSIGN = "assign"        # wrong assignment expression
    ADDCODE = "addcode"      # error due to extra code fragments
    CONST = "const"          # wrong constant value supplied (off-by-one etc.)
    INIT = "init"            # wrong value initialization of a variable
    INDEX = "index"          # use of wrong array index
    BRANCH = "branch"        # negated branching condition

    def explanation(self) -> str:
        """Human-readable explanation (the right-hand column of Table 2)."""
        return {
            ErrorType.OPERATOR: "Wrong operator usage, e.g. <= instead of <",
            ErrorType.CODE: "Logical coding bug",
            ErrorType.ASSIGN: "Wrong assignment expression",
            ErrorType.ADDCODE: "Error due to extra code fragments",
            ErrorType.CONST: "Wrong constant value supplied, e.g. off-by-one error",
            ErrorType.INIT: "Wrong value initialization of a variable",
            ErrorType.INDEX: "Use of wrong array index",
            ErrorType.BRANCH: "Error in branching due to negation of the condition",
        }[self]


@dataclass(frozen=True)
class FaultVersion:
    """One faulty program version: name, error type, and line patches."""

    name: str
    error_type: ErrorType
    patches: tuple[tuple[int, str], ...]
    description: str = ""

    @property
    def errors(self) -> int:
        """Number of injected errors (the Error# column of Table 1)."""
        return len(self.patches)

    @property
    def fault_lines(self) -> tuple[int, ...]:
        """Ground-truth fault locations (patched source lines)."""
        return tuple(line for line, _ in self.patches)


def _fault(name, error_type, patches, description=""):
    return FaultVersion(
        name=name,
        error_type=error_type,
        patches=tuple(patches),
        description=description,
    )


TCAS_FAULTS: tuple[FaultVersion, ...] = (
    _fault("v1", ErrorType.OPERATOR, [
        (41, "        result = !(Own_Below_Threat()) || (!(Down_Separation > ALIM()));"),
    ], ">= replaced by > in the non-crossing climb separation check"),
    _fault("v2", ErrorType.CONST, [
        (28, "    return (Climb_Inhibit ? Up_Separation + 300 : Up_Separation);"),
    ], "inhibit-biased climb adds 300 instead of NOZCROSS (Figure 2)"),
    _fault("v3", ErrorType.OPERATOR, [
        (39, "    upward_preferred = Inhibit_Biased_Climb() < Down_Separation;"),
    ], "> replaced by < in the upward-preferred decision of climb"),
    _fault("v4", ErrorType.OPERATOR, [
        (65, "    enabled = High_Confidence && (Own_Tracked_Alt_Rate <= OLEV) && (Cur_Vertical_Sep >= MAXALTDIFF);"),
    ], "> replaced by >= in the enabling condition"),
    _fault("v5", ErrorType.ASSIGN, [
        (39, "    upward_preferred = Inhibit_Biased_Climb() > Up_Separation;"),
    ], "wrong operand in the upward-preferred assignment"),
    _fault("v6", ErrorType.OPERATOR, [
        (54, "        result = !(Own_Above_Threat()) || (Up_Separation > ALIM());"),
    ], ">= replaced by > in the non-crossing descend separation check"),
    _fault("v7", ErrorType.CONST, [
        (22, "    Positive_RA_Alt_Thresh[3] = 700;"),
    ], "wrong threshold constant for altitude layer 3"),
    _fault("v8", ErrorType.CONST, [
        (19, "    Positive_RA_Alt_Thresh[0] = 440;"),
    ], "wrong threshold constant for altitude layer 0"),
    _fault("v9", ErrorType.OPERATOR, [
        (54, "        result = !(Own_Above_Threat()) && (Up_Separation >= ALIM());"),
    ], "|| replaced by && in the descend else-branch"),
    _fault("v10", ErrorType.OPERATOR, [
        (41, "        result = !(Own_Below_Threat()) || (!(Down_Separation > ALIM()));"),
        (52, "        result = Own_Below_Threat() && (Cur_Vertical_Sep > MINSEP) && (Down_Separation >= ALIM());"),
    ], "two comparison operators weakened"),
    _fault("v11", ErrorType.OPERATOR, [
        (39, "    upward_preferred = Inhibit_Biased_Climb() < Down_Separation;"),
        (50, "    upward_preferred = Inhibit_Biased_Climb() < Down_Separation;"),
    ], "upward-preferred decision inverted in both predicates"),
    _fault("v12", ErrorType.OPERATOR, [
        (70, "        need_upward_RA = Non_Crossing_Biased_Climb() || Own_Below_Threat();"),
    ], "&& replaced by || when combining the climb advisory"),
    _fault("v13", ErrorType.CONST, [
        (66, "    tcas_equipped = Other_Capability == 2;"),
    ], "wrong constant in the TCAS-equipped test"),
    _fault("v14", ErrorType.CONST, [
        (67, "    intent_not_known = Two_of_Three_Reports_Valid && (Other_RAC == 1);"),
    ], "wrong constant in the intent-not-known test"),
    _fault("v15", ErrorType.CONST, [
        (19, "    Positive_RA_Alt_Thresh[0] = 401;"),
        (20, "    Positive_RA_Alt_Thresh[1] = 501;"),
        (21, "    Positive_RA_Alt_Thresh[2] = 639;"),
    ], "three threshold constants off by one"),
    _fault("v16", ErrorType.INIT, [
        (1, "int OLEV = 700;"),
    ], "wrong initial value of OLEV"),
    _fault("v17", ErrorType.INIT, [
        (2, "int MAXALTDIFF = 500;"),
    ], "wrong initial value of MAXALTDIFF"),
    _fault("v18", ErrorType.INIT, [
        (2, "int MAXALTDIFF = 601;"),
    ], "wrong initial value of MAXALTDIFF (boundary shifted by one)"),
    _fault("v19", ErrorType.INIT, [
        (4, "int NOZCROSS = 50;"),
    ], "wrong initial value of NOZCROSS"),
    _fault("v20", ErrorType.OPERATOR, [
        (31, "    return Own_Tracked_Alt <= Other_Tracked_Alt;"),
    ], "< replaced by <= in Own_Below_Threat"),
    _fault("v21", ErrorType.OPERATOR, [
        (34, "    return Other_Tracked_Alt <= Own_Tracked_Alt;"),
    ], "< replaced by <= in Own_Above_Threat"),
    _fault("v22", ErrorType.CODE, [
        (41, "        result = (Own_Below_Threat()) || (!(Down_Separation >= ALIM()));"),
    ], "missing negation of Own_Below_Threat in the climb predicate"),
    _fault("v23", ErrorType.CODE, [
        (52, "        result = (Cur_Vertical_Sep >= MINSEP) && (Down_Separation >= ALIM());"),
    ], "dropped Own_Below_Threat conjunct in the descend predicate"),
    _fault("v24", ErrorType.OPERATOR, [
        (67, "    intent_not_known = Two_of_Three_Reports_Valid && (Other_RAC != 0);"),
    ], "== replaced by != in the intent-not-known test"),
    _fault("v25", ErrorType.CODE, [
        (54, "        result = !(Own_Above_Threat());"),
    ], "dropped separation disjunct in the descend else-branch"),
    _fault("v26", ErrorType.ADDCODE, [
        (89, "    Cur_Vertical_Sep = Cur_Vertical_Sep_in; Cur_Vertical_Sep = Cur_Vertical_Sep + 100;"),
    ], "extra statement inflating the current vertical separation"),
    _fault("v27", ErrorType.ADDCODE, [
        (96, "    Up_Separation = Up_Separation_in; Up_Separation = Up_Separation + 50;"),
    ], "extra statement inflating the upward separation"),
    _fault("v28", ErrorType.BRANCH, [
        (69, "    if (!(enabled && ((tcas_equipped && intent_not_known) || !tcas_equipped))) {"),
    ], "negated enabling branch condition"),
    _fault("v29", ErrorType.CODE, [
        (43, "        result = (Cur_Vertical_Sep >= MINSEP) && (Up_Separation >= ALIM());"),
    ], "dropped Own_Above_Threat conjunct in the climb else-branch"),
    _fault("v30", ErrorType.CODE, [
        (71, "        need_downward_RA = Non_Crossing_Biased_Descend();"),
    ], "dropped Own_Above_Threat conjunct for the downward advisory"),
    _fault("v31", ErrorType.ADDCODE, [
        (19, "    Positive_RA_Alt_Thresh[0] = 400; Positive_RA_Alt_Thresh[0] = 358;"),
        (20, "    Positive_RA_Alt_Thresh[1] = 500; Positive_RA_Alt_Thresh[1] = 460;"),
    ], "extra overwrites of two altitude thresholds"),
    _fault("v32", ErrorType.ADDCODE, [
        (21, "    Positive_RA_Alt_Thresh[2] = 640; Positive_RA_Alt_Thresh[2] = 600;"),
        (22, "    Positive_RA_Alt_Thresh[3] = 740; Positive_RA_Alt_Thresh[3] = 700;"),
    ], "extra overwrites of the upper two altitude thresholds"),
    _fault("v34", ErrorType.OPERATOR, [
        (66, "    tcas_equipped = Other_Capability != 1;"),
    ], "== replaced by != in the TCAS-equipped test"),
    _fault("v35", ErrorType.CODE, [
        (70, "        need_upward_RA = Non_Crossing_Biased_Climb();"),
    ], "dropped Own_Below_Threat conjunct for the upward advisory"),
    _fault("v36", ErrorType.OPERATOR, [
        (65, "    enabled = High_Confidence && (Own_Tracked_Alt_Rate < OLEV) && (Cur_Vertical_Sep > MAXALTDIFF);"),
    ], "<= replaced by < in the enabling condition"),
    _fault("v37", ErrorType.INDEX, [
        (25, "    return Positive_RA_Alt_Thresh[Alt_Layer_Value + 1];"),
    ], "ALIM reads the wrong altitude-threshold entry"),
    _fault("v39", ErrorType.OPERATOR, [
        (43, "        result = Own_Above_Threat() || (Cur_Vertical_Sep >= MINSEP) && (Up_Separation >= ALIM());"),
    ], "&& replaced by || in the climb else-branch"),
    _fault("v40", ErrorType.ASSIGN, [
        (70, "        need_upward_RA = Non_Crossing_Biased_Climb() && Own_Above_Threat();"),
        (71, "        need_downward_RA = Non_Crossing_Biased_Descend() && Own_Below_Threat();"),
    ], "threat-direction predicates swapped in both advisory assignments"),
    _fault("v41", ErrorType.ASSIGN, [
        (68, "    alt_sep = 1;"),
    ], "wrong default advisory assigned before the decision"),
)
