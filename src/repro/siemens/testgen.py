"""Test-vector generation and golden outputs for the TCAS benchmark.

The Siemens suite ships 1600 valid input vectors; the paper runs every
faulty version on the pool, compares against the golden outputs of the
original program, and uses the failing tests as counterexamples with the
correct value as specification.  This module plays the same role with a
deterministic pseudo-random pool: vectors are drawn from realistic ranges
(separations around the RA thresholds, plausible altitudes and rates) plus a
block of hand-picked corner vectors so that every decision in the program is
exercised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from repro.lang import Interpreter
from repro.siemens.tcas import TCAS_INPUT_NAMES, tcas_program


@dataclass(frozen=True)
class TcasTestVector:
    """One TCAS input vector."""

    values: tuple[int, ...]

    def as_list(self) -> list[int]:
        return list(self.values)

    def as_dict(self) -> dict[str, int]:
        return dict(zip(TCAS_INPUT_NAMES, self.values))


_CORNER_VECTORS = [
    # Cur_Vertical_Sep, High_Confidence, Two_of_Three, Own_Alt, Own_Rate,
    # Other_Alt, Alt_Layer, Up_Sep, Down_Sep, Other_RAC, Other_Cap, Climb_Inhibit
    (601, 1, 1, 2000, 500, 3000, 0, 399, 400, 0, 1, 0),
    (601, 1, 1, 3000, 500, 2000, 0, 400, 399, 0, 1, 0),
    (700, 1, 1, 5000, 600, 5500, 1, 500, 500, 0, 1, 1),
    (700, 1, 1, 5500, 600, 5000, 1, 499, 501, 0, 1, 1),
    (800, 1, 0, 4000, 300, 4200, 2, 640, 639, 0, 2, 0),
    (800, 1, 1, 4200, 300, 4000, 3, 741, 739, 0, 1, 1),
    (601, 1, 1, 1000, 0, 1200, 0, 350, 450, 0, 1, 1),
    (601, 1, 1, 1200, 0, 1000, 0, 450, 350, 0, 1, 0),
    (599, 1, 1, 2000, 500, 3000, 0, 399, 400, 0, 1, 0),
    (601, 0, 1, 2000, 500, 3000, 0, 399, 400, 0, 1, 0),
    (601, 1, 1, 2000, 601, 3000, 0, 399, 400, 0, 1, 0),
    (601, 1, 0, 2000, 500, 3000, 0, 399, 400, 1, 1, 0),
    (601, 1, 1, 2000, 500, 3000, 1, 501, 499, 2, 2, 1),
    (650, 1, 1, 2500, 400, 2400, 2, 630, 650, 0, 1, 1),
    (650, 1, 1, 2400, 400, 2500, 3, 750, 730, 0, 1, 0),
    (601, 1, 1, 2000, 500, 2000, 0, 400, 400, 0, 1, 0),
]


def generate_tcas_tests(count: int = 1600, seed: int = 2011) -> list[TcasTestVector]:
    """Generate a deterministic pool of TCAS test vectors."""
    rng = random.Random(seed)
    vectors: list[TcasTestVector] = [
        TcasTestVector(values=tuple(vector)) for vector in _CORNER_VECTORS[:count]
    ]
    thresholds = (400, 500, 640, 740)
    while len(vectors) < count:
        # The pool is biased toward vectors that actually reach the advisory
        # logic (the Siemens pool is similarly crafted): mostly confident
        # reports, vertical separation above the enabling threshold, and
        # up/down separations clustered around the RA altitude thresholds.
        roll = rng.random()
        if roll < 0.08:
            cur_vertical_sep = rng.choice([600, 601])
        elif roll < 0.78:
            cur_vertical_sep = rng.randint(601, 900)
        else:
            cur_vertical_sep = rng.randint(300, 600)
        high_confidence = 1 if rng.random() < 0.85 else 0
        two_of_three = 1 if rng.random() < 0.75 else 0
        own_alt = rng.randint(1000, 9000)
        rate_roll = rng.random()
        if rate_roll < 0.05:
            own_rate = 600
        elif rate_roll < 0.8:
            own_rate = rng.randint(0, 600)
        else:
            own_rate = rng.randint(601, 1200)
        if rng.random() < 0.1:
            other_alt = own_alt
        else:
            other_alt = own_alt + rng.choice([-1, 1]) * rng.randint(1, 600)
        alt_layer = rng.randint(0, 3)

        def separation() -> int:
            draw = rng.random()
            if draw < 0.15:
                return rng.choice(thresholds)
            if draw < 0.65:
                return max(0, rng.choice(thresholds) + rng.randint(-60, 60))
            return rng.randint(300, 900)

        up_separation = separation()
        down_separation = separation()
        other_rac = 0 if rng.random() < 0.7 else rng.randint(1, 2)
        other_capability = 1 if rng.random() < 0.7 else 2
        climb_inhibit = rng.randint(0, 1)
        vectors.append(
            TcasTestVector(
                values=(
                    cur_vertical_sep,
                    high_confidence,
                    two_of_three,
                    own_alt,
                    own_rate,
                    other_alt,
                    alt_layer,
                    up_separation,
                    down_separation,
                    other_rac,
                    other_capability,
                    climb_inhibit,
                )
            )
        )
    return vectors


@lru_cache(maxsize=None)
def _golden_cache(count: int, seed: int) -> tuple[int, ...]:
    interpreter = Interpreter(tcas_program())
    return tuple(
        interpreter.run(vector.as_list()).return_value
        for vector in generate_tcas_tests(count, seed)
    )


def golden_outputs(count: int = 1600, seed: int = 2011) -> list[int]:
    """Golden outputs: the advisory the original program returns per test."""
    return list(_golden_cache(count, seed))
