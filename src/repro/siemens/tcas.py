"""The TCAS resolution-advisory logic in mini-C.

TCAS (Traffic alert and Collision Avoidance System) decides whether an
aircraft should receive an upward or downward resolution advisory.  The
Siemens version is 173 lines of C; this re-implementation keeps the decision
logic intact (thresholds, inhibit-biased climb, the non-crossing climb and
descend predicates, and the final advisory selection) so that the fault
localization problem — which line explains a wrong advisory — is preserved.

The program takes the twelve TCAS inputs as parameters of ``main`` and
returns the advisory (0 = UNRESOLVED, 1 = UPWARD_RA, 2 = DOWNWARD_RA).
"""

from __future__ import annotations

from functools import lru_cache

from repro.lang import ast, check_program, parse_program

#: Names of the twelve TCAS input parameters, in `main` parameter order.
TCAS_INPUT_NAMES = (
    "Cur_Vertical_Sep",
    "High_Confidence",
    "Two_of_Three_Reports_Valid",
    "Own_Tracked_Alt",
    "Own_Tracked_Alt_Rate",
    "Other_Tracked_Alt",
    "Alt_Layer_Value",
    "Up_Separation",
    "Down_Separation",
    "Other_RAC",
    "Other_Capability",
    "Climb_Inhibit",
)

#: Advisory values returned by ``main``.
UNRESOLVED = 0
UPWARD_RA = 1
DOWNWARD_RA = 2

# The canonical (correct) TCAS source.  Every executable statement sits on
# its own line; the fault catalogue in :mod:`repro.siemens.faults` patches
# individual lines of this text.
TCAS_LINES = [
    "int OLEV = 600;",                                                              # 1
    "int MAXALTDIFF = 600;",                                                        # 2
    "int MINSEP = 300;",                                                            # 3
    "int NOZCROSS = 100;",                                                          # 4
    "int Cur_Vertical_Sep;",                                                        # 5
    "int High_Confidence;",                                                         # 6
    "int Two_of_Three_Reports_Valid;",                                              # 7
    "int Own_Tracked_Alt;",                                                         # 8
    "int Own_Tracked_Alt_Rate;",                                                    # 9
    "int Other_Tracked_Alt;",                                                       # 10
    "int Alt_Layer_Value;",                                                         # 11
    "int Up_Separation;",                                                           # 12
    "int Down_Separation;",                                                         # 13
    "int Other_RAC;",                                                               # 14
    "int Other_Capability;",                                                        # 15
    "int Climb_Inhibit;",                                                           # 16
    "int Positive_RA_Alt_Thresh[4];",                                               # 17
    "void initialize() {",                                                          # 18
    "    Positive_RA_Alt_Thresh[0] = 400;",                                         # 19
    "    Positive_RA_Alt_Thresh[1] = 500;",                                         # 20
    "    Positive_RA_Alt_Thresh[2] = 640;",                                         # 21
    "    Positive_RA_Alt_Thresh[3] = 740;",                                         # 22
    "}",                                                                            # 23
    "int ALIM() {",                                                                 # 24
    "    return Positive_RA_Alt_Thresh[Alt_Layer_Value];",                          # 25
    "}",                                                                            # 26
    "int Inhibit_Biased_Climb() {",                                                 # 27
    "    return (Climb_Inhibit ? Up_Separation + NOZCROSS : Up_Separation);",       # 28
    "}",                                                                            # 29
    "int Own_Below_Threat() {",                                                     # 30
    "    return Own_Tracked_Alt < Other_Tracked_Alt;",                              # 31
    "}",                                                                            # 32
    "int Own_Above_Threat() {",                                                     # 33
    "    return Other_Tracked_Alt < Own_Tracked_Alt;",                              # 34
    "}",                                                                            # 35
    "int Non_Crossing_Biased_Climb() {",                                            # 36
    "    int upward_preferred;",                                                    # 37
    "    int result;",                                                              # 38
    "    upward_preferred = Inhibit_Biased_Climb() > Down_Separation;",             # 39
    "    if (upward_preferred) {",                                                  # 40
    "        result = !(Own_Below_Threat()) || (!(Down_Separation >= ALIM()));",    # 41
    "    } else {",                                                                 # 42
    "        result = Own_Above_Threat() && (Cur_Vertical_Sep >= MINSEP) && (Up_Separation >= ALIM());",  # 43
    "    }",                                                                        # 44
    "    return result;",                                                           # 45
    "}",                                                                            # 46
    "int Non_Crossing_Biased_Descend() {",                                          # 47
    "    int upward_preferred;",                                                    # 48
    "    int result;",                                                              # 49
    "    upward_preferred = Inhibit_Biased_Climb() > Down_Separation;",             # 50
    "    if (upward_preferred) {",                                                  # 51
    "        result = Own_Below_Threat() && (Cur_Vertical_Sep >= MINSEP) && (Down_Separation >= ALIM());",  # 52
    "    } else {",                                                                 # 53
    "        result = !(Own_Above_Threat()) || (Up_Separation >= ALIM());",         # 54
    "    }",                                                                        # 55
    "    return result;",                                                           # 56
    "}",                                                                            # 57
    "int alt_sep_test() {",                                                         # 58
    "    int enabled;",                                                             # 59
    "    int tcas_equipped;",                                                       # 60
    "    int intent_not_known;",                                                    # 61
    "    int need_upward_RA;",                                                      # 62
    "    int need_downward_RA;",                                                    # 63
    "    int alt_sep;",                                                             # 64
    "    enabled = High_Confidence && (Own_Tracked_Alt_Rate <= OLEV) && (Cur_Vertical_Sep > MAXALTDIFF);",  # 65
    "    tcas_equipped = Other_Capability == 1;",                                   # 66
    "    intent_not_known = Two_of_Three_Reports_Valid && (Other_RAC == 0);",       # 67
    "    alt_sep = 0;",                                                             # 68
    "    if (enabled && ((tcas_equipped && intent_not_known) || !tcas_equipped)) {",  # 69
    "        need_upward_RA = Non_Crossing_Biased_Climb() && Own_Below_Threat();",  # 70
    "        need_downward_RA = Non_Crossing_Biased_Descend() && Own_Above_Threat();",  # 71
    "        if (need_upward_RA && need_downward_RA) {",                            # 72
    "            alt_sep = 0;",                                                     # 73
    "        } else {",                                                             # 74
    "            if (need_upward_RA) {",                                            # 75
    "                alt_sep = 1;",                                                 # 76
    "            } else {",                                                         # 77
    "                if (need_downward_RA) {",                                      # 78
    "                    alt_sep = 2;",                                             # 79
    "                } else {",                                                     # 80
    "                    alt_sep = 0;",                                             # 81
    "                }",                                                            # 82
    "            }",                                                                # 83
    "        }",                                                                    # 84
    "    }",                                                                        # 85
    "    return alt_sep;",                                                          # 86
    "}",                                                                            # 87
    "int main(int Cur_Vertical_Sep_in, int High_Confidence_in, int Two_of_Three_Reports_Valid_in, int Own_Tracked_Alt_in, int Own_Tracked_Alt_Rate_in, int Other_Tracked_Alt_in, int Alt_Layer_Value_in, int Up_Separation_in, int Down_Separation_in, int Other_RAC_in, int Other_Capability_in, int Climb_Inhibit_in) {",  # 88
    "    Cur_Vertical_Sep = Cur_Vertical_Sep_in;",                                  # 89
    "    High_Confidence = High_Confidence_in;",                                    # 90
    "    Two_of_Three_Reports_Valid = Two_of_Three_Reports_Valid_in;",              # 91
    "    Own_Tracked_Alt = Own_Tracked_Alt_in;",                                    # 92
    "    Own_Tracked_Alt_Rate = Own_Tracked_Alt_Rate_in;",                          # 93
    "    Other_Tracked_Alt = Other_Tracked_Alt_in;",                                # 94
    "    Alt_Layer_Value = Alt_Layer_Value_in;",                                    # 95
    "    Up_Separation = Up_Separation_in;",                                        # 96
    "    Down_Separation = Down_Separation_in;",                                    # 97
    "    Other_RAC = Other_RAC_in;",                                                # 98
    "    Other_Capability = Other_Capability_in;",                                  # 99
    "    Climb_Inhibit = Climb_Inhibit_in;",                                        # 100
    "    initialize();",                                                            # 101
    "    return alt_sep_test();",                                                   # 102
    "}",                                                                            # 103
]

TCAS_SOURCE = "\n".join(TCAS_LINES) + "\n"


@lru_cache(maxsize=None)
def tcas_program() -> ast.Program:
    """The reference (fault-free) TCAS program."""
    program = parse_program(TCAS_SOURCE, name="tcas")
    check_program(program)
    return program


def tcas_fault(version: str):
    """Fault descriptor of one faulty version (``"v1"`` ... ``"v41"``)."""
    from repro.siemens.faults import TCAS_FAULTS

    for fault in TCAS_FAULTS:
        if fault.name == version:
            return fault
    raise KeyError(f"unknown TCAS version {version!r}")


def tcas_versions() -> list[str]:
    """All faulty version names, in order."""
    from repro.siemens.faults import TCAS_FAULTS

    return [fault.name for fault in TCAS_FAULTS]


@lru_cache(maxsize=None)
def tcas_faulty_source(version: str) -> str:
    """The faulty TCAS source text for one version of the fault catalogue.

    This is what a localization-service client sends over the wire: the
    daemon's content-addressed artifact store hashes exactly this text (plus
    the encoding options), so the nine per-version sources of a suite run
    map to nine distinct artifacts however many clients submit them.
    """
    fault = tcas_fault(version)
    lines = list(TCAS_LINES)
    for line_number, replacement in fault.patches:
        lines[line_number - 1] = replacement
    return "\n".join(lines) + "\n"


@lru_cache(maxsize=None)
def tcas_faulty_program(version: str) -> ast.Program:
    """Build the faulty TCAS program for one version of the fault catalogue."""
    program = parse_program(tcas_faulty_source(version), name=f"tcas-{version}")
    check_program(program)
    return program
