"""The Table 1 harness: run BugAssist on every faulty TCAS version.

For one faulty version the harness

1. runs the test pool through the faulty program and keeps the tests whose
   output differs from the golden output (the failing test cases, TC#),
2. opens one :class:`~repro.core.session.LocalizationSession` for the
   version (the whole-program encoding is compiled once) and localizes (a
   sample of) the failing tests against it with the golden output as the
   per-test specification,
3. aggregates the Table 1 metrics: Detect# (runs that reported the true
   fault line), SizeReduc% (reported lines over program lines) and the mean
   run time.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.core import LocalizationSession, Specification
from repro.lang import Interpreter
from repro.siemens.faults import FaultVersion
from repro.siemens.tcas import (
    tcas_fault,
    tcas_faulty_program,
    tcas_faulty_source,
    tcas_program,
)
from repro.siemens.testgen import TcasTestVector, generate_tcas_tests, golden_outputs


@dataclass
class TcasVersionResult:
    """One row of Table 1."""

    version: str
    error_type: str
    errors: int
    failing_tests: int
    runs: int = 0
    detected: int = 0
    reported_lines: set[int] = field(default_factory=set)
    total_time: float = 0.0

    @property
    def detection_rate(self) -> float:
        return self.detected / self.runs if self.runs else 0.0

    @property
    def mean_time(self) -> float:
        return self.total_time / self.runs if self.runs else 0.0

    def size_reduction_percent(self, total_lines: int) -> float:
        if total_lines <= 0:
            return 0.0
        return 100.0 * len(self.reported_lines) / total_lines


#: Lines of the TCAS ``main`` harness that copy the test inputs into the
#: global state.  The paper's tool sets the globals directly from the test
#: vector, so these copies are not candidate bug locations; they are kept
#: hard during localization.
TCAS_HARNESS_LINES = tuple(range(89, 102))


def classify_tcas_tests(
    version: str, count: int = 1600, seed: int = 2011
) -> tuple[list[tuple[TcasTestVector, int]], list[tuple[TcasTestVector, int]]]:
    """Split the test pool into failing and passing tests for one version.

    Returns (failing, passing) lists of (vector, golden output) pairs.
    """
    program = tcas_faulty_program(version)
    interpreter = Interpreter(program)
    vectors = generate_tcas_tests(count, seed)
    golden = golden_outputs(count, seed)
    failing: list[tuple[TcasTestVector, int]] = []
    passing: list[tuple[TcasTestVector, int]] = []
    for vector, expected in zip(vectors, golden):
        actual = interpreter.run(vector.as_list()).return_value
        if actual == expected:
            passing.append((vector, expected))
        else:
            failing.append((vector, expected))
    return failing, passing


def run_tcas_version(
    version: str,
    test_count: int = 1600,
    seed: int = 2011,
    max_localized_tests: Optional[int] = 3,
    strategy: str = "hitting-set",
) -> TcasVersionResult:
    """Run the full Table 1 protocol on one faulty version.

    ``max_localized_tests`` bounds how many failing tests are localized (the
    paper localizes every failing test; a pure-Python SAT stack makes a
    sample the practical default — pass ``None`` for the full protocol).
    """
    fault: FaultVersion = tcas_fault(version)
    failing, _ = classify_tcas_tests(version, count=test_count, seed=seed)
    result = TcasVersionResult(
        version=version,
        error_type=fault.error_type.value,
        errors=fault.errors,
        failing_tests=len(failing),
    )
    program = tcas_faulty_program(version)
    fault_lines = set(fault.fault_lines)
    selected = failing if max_localized_tests is None else failing[:max_localized_tests]
    # One trace per version run: with REPRO_TRACE=export this writes a
    # Chrome trace of the whole compile-once/localize-many protocol.
    with obs.trace(f"tcas.{version}", attrs={"tests": len(selected)}):
        with LocalizationSession(
            program, strategy=strategy, hard_lines=TCAS_HARNESS_LINES
        ) as session:
            for vector, expected in selected:
                with obs.span("tcas.localize") as timed:
                    report = session.localize(
                        vector.as_list(), Specification.return_value(expected)
                    )
                result.runs += 1
                result.total_time += timed.duration
                result.reported_lines.update(report.lines)
                if any(line in fault_lines for line in report.lines):
                    result.detected += 1
    return result


def tcas_total_lines() -> int:
    """Total number of (non-blank) lines of the TCAS program."""
    return tcas_program().lines_of_code()


# ---------------------------------------------------------------- serving


@dataclass
class ServiceRequest:
    """One client request against the localization service.

    ``source`` is the faulty program text a client would submit (the
    daemon content-addresses it); ``tests`` are (inputs, specification)
    pairs ready for :meth:`~repro.serve.client.Client.localize_batch` or an
    in-process :class:`~repro.core.session.LocalizationSession` baseline.
    """

    version: str
    source: str
    tests: list[tuple[list[int], Specification]]

    @property
    def name(self) -> str:
        return f"tcas-{self.version}"


def service_workload(
    versions: Optional[list[str]] = None,
    tests_per_version: int = 3,
    test_count: int = 300,
    seed: int = 2011,
) -> list[ServiceRequest]:
    """The serving benchmark's workload: few programs, many requests.

    For each faulty TCAS version, classify the test pool and keep the first
    ``tests_per_version`` failing tests with their golden outputs as
    specifications — the per-version slice of the Table 1 protocol that a
    localization-service client replays.  Versions with fewer failing tests
    contribute what they have.
    """
    versions = versions or ["v1", "v2", "v13", "v16", "v22", "v28", "v37", "v40", "v41"]
    workload: list[ServiceRequest] = []
    for version in versions:
        failing, _ = classify_tcas_tests(version, count=test_count, seed=seed)
        tests = [
            (vector.as_list(), Specification.return_value(expected))
            for vector, expected in failing[:tests_per_version]
        ]
        workload.append(
            ServiceRequest(
                version=version, source=tcas_faulty_source(version), tests=tests
            )
        )
    return workload


@dataclass
class LargeBenchmarkResult:
    """One row of Table 3: trace sizes before/after reduction and localization."""

    name: str
    reduction: str
    loc: int
    procedures: int
    assignments_before: int = 0
    assignments_after: int = 0
    variables_before: int = 0
    variables_after: int = 0
    clauses_before: int = 0
    clauses_after: int = 0
    fault_candidates: int = 0
    maxsat_calls: int = 0
    sat_calls: int = 0
    detected: bool = False
    time_seconds: float = 0.0
    #: Solver propagations per wall-clock second over the whole row — the
    #: throughput the C-accelerated core (or the pure-Python fallback) hit.
    propagations_per_second: float = 0.0
    #: Solver conflicts analyzed per wall-clock second over the whole row —
    #: the search-kernel (conflict analysis + backjump + VSIDS) throughput.
    conflicts_per_second: float = 0.0
    #: Gate-cache hits while encoding the reduced trace (structure sharing).
    gates_shared: int = 0
    #: Circuit simplifier configuration used by the encoder.
    simplifier: str = ""
    #: Clauses the interval analysis removed from the reduced trace: the
    #: same trace encoded with ``analysis_narrowing`` off minus with it on.
    clauses_pruned: int = 0
    #: High bits pinned by narrowing plans across all written values.
    narrowed_vars: int = 0
    #: Whole-program encode time of the faulty version from scratch.
    encode_time_cold: float = 0.0
    #: Whole-program encode time splicing the reference version's journal
    #: (the faulty version differs by the seeded patch only); equals a cold
    #: fallback when the splice declined (``warm_spliced`` False).
    encode_time_warm: float = 0.0
    #: Whether the warm encode actually spliced (False = declined, cold ran).
    warm_spliced: bool = False
    #: Fraction of journal groups the change-impact pass re-encoded on the
    #: warm path (0.0 = everything replayed; None-like 1.0 when declined).
    impact_fraction: float = 1.0
    #: Which emission backend filled the cold compile's buffers ("python"
    #: or "c"); both produce bit-identical artifacts.
    encode_backend: str = ""
    #: Wall-clock seconds per cold-encode phase (analysis, gate emission,
    #: clause/journal materialization).
    encode_phases: dict = field(default_factory=dict)
    #: Whether a declined warm compile failed a precondition up front
    #: (before paying for impact analysis or any journal replay).
    splice_declined_early: bool = False
    #: Clauses the per-loop unwind plans removed from the whole-program
    #: encoding: flat compile minus the ``unwind_planning`` compile.
    unwind_pruned_clauses: int = 0
    #: Loops the loop-bound analysis proved a bound for (and so planned).
    planned_loops: int = 0


def run_large_benchmark(benchmark, max_candidates: int = 8) -> LargeBenchmarkResult:
    """Run the Table 3 protocol on one of the larger benchmarks.

    The failing test's trace formula is built twice — without and with the
    benchmark's designated trace-reduction techniques — and BugAssist then
    localizes on the reduced formula.  Each run opens one trace
    (``bench.<name>``), so ``REPRO_TRACE=export`` yields a per-row Chrome
    trace; the cold/warm encode times are span durations.
    """
    with obs.trace(
        f"bench.{benchmark.name}", attrs={"reduction": benchmark.reduction}
    ):
        return _run_large_benchmark(benchmark, max_candidates)


def _run_large_benchmark(benchmark, max_candidates: int) -> LargeBenchmarkResult:
    from repro.concolic import ConcolicTracer
    from repro.core.localizer import BugAssistLocalizer
    from repro.reduction import minimize_failing_input, sliced_tracer_settings

    faulty = benchmark.faulty_program()
    result = LargeBenchmarkResult(
        name=benchmark.name,
        reduction=benchmark.reduction,
        loc=faulty.lines_of_code(),
        procedures=len(faulty.functions),
    )
    started = time.perf_counter()
    test = list(benchmark.failing_test)
    spec = benchmark.specification()

    # Incremental cross-version encode: the unpatched reference program
    # stands in for the previously stored artifact, the faulty version for
    # the new compile — the Table 3 analogue of re-localizing after an edit.
    # Measured first, before the tracers populate the heap: with several
    # million retained objects alive the small-object allocator slows every
    # later allocation several-fold, which would contaminate the encode
    # timings with heap state rather than encoder throughput.
    from repro.bmc import BoundedModelChecker
    from repro.bmc.splice import splice_compile

    with obs.span("bench.encode_cold") as cold_span:
        cold_compiled = BoundedModelChecker(
            faulty, group_statements=True
        ).compile_program()
    result.encode_time_cold = cold_span.duration
    cold_profile = cold_compiled.encode_profile()
    result.encode_backend = cold_profile.get("encode_backend", "")
    result.encode_phases = {
        phase: round(seconds, 4)
        for phase, seconds in cold_profile.get("encode_phases", {}).items()
    }
    cold_signature = cold_compiled.signature
    # Per-loop unwind planning on the same whole-program encode: the clause
    # gap is what proven loop bounds bought on this row.
    planned_compiled = BoundedModelChecker(
        faulty, group_statements=True, unwind_planning=True
    ).compile_program()
    result.unwind_pruned_clauses = (
        cold_compiled.num_clauses - planned_compiled.num_clauses
    )
    result.planned_loops = planned_compiled.planned_loops
    del planned_compiled
    reference_compiled = BoundedModelChecker(
        benchmark.reference_program(), group_statements=True
    ).compile_program()
    # Drop the cold artifact so the warm run sees the same heap the cold
    # run did (plus the base artifact a warm client genuinely holds).
    del cold_compiled
    gc.collect()
    splice_outcome: dict = {}
    with obs.span("bench.encode_warm") as warm_span:
        warm_compiled = splice_compile(
            reference_compiled,
            BoundedModelChecker(faulty, group_statements=True),
            base_key=f"{benchmark.name}-reference",
            outcome=splice_outcome,
        )
        if warm_compiled is None:
            # Declined: the honest warm number is decline-check plus cold run.
            result.splice_declined_early = bool(
                splice_outcome.get("declined_early")
            )
            warm_compiled = BoundedModelChecker(
                faulty, group_statements=True
            ).compile_program()
        else:
            result.warm_spliced = True
            result.impact_fraction = warm_compiled.impact_fraction
    result.encode_time_warm = warm_span.duration
    if warm_compiled.signature != cold_signature:
        raise AssertionError(
            f"{benchmark.name}: warm encode diverged from cold"
        )
    del warm_compiled, reference_compiled
    gc.collect()

    # Delta debugging (D): minimize the failure-inducing input first.
    if "D" in benchmark.reduction:
        test = minimize_failing_input(test, benchmark.fails)
        spec = benchmark.specification(tuple(test))

    full = ConcolicTracer(faulty).trace(test, spec)
    result.assignments_before = full.num_assignments
    result.variables_before = full.num_vars
    result.clauses_before = full.num_clauses

    settings: dict[str, object] = {}
    if "S" in benchmark.reduction:
        settings = sliced_tracer_settings(faulty)
    concrete = set(settings.get("concrete_functions", ()))
    if "C" in benchmark.reduction:
        concrete |= set(benchmark.concretize)
    reduced = ConcolicTracer(
        faulty,
        relevant_lines=settings.get("relevant_lines"),
        concrete_functions=concrete,
    ).trace(test, spec)
    result.assignments_after = reduced.num_assignments
    result.variables_after = reduced.num_vars
    result.clauses_after = reduced.num_clauses
    result.narrowed_vars = reduced.narrowed_vars

    # Same reduced trace without analysis narrowing: the clause-count gap is
    # what the interval analysis bought on this row.
    unnarrowed = ConcolicTracer(
        faulty,
        relevant_lines=settings.get("relevant_lines"),
        concrete_functions=concrete,
        analysis_narrowing=False,
    ).trace(test, spec)
    result.clauses_pruned = unnarrowed.num_clauses - reduced.num_clauses

    localizer = BugAssistLocalizer(faulty, mode="trace", max_candidates=max_candidates)
    report = localizer.localize_trace(reduced, program_name=benchmark.name)
    result.fault_candidates = len(report.lines)
    result.maxsat_calls = report.maxsat_calls
    result.sat_calls = report.sat_calls
    result.detected = any(line in benchmark.fault_lines for line in report.lines)
    result.time_seconds = time.perf_counter() - started
    result.gates_shared = reduced.gates_shared
    result.simplifier = reduced.simplifier
    if result.time_seconds > 0:
        result.propagations_per_second = report.propagations / result.time_seconds
        result.conflicts_per_second = report.conflicts / result.time_seconds
    return result
