"""Program 2 of the paper: the strncat off-by-one error (Section 6.3).

``MyFunCopy`` concatenates a source string into a fixed-size buffer using a
standard C implementation of ``strncat``.  The common misconception is that
passing ``SIZE`` as the length bound keeps the write within bounds; in
reality strncat writes a terminating null one byte beyond the bound, so the
correct call passes ``SIZE - 1``.  Strings are modelled as bounded integer
arrays with a 0 terminator and explicit indices (mini-C has no pointers);
the write-within-bounds property is the explicit assertion on line 21, which
mirrors the array-bounds check the paper switches on.

The C library implementation of strncat (``strncat_model``) is assumed
correct: its lines are passed to the localizer as *hard* functions, exactly
as the paper "make[s] constraints arising out of library functions hard
clauses".
"""

from __future__ import annotations

from functools import lru_cache

from repro.lang import ast, check_program, parse_program

#: The buffer size used by the example (the paper's SIZE is 15; a smaller
#: buffer keeps the trace formula small without changing the bug).
SIZE = 6

STRNCAT_LINES = (
    f"int SIZE = {SIZE};",                                                  # 1
    f"int buf[{SIZE + 2}];",                                                # 2
    f"int src[{SIZE + 2}];",                                                # 3
    "int writes_past = 0;",                                                 # 4
    "void fill_src(int seed) {",                                            # 5
    "    int i = 0;",                                                       # 6
    "    while (i < SIZE + 1) {",                                           # 7
    "        src[i] = (seed + i) % 25 + 65;",                               # 8
    "        i = i + 1;",                                                   # 9
    "    }",                                                                # 10
    "    src[SIZE + 1] = 0;",                                               # 11
    "}",                                                                    # 12
    "void strncat_model(int dest_len, int n) {",                            # 13
    "    int d = dest_len;",                                                # 14
    "    int s = 0;",                                                       # 15
    "    while (n > 0 && src[s] != 0) {",                                   # 16
    "        buf[d] = src[s];",                                             # 17
    "        d = d + 1;",                                                   # 18
    "        s = s + 1;",                                                   # 19
    "        n = n - 1;",                                                   # 20
    "    }",                                                                # 21
    "    assert(d < SIZE + 2);",                                            # 22
    "    buf[d] = 0;",                                                      # 23
    "    writes_past = d;",                                                 # 24
    "}",                                                                    # 25
    "void MyFunCopy(int seed) {",                                           # 26
    "    int i = 0;",                                                       # 27
    "    while (i < SIZE) {",                                               # 28
    "        buf[i] = 0;",                                                  # 29
    "        i = i + 1;",                                                   # 30
    "    }",                                                                # 31
    "    fill_src(seed);",                                                  # 32
    "    strncat_model(0, SIZE);",                                          # 33  (fault: should pass SIZE - 1)
    "    assert(writes_past < SIZE);",                                      # 34
    "}",                                                                    # 35
    "int main(int seed) {",                                                 # 36
    "    assume(seed >= 0);",                                               # 37
    "    MyFunCopy(seed);",                                                 # 38
    "    return buf[0];",                                                   # 39
    "}",                                                                    # 40
)

#: Line of the faulty call (the paper's line 6) and the library lines that
#: are kept hard during localization.
FAULT_LINE = 33
LIBRARY_FUNCTIONS = ("strncat_model", "fill_src")

STRNCAT_SOURCE = "\n".join(STRNCAT_LINES) + "\n"


@lru_cache(maxsize=None)
def strncat_program() -> ast.Program:
    """The buggy strncat example program."""
    program = parse_program(STRNCAT_SOURCE, name="strncat-off-by-one")
    check_program(program)
    return program


def fixed_strncat_program() -> ast.Program:
    """The repaired program (SIZE - 1 passed to strncat)."""
    lines = list(STRNCAT_LINES)
    lines[FAULT_LINE - 1] = "    strncat_model(0, SIZE - 1);"
    program = parse_program("\n".join(lines) + "\n", name="strncat-fixed")
    check_program(program)
    return program
