"""Seeded-fault while-loop corpus for the loop-bound analysis.

Small mini-C programs, each dominated by loops whose trip counts the
loop-bound pass (:mod:`repro.analysis.loops`) can prove — constant bounds,
assume-bounded parameter limits, decreasing counters, nesting — and each
carrying one seeded fault that makes its assertion fail on the recorded
test.  The corpus backs ``benchmarks/bench_loops.py`` (clause counts and
times flat vs planned unwinding across unwind depths, with the per-row
``lines_equal`` record of where dropping the unwinding assumption changes
the candidate set) and the planning/iteration-group tests in
``tests/test_loops.py``.

All loops here bound well below the default ``unwind=16``, so planning
prunes real clauses; the faults sit on body statements and loop guards so
iteration-aware grouping (``loop_iteration_groups``) has something to
localize per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.lang import ast, check_program, parse_program
from repro.spec import Specification


@dataclass(frozen=True)
class LoopBenchmark:
    """One corpus entry: a loop-heavy program with a seeded fault."""

    name: str
    source: str
    #: Inputs on which the seeded fault trips the program's assertion.
    failing_test: tuple[int, ...]
    #: Line(s) of the seeded fault, for detection checks.
    fault_lines: tuple[int, ...]
    description: str = ""

    def program(self) -> ast.Program:
        return _parse(self.name, self.source)

    def specification(self) -> Specification:
        return Specification.assertion()


@lru_cache(maxsize=None)
def _parse(name: str, source: str) -> ast.Program:
    program = parse_program(source, name=name)
    check_program(program)
    return program


# Constant-bound accumulator; the fault drops a doubling, so the loop sums
# to 28 instead of the asserted 56.  Exact trip count 8 under unwind 16.
SCALE_SUM = LoopBenchmark(
    name="scale_sum",
    source=(
        "int main(int x) {\n"
        "    int i = 0;\n"
        "    int s = 0;\n"
        "    assume(x == 1);\n"
        "    while (i < 8) {\n"
        "        s = s + i * x;\n"  # fault: should be s + 2 * i * x
        "        i = i + 1;\n"
        "    }\n"
        "    assert(s == 56);\n"
        "    return s;\n"
        "}\n"
    ),
    failing_test=(1,),
    fault_lines=(6,),
    description="constant-bound sum, fault in the body accumulation",
)

# Decreasing counter with a loop-invariant limit; the seeded step of 3
# (correct: 2) finishes in 4 iterations instead of 5.
COUNTDOWN = LoopBenchmark(
    name="countdown",
    source=(
        "int main(int n) {\n"
        "    int j = 10;\n"
        "    int hits = 0;\n"
        "    assume(n == 0);\n"
        "    while (j > n) {\n"
        "        j = j - 3;\n"  # fault: should be j - 2
        "        hits = hits + 1;\n"
        "    }\n"
        "    assert(hits == 5);\n"
        "    return hits;\n"
        "}\n"
    ),
    failing_test=(0,),
    fault_lines=(6,),
    description="decreasing counter, fault in the induction step",
)

# Varying limit bounded by an assume: the pass proves the interval bound
# [1, 7], so planning unrolls 7 of the default 16 iterations.
BOUNDED_FILL = LoopBenchmark(
    name="bounded_fill",
    source=(
        "int main(int n) {\n"
        "    int i = 0;\n"
        "    int acc = 0;\n"
        "    assume(n > 0 && n < 8);\n"
        "    while (i < n) {\n"
        "        acc = acc + 4;\n"  # fault: should be acc + 3
        "        i = i + 1;\n"
        "    }\n"
        "    assert(acc == 3 * n);\n"
        "    return acc;\n"
        "}\n"
    ),
    failing_test=(2,),
    fault_lines=(6,),
    description="assume-bounded limit, fault in the body accumulation",
)

# Nested constant-bound loops; the seeded fault widens the inner guard, so
# the total runs to 16 instead of 12.  Both loops get exact plans.
NESTED_TOTAL = LoopBenchmark(
    name="nested_total",
    source=(
        "int main(int x) {\n"
        "    int i = 0;\n"
        "    int total = 0;\n"
        "    assume(x == 1);\n"
        "    while (i < 4) {\n"
        "        int k = 0;\n"
        "        while (k < 4) {\n"  # fault: should be k < 3
        "            total = total + x;\n"
        "            k = k + 1;\n"
        "        }\n"
        "        i = i + 1;\n"
        "    }\n"
        "    assert(total == 12);\n"
        "    return total;\n"
        "}\n"
    ),
    failing_test=(1,),
    fault_lines=(7,),
    description="nested constant bounds, fault in the inner loop guard",
)

# Every iteration of the body compounds the fault; with iteration-aware
# grouping, relaxing any single iteration's copy of line 6 repairs the
# run, so candidates carry explicit (line, iteration) pairs.
DRIFTING_ACC = LoopBenchmark(
    name="drifting_acc",
    source=(
        "int main(int v) {\n"
        "    int i = 0;\n"
        "    int acc = 0;\n"
        "    assume(v == 3);\n"
        "    while (i < 6) {\n"
        "        acc = acc + v + i;\n"  # fault: should be acc + v
        "        i = i + 1;\n"
        "    }\n"
        "    assert(acc == 18);\n"
        "    return acc;\n"
        "}\n"
    ),
    failing_test=(3,),
    fault_lines=(6,),
    description="per-iteration drift, localized with iteration groups",
)

LOOP_BENCHMARKS: tuple[LoopBenchmark, ...] = (
    SCALE_SUM,
    COUNTDOWN,
    BOUNDED_FILL,
    NESTED_TOTAL,
    DRIFTING_ACC,
)

__all__ = ["LoopBenchmark", "LOOP_BENCHMARKS"]
