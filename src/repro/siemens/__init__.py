"""Siemens-style benchmark programs (Section 6 of the paper).

The Siemens test suite is the standard fault-localization benchmark the
paper evaluates on.  The original programs are ANSI-C; this package contains
faithful mini-C re-implementations of the ones the paper uses, together with
a fault-injection catalogue reproducing the *error types* of Table 2:

* :mod:`repro.siemens.tcas` — the aircraft collision avoidance logic
  (Section 6.1 / Table 1 / Figure 2), 41 faulty versions.
* :mod:`repro.siemens.testgen` — deterministic test-vector generation and
  golden outputs from the reference implementation.
* :mod:`repro.siemens.programs` — tot_info, print_tokens, schedule and
  schedule2 models with one injected fault each (Section 6.2 / Table 3).
* :mod:`repro.siemens.strncat_example` — the strncat off-by-one program of
  Section 6.3 (Program 2).
* :mod:`repro.siemens.suite` — the harness that classifies tests, runs
  BugAssist on every failing test and aggregates the Table 1 metrics.
"""

from repro.siemens.faults import ErrorType, FaultVersion, TCAS_FAULTS
from repro.siemens.tcas import (
    TCAS_SOURCE,
    tcas_program,
    tcas_faulty_program,
    tcas_faulty_source,
    tcas_fault,
    tcas_versions,
)
from repro.siemens.testgen import TcasTestVector, generate_tcas_tests, golden_outputs
from repro.siemens.suite import (
    ServiceRequest,
    TcasVersionResult,
    classify_tcas_tests,
    run_tcas_version,
    service_workload,
)

__all__ = [
    "ErrorType",
    "FaultVersion",
    "TCAS_FAULTS",
    "TCAS_SOURCE",
    "tcas_program",
    "tcas_faulty_program",
    "tcas_fault",
    "tcas_versions",
    "TcasTestVector",
    "generate_tcas_tests",
    "golden_outputs",
    "ServiceRequest",
    "TcasVersionResult",
    "run_tcas_version",
    "classify_tcas_tests",
    "service_workload",
    "tcas_faulty_source",
]
