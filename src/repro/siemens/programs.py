"""The larger Siemens-style benchmarks of Table 3.

tot_info, print_tokens, schedule and schedule2 are re-implemented as compact
mini-C programs that keep the characteristics the paper relies on: loops,
procedure calls, recursion (print_tokens), array-based state (the
schedulers) and plenty of computation that is irrelevant to the checked
output — which is what the trace-reduction techniques remove.  Each
benchmark carries one injected fault and names the reduction technique the
paper applied to it (S = slicing, C = concolic simulation, D = delta
debugging).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.lang import Interpreter, ast, check_program, parse_program
from repro.spec import Specification


@dataclass(frozen=True)
class LargeBenchmark:
    """One row of Table 3."""

    name: str
    reduction: str  # e.g. "S", "C", "DS"
    source_lines: tuple[str, ...]
    patches: tuple[tuple[int, str], ...]
    failing_test: tuple[int, ...]
    concretize: tuple[str, ...] = ()
    description: str = ""

    @property
    def fault_lines(self) -> tuple[int, ...]:
        return tuple(line for line, _ in self.patches)

    def reference_program(self) -> ast.Program:
        return _parse(self.name, self.source_lines)

    def faulty_program(self) -> ast.Program:
        lines = list(self.source_lines)
        for line_number, replacement in self.patches:
            lines[line_number - 1] = replacement
        return _parse(f"{self.name}-faulty", tuple(lines))

    def golden_output(self, test: tuple[int, ...] | None = None) -> tuple[int, ...]:
        interpreter = Interpreter(self.reference_program())
        return interpreter.run(list(test or self.failing_test)).observable

    def specification(self, test: tuple[int, ...] | None = None) -> Specification:
        return Specification.golden_output(self.golden_output(test))

    def fails(self, test: list[int]) -> bool:
        """Does the faulty program deviate from the golden output on ``test``?"""
        golden = self.golden_output(tuple(test))
        result = Interpreter(self.faulty_program()).run(test)
        return result.assertion_failed or result.observable != golden


@lru_cache(maxsize=None)
def _parse(name: str, lines: tuple[str, ...]) -> ast.Program:
    program = parse_program("\n".join(lines) + "\n", name=name)
    check_program(program)
    return program


# --------------------------------------------------------------------- tot_info

_TOT_INFO_LINES = (
    "int table[12];",                                                       # 1
    "int row_total[4];",                                                    # 2
    "int col_total[3];",                                                    # 3
    "void fill_table(int rows, int cols, int seed) {",                      # 4
    "    int i = 0;",                                                       # 5
    "    while (i < rows * cols) {",                                        # 6
    "        table[i] = seed + i * 3 + 1;",                                 # 7
    "        i = i + 1;",                                                   # 8
    "    }",                                                                # 9
    "}",                                                                    # 10
    "int info_statistic(int rows, int cols) {",                             # 11
    "    int grand = 0;",                                                   # 12
    "    int info = 0;",                                                    # 13
    "    int r = 0;",                                                       # 14
    "    while (r < rows) {",                                               # 15
    "        int c = 0;",                                                   # 16
    "        row_total[r] = 0;",                                            # 17
    "        while (c < cols) {",                                           # 18
    "            row_total[r] = row_total[r] + table[r * cols + c];",       # 19
    "            c = c + 1;",                                               # 20
    "        }",                                                            # 21
    "        grand = grand + row_total[r];",                                # 22
    "        r = r + 1;",                                                   # 23
    "    }",                                                                # 24
    "    int c2 = 0;",                                                      # 25
    "    while (c2 < cols) {",                                              # 26
    "        int r2 = 0;",                                                  # 27
    "        col_total[c2] = 0;",                                           # 28
    "        while (r2 < rows) {",                                          # 29
    "            col_total[c2] = col_total[c2] + table[r2 * cols + c2];",   # 30
    "            r2 = r2 + 1;",                                             # 31
    "        }",                                                            # 32
    "        c2 = c2 + 1;",                                                 # 33
    "    }",                                                                # 34
    "    int r3 = 0;",                                                      # 35
    "    while (r3 < rows) {",                                              # 36
    "        int c3 = 0;",                                                  # 37
    "        while (c3 < cols) {",                                          # 38
    "            int cell = table[r3 * cols + c3];",                        # 39
    "            int expected = row_total[r3] + col_total[c3];",            # 40
    "            int diff = cell - expected;",                              # 41
    "            info = info + diff * 2 + 3;",                              # 42
    "            c3 = c3 + 1;",                                             # 43
    "        }",                                                            # 44
    "        r3 = r3 + 1;",                                                 # 45
    "    }",                                                                # 46
    "    return info;",                                                     # 47
    "}",                                                                    # 48
    "int scratch_statistics(int rows, int cols) {",                         # 49
    "    int mean = 0;",                                                    # 50
    "    int i = 0;",                                                       # 51
    "    int spread = 0;",                                                  # 52
    "    while (i < rows * cols) {",                                        # 53
    "        mean = mean + table[i];",                                      # 54
    "        spread = spread + table[i] * table[i];",                       # 55
    "        i = i + 1;",                                                   # 56
    "    }",                                                                # 57
    "    return spread / (mean + 1);",                                      # 58
    "}",                                                                    # 59
    "int main(int rows, int cols, int seed) {",                             # 60
    "    int info = 0;",                                                    # 61
    "    int unused = 0;",                                                  # 62
    "    assume(rows > 0);",                                                # 63
    "    assume(cols > 0);",                                                # 64
    "    if (rows * cols > 8) {",                                           # 65
    "        return 0 - 1;",                                                # 66
    "    }",                                                                # 67
    "    fill_table(rows, cols, seed);",                                    # 68
    "    unused = scratch_statistics(rows, cols);",                         # 69
    "    info = info_statistic(rows, cols);",                               # 70
    "    return info;",                                                     # 71
    "}",                                                                    # 72
)

TOT_INFO = LargeBenchmark(
    name="tot_info",
    reduction="S",
    source_lines=_TOT_INFO_LINES,
    # Wrong constant in the conditional checking the product of rows and
    # columns (the paper's description of the tot_info fault).
    patches=((65, "    if (rows * cols > 11) {"),),
    failing_test=(3, 3, 7),
    description="constant fault in the rows*cols bounds check",
)


# ----------------------------------------------------------------- print_tokens

_PRINT_TOKENS_LINES = (
    "int input[16];",                                                       # 1
    "int length = 16;",                                                     # 2
    "void fill_input(int seed) {",                                          # 3
    "    int i = 0;",                                                       # 4
    "    while (i < length) {",                                             # 5
    "        input[i] = (seed * (i + 7)) % 75 + 48;",                       # 6
    "        i = i + 1;",                                                   # 7
    "    }",                                                                # 8
    "}",                                                                    # 9
    "int skip_separators(int pos) {",                                       # 10
    "    if (pos >= length) {",                                             # 11
    "        return pos;",                                                  # 12
    "    }",                                                                # 13
    "    if (input[pos] == 59 || input[pos] == 58) {",                      # 14
    "        return skip_separators(pos + 1);",                             # 15
    "    }",                                                                # 16
    "    return pos;",                                                      # 17
    "}",                                                                    # 18
    "int is_digit(int ch) {",                                               # 19
    "    return ch >= 48 && ch <= 57;",                                     # 20
    "}",                                                                    # 21
    "int is_alpha(int ch) {",                                               # 22
    "    return ch >= 65 && ch <= 122;",                                    # 23
    "}",                                                                    # 24
    "int main(int seed) {",                                                 # 25
    "    int numerals = 0;",                                                # 26
    "    int words = 0;",                                                   # 27
    "    int specials = 0;",                                                # 28
    "    int pos = 0;",                                                     # 29
    "    fill_input(seed);",                                                # 30
    "    while (pos < length) {",                                           # 31
    "        int start = skip_separators(pos);",                            # 32
    "        if (start >= length) {",                                       # 33
    "            pos = length;",                                            # 34
    "        } else {",                                                     # 35
    "            int ch = input[start];",                                   # 36
    "            if (ch >= 48 && ch <= 56) {",                              # 37  (fault site)
    "                numerals = numerals + 1;",                             # 38
    "            } else {",                                                 # 39
    "                if (is_alpha(ch)) {",                                  # 40
    "                    words = words + 1;",                               # 41
    "                } else {",                                             # 42
    "                    specials = specials + 1;",                         # 43
    "                }",                                                    # 44
    "            }",                                                        # 45
    "            pos = start + 1;",                                         # 46
    "        }",                                                            # 47
    "    }",                                                                # 48
    "    print_int(numerals);",                                             # 49
    "    print_int(words);",                                                # 50
    "    return specials;",                                                 # 51
    "}",                                                                    # 52
)

_PRINT_TOKENS_CORRECT_37 = "            if (ch >= 48 && ch <= 57) {"

PRINT_TOKENS = LargeBenchmark(
    name="print_tokens",
    reduction="C",
    source_lines=tuple(
        _PRINT_TOKENS_CORRECT_37 if index == 36 else line
        for index, line in enumerate(_PRINT_TOKENS_LINES)
    ),
    # The faulty version classifies the digit '9' as a word: the upper bound
    # of the numeral comparison is off by one.
    patches=((37, "            if (ch >= 48 && ch <= 56) {"),),
    failing_test=(13,),
    concretize=("fill_input", "skip_separators", "is_digit"),
    description="off-by-one in the numeral classification bound",
)


# --------------------------------------------------------------------- schedule

_SCHEDULE_LINES = (
    "int prio[8];",                                                         # 1
    "int alive[8];",                                                        # 2
    "int count = 0;",                                                       # 3
    "int finished = 0;",                                                    # 4
    "void new_process(int priority) {",                                     # 5
    "    if (count < 8) {",                                                 # 6
    "        prio[count] = priority;",                                      # 7
    "        alive[count] = 1;",                                            # 8
    "        count = count + 1;",                                           # 9
    "    }",                                                                # 10
    "}",                                                                    # 11
    "void upgrade_first(int boost) {",                                      # 12
    "    int i = 0;",                                                       # 13
    "    while (i < count) {",                                              # 14
    "        if (alive[i] == 1) {",                                         # 15
    "            prio[i] = prio[i] + boost;",                               # 16
    "            i = count;",                                               # 17
    "        } else {",                                                     # 18
    "            i = i + 1;",                                               # 19
    "        }",                                                            # 20
    "    }",                                                                # 21
    "}",                                                                    # 22
    "void finish_highest() {",                                              # 23
    "    int best = 0 - 1;",                                                # 24
    "    int best_prio = 0 - 1;",                                           # 25
    "    int i = 0;",                                                       # 26
    "    while (i < count) {",                                              # 27
    "        if (alive[i] == 1 && prio[i] > best_prio) {",                  # 28
    "            best = i;",                                                # 29
    "            best_prio = prio[i];",                                     # 30
    "        }",                                                            # 31
    "        i = i + 1;",                                                   # 32
    "    }",                                                                # 33
    "    if (best >= 0) {",                                                 # 34
    "        alive[best] = 0;",                                             # 35
    "        finished = finished + 1;",                                     # 36
    "    }",                                                                # 37
    "}",                                                                    # 38
    "void flush_all() {",                                                   # 39
    "    int i = 0;",                                                       # 40
    "    while (i < count) {",                                              # 41  (fault site)
    "        if (alive[i] == 1) {",                                         # 42
    "            alive[i] = 0;",                                            # 43
    "            finished = finished + 1;",                                 # 44
    "        }",                                                            # 45
    "        i = i + 1;",                                                   # 46
    "    }",                                                                # 47
    "}",                                                                    # 48
    "void run_command(int command) {",                                      # 49
    "    if (command == 1) {",                                              # 50
    "        new_process(command + 2);",                                    # 51
    "    }",                                                                # 52
    "    if (command == 2) {",                                              # 53
    "        new_process(7);",                                              # 54
    "    }",                                                                # 55
    "    if (command == 3) {",                                              # 56
    "        upgrade_first(2);",                                            # 57
    "    }",                                                                # 58
    "    if (command == 4) {",                                              # 59
    "        finish_highest();",                                            # 60
    "    }",                                                                # 61
    "    if (command == 5) {",                                              # 62
    "        flush_all();",                                                 # 63
    "    }",                                                                # 64
    "}",                                                                    # 65
    "int main(int c1, int c2, int c3, int c4, int c5, int c6) {",           # 66
    "    run_command(c1);",                                                 # 67
    "    run_command(c2);",                                                 # 68
    "    run_command(c3);",                                                 # 69
    "    run_command(c4);",                                                 # 70
    "    run_command(c5);",                                                 # 71
    "    run_command(c6);",                                                 # 72
    "    print_int(finished);",                                             # 73
    "    return count - finished;",                                         # 74
    "}",                                                                    # 75
)

SCHEDULE = LargeBenchmark(
    name="schedule",
    reduction="DS",
    source_lines=_SCHEDULE_LINES,
    # Off-by-one when flushing the process queue: the last created process is
    # never flushed (the paper's schedule fault).
    patches=((41, "    while (i < count - 1) {"),),
    failing_test=(1, 2, 3, 1, 4, 5),
    description="off-by-one in the flush loop bound",
)

SCHEDULE_LARGE_TEST = (1, 2, 3, 1, 2, 5)


# -------------------------------------------------------------------- schedule2

_SCHEDULE2_LINES = (
    "int queue[6];",                                                        # 1
    "int size = 0;",                                                        # 2
    "void enqueue(int priority) {",                                         # 3
    "    if (size < 6) {",                                                  # 4
    "        queue[size] = priority;",                                      # 5
    "        size = size + 1;",                                             # 6
    "    }",                                                                # 7
    "}",                                                                    # 8
    "int promote(int index, int boost) {",                                  # 9
    "    if (index < 0 || index >= size) {",                                # 10
    "        return 0;",                                                    # 11
    "    }",                                                                # 12
    "    queue[index] = queue[index] + boost * 2;",                         # 13  (fault site)
    "    return queue[index];",                                             # 14
    "}",                                                                    # 15
    "int busiest() {",                                                      # 16
    "    int best = 0;",                                                    # 17
    "    int i = 1;",                                                       # 18
    "    while (i < size) {",                                               # 19
    "        if (queue[i] > queue[best]) {",                                # 20
    "            best = i;",                                                # 21
    "        }",                                                            # 22
    "        i = i + 1;",                                                   # 23
    "    }",                                                                # 24
    "    return best;",                                                     # 25
    "}",                                                                    # 26
    "int main(int p1, int p2, int p3, int boost) {",                        # 27
    "    int winner = 0;",                                                  # 28
    "    int audit = 0;",                                                   # 29
    "    enqueue(p1);",                                                     # 30
    "    enqueue(p2);",                                                     # 31
    "    enqueue(p3);",                                                     # 32
    "    audit = p1 + p2 + p3;",                                            # 33
    "    promote(1, boost);",                                               # 34
    "    winner = busiest();",                                              # 35
    "    print_int(queue[winner]);",                                        # 36
    "    return winner;",                                                   # 37
    "}",                                                                    # 38
)

_SCHEDULE2_CORRECT_13 = "    queue[index] = queue[index] + boost;"

SCHEDULE2 = LargeBenchmark(
    name="schedule2",
    reduction="S",
    source_lines=tuple(
        _SCHEDULE2_CORRECT_13 if index == 12 else line
        for index, line in enumerate(_SCHEDULE2_LINES)
    ),
    # The faulty version doubles the boost when promoting a process.
    patches=((13, "    queue[index] = queue[index] + boost * 2;"),),
    failing_test=(5, 4, 6, 1),
    description="wrong priority boost in promote()",
)


LARGE_BENCHMARKS: tuple[LargeBenchmark, ...] = (
    TOT_INFO,
    PRINT_TOKENS,
    SCHEDULE,
    SCHEDULE2,
)
