"""Recursive-descent parser for the mini-C language."""

from __future__ import annotations

from repro.lang import ast
from repro.lang.lexer import Token, tokenize


class ParseError(ValueError):
    """Raised when the source does not conform to the mini-C grammar."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line
        self.bare_message = message

    def to_diagnostic(self):
        """Structured form (same shape as type and analysis diagnostics)."""
        from repro.lang.diagnostics import ERROR, Diagnostic

        return Diagnostic(
            line=self.line, severity=ERROR, code="parse-error", message=self.bare_message
        )


def parse_program(source: str, name: str = "<program>") -> ast.Program:
    """Parse mini-C source text into a :class:`repro.lang.ast.Program`."""
    parser = _Parser(tokenize(source))
    program = parser.parse_program()
    program.source = source
    program.name = name
    return program


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # ------------------------------------------------------------- plumbing

    @property
    def _current(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._current
        self._position += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._current
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        if self._check(kind, text):
            return self._advance()
        token = self._current
        wanted = text if text is not None else kind
        raise ParseError(f"expected {wanted!r}, found {token.text!r}", token.line)

    # ------------------------------------------------------------ top level

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self._check("eof"):
            self._parse_top_level(program)
        return program

    def _parse_top_level(self, program: ast.Program) -> None:
        start = self._current
        if not (self._check("keyword", "int") or self._check("keyword", "void")):
            raise ParseError(
                f"expected a declaration or function, found {start.text!r}", start.line
            )
        returns_value = self._advance().text == "int"
        name_token = self._expect("ident")
        if self._check("symbol", "("):
            program.functions[name_token.text] = self._parse_function(
                name_token, returns_value
            )
            return
        if not returns_value:
            raise ParseError("global variables must have type int", name_token.line)
        program.globals.append(self._parse_global_tail(name_token))

    def _parse_global_tail(self, name_token: Token) -> ast.VarDecl | ast.ArrayDecl:
        if self._accept("symbol", "["):
            size_token = self._expect("int")
            self._expect("symbol", "]")
            init: tuple[ast.Expr, ...] = ()
            if self._accept("symbol", "="):
                self._expect("symbol", "{")
                values = [self._parse_expr()]
                while self._accept("symbol", ","):
                    values.append(self._parse_expr())
                self._expect("symbol", "}")
                init = tuple(values)
            self._expect("symbol", ";")
            return ast.ArrayDecl(
                line=name_token.line,
                name=name_token.text,
                size=int(size_token.text),
                init=init,
            )
        init_expr = None
        if self._accept("symbol", "="):
            init_expr = self._parse_expr()
        self._expect("symbol", ";")
        return ast.VarDecl(line=name_token.line, name=name_token.text, init=init_expr)

    def _parse_function(self, name_token: Token, returns_value: bool) -> ast.Function:
        self._expect("symbol", "(")
        params: list[str] = []
        if not self._check("symbol", ")"):
            if self._accept("keyword", "void"):
                pass
            else:
                while True:
                    self._expect("keyword", "int")
                    params.append(self._expect("ident").text)
                    if not self._accept("symbol", ","):
                        break
        self._expect("symbol", ")")
        body = self._parse_block()
        return ast.Function(
            name=name_token.text,
            params=tuple(params),
            body=body,
            returns_value=returns_value,
            line=name_token.line,
        )

    # ------------------------------------------------------------ statements

    def _parse_block(self) -> tuple[ast.Stmt, ...]:
        self._expect("symbol", "{")
        statements: list[ast.Stmt] = []
        while not self._check("symbol", "}"):
            statements.extend(self._parse_statement())
        self._expect("symbol", "}")
        return tuple(statements)

    def _parse_body(self) -> tuple[ast.Stmt, ...]:
        """A statement or a braced block (for if/while bodies)."""
        if self._check("symbol", "{"):
            return self._parse_block()
        return tuple(self._parse_statement())

    def _parse_statement(self) -> list[ast.Stmt]:
        token = self._current
        if self._check("keyword", "int"):
            return [self._parse_local_declaration()]
        if self._accept("keyword", "if"):
            self._expect("symbol", "(")
            cond = self._parse_expr()
            self._expect("symbol", ")")
            then_body = self._parse_body()
            else_body: tuple[ast.Stmt, ...] = ()
            if self._accept("keyword", "else"):
                else_body = self._parse_body()
            return [
                ast.If(line=token.line, cond=cond, then_body=then_body, else_body=else_body)
            ]
        if self._accept("keyword", "while"):
            self._expect("symbol", "(")
            cond = self._parse_expr()
            self._expect("symbol", ")")
            body = self._parse_body()
            return [ast.While(line=token.line, cond=cond, body=body)]
        if self._accept("keyword", "return"):
            value = None
            if not self._check("symbol", ";"):
                value = self._parse_expr()
            self._expect("symbol", ";")
            return [ast.Return(line=token.line, value=value)]
        if self._accept("keyword", "assert"):
            self._expect("symbol", "(")
            cond = self._parse_expr()
            self._expect("symbol", ")")
            self._expect("symbol", ";")
            return [ast.Assert(line=token.line, cond=cond)]
        if self._accept("keyword", "assume"):
            self._expect("symbol", "(")
            cond = self._parse_expr()
            self._expect("symbol", ")")
            self._expect("symbol", ";")
            return [ast.Assume(line=token.line, cond=cond)]
        if self._check("symbol", "{"):
            return list(self._parse_block())
        if self._check("ident"):
            return [self._parse_simple_statement()]
        raise ParseError(f"unexpected token {token.text!r}", token.line)

    def _parse_local_declaration(self) -> ast.Stmt:
        token = self._expect("keyword", "int")
        name = self._expect("ident").text
        if self._accept("symbol", "["):
            size = int(self._expect("int").text)
            self._expect("symbol", "]")
            init: tuple[ast.Expr, ...] = ()
            if self._accept("symbol", "="):
                self._expect("symbol", "{")
                values = [self._parse_expr()]
                while self._accept("symbol", ","):
                    values.append(self._parse_expr())
                self._expect("symbol", "}")
                init = tuple(values)
            self._expect("symbol", ";")
            return ast.ArrayDecl(line=token.line, name=name, size=size, init=init)
        init_expr = None
        if self._accept("symbol", "="):
            init_expr = self._parse_expr()
        self._expect("symbol", ";")
        return ast.VarDecl(line=token.line, name=name, init=init_expr)

    def _parse_simple_statement(self) -> ast.Stmt:
        name_token = self._expect("ident")
        if self._accept("symbol", "="):
            value = self._parse_expr()
            self._expect("symbol", ";")
            return ast.Assign(line=name_token.line, name=name_token.text, value=value)
        if self._accept("symbol", "["):
            index = self._parse_expr()
            self._expect("symbol", "]")
            self._expect("symbol", "=")
            value = self._parse_expr()
            self._expect("symbol", ";")
            return ast.ArrayAssign(
                line=name_token.line, name=name_token.text, index=index, value=value
            )
        if self._check("symbol", "("):
            call = self._parse_call(name_token)
            self._expect("symbol", ";")
            if name_token.text == "print_int":
                if len(call.args) != 1:
                    raise ParseError("print_int takes exactly one argument", name_token.line)
                return ast.Print(line=name_token.line, value=call.args[0])
            return ast.ExprStmt(line=name_token.line, expr=call)
        raise ParseError(
            f"expected '=', '[' or '(' after identifier {name_token.text!r}",
            name_token.line,
        )

    # ----------------------------------------------------------- expressions

    def _parse_expr(self) -> ast.Expr:
        return self._parse_conditional()

    def _parse_conditional(self) -> ast.Expr:
        condition = self._parse_logical_or()
        if self._check("symbol", "?"):
            token = self._advance()
            then_expr = self._parse_expr()
            self._expect("symbol", ":")
            else_expr = self._parse_conditional()
            return ast.Conditional(
                line=token.line, cond=condition, then=then_expr, otherwise=else_expr
            )
        return condition

    def _parse_logical_or(self) -> ast.Expr:
        expr = self._parse_logical_and()
        while self._check("symbol", "||"):
            token = self._advance()
            right = self._parse_logical_and()
            expr = ast.BinaryOp(line=token.line, op="||", left=expr, right=right)
        return expr

    def _parse_logical_and(self) -> ast.Expr:
        expr = self._parse_equality()
        while self._check("symbol", "&&"):
            token = self._advance()
            right = self._parse_equality()
            expr = ast.BinaryOp(line=token.line, op="&&", left=expr, right=right)
        return expr

    def _parse_equality(self) -> ast.Expr:
        expr = self._parse_relational()
        while self._check("symbol", "==") or self._check("symbol", "!="):
            token = self._advance()
            right = self._parse_relational()
            expr = ast.BinaryOp(line=token.line, op=token.text, left=expr, right=right)
        return expr

    def _parse_relational(self) -> ast.Expr:
        expr = self._parse_additive()
        while any(self._check("symbol", op) for op in ("<", "<=", ">", ">=")):
            token = self._advance()
            right = self._parse_additive()
            expr = ast.BinaryOp(line=token.line, op=token.text, left=expr, right=right)
        return expr

    def _parse_additive(self) -> ast.Expr:
        expr = self._parse_multiplicative()
        while self._check("symbol", "+") or self._check("symbol", "-"):
            token = self._advance()
            right = self._parse_multiplicative()
            expr = ast.BinaryOp(line=token.line, op=token.text, left=expr, right=right)
        return expr

    def _parse_multiplicative(self) -> ast.Expr:
        expr = self._parse_unary()
        while any(self._check("symbol", op) for op in ("*", "/", "%")):
            token = self._advance()
            right = self._parse_unary()
            expr = ast.BinaryOp(line=token.line, op=token.text, left=expr, right=right)
        return expr

    def _parse_unary(self) -> ast.Expr:
        if self._check("symbol", "-") or self._check("symbol", "!"):
            token = self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(line=token.line, op=token.text, operand=operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if self._accept("symbol", "("):
            expr = self._parse_expr()
            self._expect("symbol", ")")
            return expr
        if self._check("int"):
            self._advance()
            return ast.IntLiteral(line=token.line, value=int(token.text))
        if self._accept("keyword", "true"):
            return ast.IntLiteral(line=token.line, value=1)
        if self._accept("keyword", "false"):
            return ast.IntLiteral(line=token.line, value=0)
        if self._check("ident"):
            name_token = self._advance()
            if self._check("symbol", "("):
                return self._parse_call(name_token)
            if self._accept("symbol", "["):
                index = self._parse_expr()
                self._expect("symbol", "]")
                return ast.ArrayRef(line=name_token.line, name=name_token.text, index=index)
            return ast.VarRef(line=name_token.line, name=name_token.text)
        raise ParseError(f"unexpected token {token.text!r} in expression", token.line)

    def _parse_call(self, name_token: Token) -> ast.Call:
        self._expect("symbol", "(")
        args: list[ast.Expr] = []
        if not self._check("symbol", ")"):
            args.append(self._parse_expr())
            while self._accept("symbol", ","):
                args.append(self._parse_expr())
        self._expect("symbol", ")")
        return ast.Call(line=name_token.line, name=name_token.text, args=tuple(args))
