"""The structured diagnostic type shared by the front end and the analyzer.

Every static complaint about a program — a parse error, a type error, or a
finding of the abstract-interpretation pass (`repro.analysis`) — is carried
as one :class:`Diagnostic`: a stable machine-readable ``code``, a severity
(``error`` rejects the program in the serving pipeline, ``warning`` merely
annotates the compiled artifact), the source line, the enclosing function
and a human-readable message.  Keeping the type here, below both ``lang``
and ``analysis``, lets the type checker and the dataflow analyzer report
through one shape without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

#: Diagnostics with this severity make a program unservable: the daemon
#: answers ``compile`` with a structured error instead of an artifact.
ERROR = "error"
WARNING = "warning"

_SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One structured finding about a program, anchored to a source line."""

    line: int
    severity: str
    code: str
    message: str
    function: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(f"unknown diagnostic severity {self.severity!r}")

    def render(self, name: str = "<program>") -> str:
        """The one-line human form used by ``python -m repro.analysis``."""
        where = f"{name}:{self.line}"
        scope = f" in {self.function}()" if self.function else ""
        return f"{where}: {self.severity}: [{self.code}] {self.message}{scope}"

    # --------------------------------------------------------------- codecs

    def to_wire(self) -> dict[str, Any]:
        return {
            "line": self.line,
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
            "function": self.function,
        }

    @classmethod
    def from_wire(cls, value: Mapping[str, Any]) -> "Diagnostic":
        return cls(
            line=int(value.get("line", 0)),
            severity=str(value.get("severity", ERROR)),
            code=str(value.get("code", "unknown")),
            message=str(value.get("message", "")),
            function=str(value.get("function", "")),
        )


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """True when any diagnostic is severe enough to reject the program."""
    return any(diag.severity == ERROR for diag in diagnostics)


def diagnostics_to_wire(diagnostics: Iterable[Diagnostic]) -> list[dict[str, Any]]:
    return [diag.to_wire() for diag in diagnostics]
