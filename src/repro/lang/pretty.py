"""Pretty printer: turn an AST back into compilable mini-C source.

Used to display repaired programs (Algorithm 2 mutates the AST and the
repair report shows the patched source) and in tests to check that
parse/print round-trips preserve programs.
"""

from __future__ import annotations

from repro.lang import ast

_INDENT = "    "


def format_expr(expr: ast.Expr) -> str:
    """Render an expression (fully parenthesised to avoid precedence issues)."""
    if isinstance(expr, ast.IntLiteral):
        return str(expr.value)
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.ArrayRef):
        return f"{expr.name}[{format_expr(expr.index)}]"
    if isinstance(expr, ast.UnaryOp):
        return f"{expr.op}({format_expr(expr.operand)})"
    if isinstance(expr, ast.BinaryOp):
        return f"({format_expr(expr.left)} {expr.op} {format_expr(expr.right)})"
    if isinstance(expr, ast.Conditional):
        return (
            f"({format_expr(expr.cond)} ? {format_expr(expr.then)}"
            f" : {format_expr(expr.otherwise)})"
        )
    if isinstance(expr, ast.Call):
        args = ", ".join(format_expr(arg) for arg in expr.args)
        return f"{expr.name}({args})"
    raise NotImplementedError(f"expression {type(expr).__name__}")


def format_stmt(stmt: ast.Stmt, indent: int = 0) -> list[str]:
    """Render a statement as a list of indented source lines."""
    pad = _INDENT * indent
    if isinstance(stmt, ast.VarDecl):
        if stmt.init is None:
            return [f"{pad}int {stmt.name};"]
        return [f"{pad}int {stmt.name} = {format_expr(stmt.init)};"]
    if isinstance(stmt, ast.ArrayDecl):
        if stmt.init:
            values = ", ".join(format_expr(value) for value in stmt.init)
            return [f"{pad}int {stmt.name}[{stmt.size}] = {{{values}}};"]
        return [f"{pad}int {stmt.name}[{stmt.size}];"]
    if isinstance(stmt, ast.Assign):
        return [f"{pad}{stmt.name} = {format_expr(stmt.value)};"]
    if isinstance(stmt, ast.ArrayAssign):
        return [
            f"{pad}{stmt.name}[{format_expr(stmt.index)}] = {format_expr(stmt.value)};"
        ]
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if ({format_expr(stmt.cond)}) {{"]
        for inner in stmt.then_body:
            lines.extend(format_stmt(inner, indent + 1))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.else_body:
                lines.extend(format_stmt(inner, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.While):
        lines = [f"{pad}while ({format_expr(stmt.cond)}) {{"]
        for inner in stmt.body:
            lines.extend(format_stmt(inner, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return [f"{pad}return;"]
        return [f"{pad}return {format_expr(stmt.value)};"]
    if isinstance(stmt, ast.Assert):
        return [f"{pad}assert({format_expr(stmt.cond)});"]
    if isinstance(stmt, ast.Assume):
        return [f"{pad}assume({format_expr(stmt.cond)});"]
    if isinstance(stmt, ast.ExprStmt):
        return [f"{pad}{format_expr(stmt.expr)};"]
    if isinstance(stmt, ast.Print):
        return [f"{pad}print_int({format_expr(stmt.value)});"]
    raise NotImplementedError(f"statement {type(stmt).__name__}")


def format_program(program: ast.Program) -> str:
    """Render a whole program back into mini-C source text."""
    lines: list[str] = []
    for decl in program.globals:
        lines.extend(format_stmt(decl))
    if program.globals:
        lines.append("")
    for function in program.functions.values():
        return_type = "int" if function.returns_value else "void"
        params = ", ".join(f"int {name}" for name in function.params)
        lines.append(f"{return_type} {function.name}({params}) {{")
        for stmt in function.body:
            lines.extend(format_stmt(stmt, 1))
        lines.append("}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
