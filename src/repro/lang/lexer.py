"""Tokenizer for the mini-C language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

KEYWORDS = {
    "int",
    "void",
    "if",
    "else",
    "while",
    "return",
    "assert",
    "assume",
    "true",
    "false",
}

# Multi-character operators must be matched before their prefixes.
SYMBOLS = [
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "<",
    ">",
    "=",
    "!",
    "+",
    "-",
    "*",
    "/",
    "%",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    "?",
    ":",
]


@dataclass(frozen=True)
class Token:
    """A lexical token with its source line."""

    kind: str  # "int", "ident", "keyword", "symbol", "eof"
    text: str
    line: int


class LexError(ValueError):
    """Raised on malformed input."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


def tokenize(source: str) -> list[Token]:
    """Turn source text into a token list terminated by an ``eof`` token."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    line = 1
    position = 0
    length = len(source)
    while position < length:
        char = source[position]
        if char == "\n":
            line += 1
            position += 1
            continue
        if char in " \t\r":
            position += 1
            continue
        if source.startswith("//", position):
            end = source.find("\n", position)
            position = length if end == -1 else end
            continue
        if source.startswith("/*", position):
            end = source.find("*/", position + 2)
            if end == -1:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", position, end)
            position = end + 2
            continue
        if char.isdigit():
            start = position
            while position < length and source[position].isdigit():
                position += 1
            yield Token("int", source[start:position], line)
            continue
        if char.isalpha() or char == "_":
            start = position
            while position < length and (source[position].isalnum() or source[position] == "_"):
                position += 1
            text = source[start:position]
            kind = "keyword" if text in KEYWORDS else "ident"
            yield Token(kind, text, line)
            continue
        for symbol in SYMBOLS:
            if source.startswith(symbol, position):
                yield Token("symbol", symbol, line)
                position += len(symbol)
                break
        else:
            raise LexError(f"unexpected character {char!r}", line)
    yield Token("eof", "", line)
