"""Shared fixed-width integer semantics.

The interpreter (concrete reference semantics) and the CNF encoder
(bit-precise symbolic semantics) must agree exactly on arithmetic, otherwise
the extended trace formula of a failing run might not be unsatisfiable.
Both sides therefore route every operation through this module.

Integers are ``width``-bit two's complement with silent wrap-around.
Division and modulo follow C semantics (truncation toward zero); division by
zero is *defined* here to yield 0 (and ``x % 0 == x``) so that the encoder
does not need partial functions — benchmark programs never rely on it.
"""

from __future__ import annotations

DEFAULT_WIDTH = 16


def wrap(value: int, width: int = DEFAULT_WIDTH) -> int:
    """Wrap an unbounded integer into ``width``-bit two's complement."""
    mask = (1 << width) - 1
    value &= mask
    if value >= 1 << (width - 1):
        value -= 1 << width
    return value


def to_unsigned(value: int, width: int = DEFAULT_WIDTH) -> int:
    """Two's-complement bit pattern of ``value`` as an unsigned integer."""
    return value & ((1 << width) - 1)


def truth(value: int) -> bool:
    """C truthiness: any non-zero value is true."""
    return value != 0


def apply_binary(op: str, left: int, right: int, width: int = DEFAULT_WIDTH) -> int:
    """Evaluate a binary operator with fixed-width wrap-around semantics."""
    if op == "+":
        return wrap(left + right, width)
    if op == "-":
        return wrap(left - right, width)
    if op == "*":
        return wrap(left * right, width)
    if op == "/":
        return wrap(_c_div(left, right), width)
    if op == "%":
        return wrap(_c_mod(left, right), width)
    if op == "<":
        return int(left < right)
    if op == "<=":
        return int(left <= right)
    if op == ">":
        return int(left > right)
    if op == ">=":
        return int(left >= right)
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "&&":
        return int(truth(left) and truth(right))
    if op == "||":
        return int(truth(left) or truth(right))
    raise ValueError(f"unknown binary operator {op!r}")


def apply_unary(op: str, operand: int, width: int = DEFAULT_WIDTH) -> int:
    """Evaluate a unary operator with fixed-width wrap-around semantics."""
    if op == "-":
        return wrap(-operand, width)
    if op == "!":
        return int(not truth(operand))
    raise ValueError(f"unknown unary operator {op!r}")


def _c_div(left: int, right: int) -> int:
    if right == 0:
        return 0
    quotient = abs(left) // abs(right)
    return quotient if (left >= 0) == (right >= 0) else -quotient


def _c_mod(left: int, right: int) -> int:
    if right == 0:
        return left
    return left - _c_div(left, right) * right
