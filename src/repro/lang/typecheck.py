"""A lightweight semantic checker for mini-C programs.

Everything in mini-C is an ``int``, so "type checking" here means checking
that names are declared, arrays are used as arrays, calls have the right
arity, and void functions do not return values.  The goal is to reject
malformed benchmark programs early with a clear message rather than failing
deep inside the encoder.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.diagnostics import ERROR, Diagnostic

BUILTIN_FUNCTIONS = {"nondet": 0}


class TypeError_(ValueError):
    """Raised when a program fails the semantic checks."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line
        self.bare_message = message

    def to_diagnostic(self) -> Diagnostic:
        """The structured form: type errors flow through the same
        :class:`~repro.lang.diagnostics.Diagnostic` shape as the
        ``repro.analysis`` findings, so the CLI and the serving pipeline
        render front-end and dataflow complaints identically."""
        return Diagnostic(
            line=self.line, severity=ERROR, code="type-error", message=self.bare_message
        )


def check_program(program: ast.Program) -> None:
    """Validate a parsed program, raising :class:`TypeError_` on problems."""
    global_scalars = {decl.name for decl in program.globals if isinstance(decl, ast.VarDecl)}
    global_arrays = {
        decl.name: decl.size for decl in program.globals if isinstance(decl, ast.ArrayDecl)
    }
    duplicate = global_scalars & set(global_arrays)
    if duplicate:
        raise TypeError_(f"names declared twice at global scope: {sorted(duplicate)}", 1)

    for function in program.functions.values():
        _check_function(program, function, global_scalars, set(global_arrays))


def _collect_locals(body: tuple[ast.Stmt, ...]) -> tuple[set[str], dict[str, int]]:
    scalars: set[str] = set()
    arrays: dict[str, int] = {}

    def visit(statements: tuple[ast.Stmt, ...]) -> None:
        for stmt in statements:
            if isinstance(stmt, ast.VarDecl):
                scalars.add(stmt.name)
            elif isinstance(stmt, ast.ArrayDecl):
                arrays[stmt.name] = stmt.size
            elif isinstance(stmt, ast.If):
                visit(stmt.then_body)
                visit(stmt.else_body)
            elif isinstance(stmt, ast.While):
                visit(stmt.body)

    visit(body)
    return scalars, arrays


def _check_function(
    program: ast.Program,
    function: ast.Function,
    global_scalars: set[str],
    global_arrays: set[str],
) -> None:
    local_scalars, local_arrays = _collect_locals(function.body)
    scalars = global_scalars | local_scalars | set(function.params)
    arrays = global_arrays | set(local_arrays)

    def check_expr(expr: ast.Expr) -> None:
        if isinstance(expr, ast.IntLiteral):
            return
        if isinstance(expr, ast.VarRef):
            if expr.name not in scalars:
                if expr.name in arrays:
                    raise TypeError_(
                        f"array {expr.name!r} used without an index", expr.line
                    )
                raise TypeError_(f"undeclared variable {expr.name!r}", expr.line)
            return
        if isinstance(expr, ast.ArrayRef):
            if expr.name not in arrays:
                raise TypeError_(f"undeclared array {expr.name!r}", expr.line)
            check_expr(expr.index)
            return
        if isinstance(expr, ast.UnaryOp):
            if expr.op not in ("-", "!"):
                raise TypeError_(f"unknown unary operator {expr.op!r}", expr.line)
            check_expr(expr.operand)
            return
        if isinstance(expr, ast.BinaryOp):
            if expr.op not in ast.ALL_BINARY_OPS:
                raise TypeError_(f"unknown operator {expr.op!r}", expr.line)
            check_expr(expr.left)
            check_expr(expr.right)
            return
        if isinstance(expr, ast.Conditional):
            check_expr(expr.cond)
            check_expr(expr.then)
            check_expr(expr.otherwise)
            return
        if isinstance(expr, ast.Call):
            if expr.name in BUILTIN_FUNCTIONS:
                expected = BUILTIN_FUNCTIONS[expr.name]
                if len(expr.args) != expected:
                    raise TypeError_(
                        f"builtin {expr.name!r} takes {expected} arguments", expr.line
                    )
            elif expr.name in program.functions:
                callee = program.functions[expr.name]
                if len(expr.args) != len(callee.params):
                    raise TypeError_(
                        f"call to {expr.name!r} with {len(expr.args)} arguments, "
                        f"expected {len(callee.params)}",
                        expr.line,
                    )
            else:
                raise TypeError_(f"call to undefined function {expr.name!r}", expr.line)
            for arg in expr.args:
                check_expr(arg)
            return
        raise TypeError_(f"unknown expression node {type(expr).__name__}", expr.line)

    def check_stmt(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                check_expr(stmt.init)
        elif isinstance(stmt, ast.ArrayDecl):
            for value in stmt.init:
                check_expr(value)
        elif isinstance(stmt, ast.Assign):
            if stmt.name not in scalars:
                raise TypeError_(f"assignment to undeclared variable {stmt.name!r}", stmt.line)
            check_expr(stmt.value)
        elif isinstance(stmt, ast.ArrayAssign):
            if stmt.name not in arrays:
                raise TypeError_(f"assignment to undeclared array {stmt.name!r}", stmt.line)
            check_expr(stmt.index)
            check_expr(stmt.value)
        elif isinstance(stmt, ast.If):
            check_expr(stmt.cond)
            for inner in stmt.then_body:
                check_stmt(inner)
            for inner in stmt.else_body:
                check_stmt(inner)
        elif isinstance(stmt, ast.While):
            check_expr(stmt.cond)
            for inner in stmt.body:
                check_stmt(inner)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                if not function.returns_value:
                    raise TypeError_(
                        f"void function {function.name!r} returns a value", stmt.line
                    )
                check_expr(stmt.value)
        elif isinstance(stmt, (ast.Assert, ast.Assume)):
            check_expr(stmt.cond)
        elif isinstance(stmt, ast.ExprStmt):
            check_expr(stmt.expr)
        elif isinstance(stmt, ast.Print):
            check_expr(stmt.value)
        else:
            raise TypeError_(f"unknown statement node {type(stmt).__name__}", stmt.line)

    for stmt in function.body:
        check_stmt(stmt)
