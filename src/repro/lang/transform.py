"""AST transformations used by the automated-repair extension.

Algorithm 2 of the paper repairs off-by-one errors by taking a reported bug
line that contains a constant ``k`` and producing two patched programs with
``k + 1`` and ``k - 1``.  The same machinery supports operator replacement
(``<`` for ``<=``, ``+`` for ``-`` and so on), which the paper mentions as a
further class of common programmer errors.

All transformations are *pure*: they return a new :class:`Program` and never
mutate the input AST (statements and expressions are frozen dataclasses).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from repro.lang import ast

# Operator substitution candidates, following the paper's examples: confusing
# a comparison with its neighbour, plus with minus, etc.
OPERATOR_ALTERNATIVES: dict[str, tuple[str, ...]] = {
    "<": ("<=", ">"),
    "<=": ("<", ">="),
    ">": (">=", "<"),
    ">=": (">", "<="),
    "==": ("!=",),
    "!=": ("==",),
    "+": ("-",),
    "-": ("+",),
    "*": ("/",),
    "/": ("*",),
    "&&": ("||",),
    "||": ("&&",),
}


def constants_on_line(program: ast.Program, line: int) -> list[int]:
    """All integer literals appearing in statements on the given source line."""
    constants: list[int] = []

    def visit_expr(expr: ast.Expr) -> None:
        if isinstance(expr, ast.IntLiteral):
            constants.append(expr.value)
        elif isinstance(expr, ast.UnaryOp):
            visit_expr(expr.operand)
        elif isinstance(expr, ast.BinaryOp):
            visit_expr(expr.left)
            visit_expr(expr.right)
        elif isinstance(expr, ast.Conditional):
            visit_expr(expr.cond)
            visit_expr(expr.then)
            visit_expr(expr.otherwise)
        elif isinstance(expr, ast.Call):
            for arg in expr.args:
                visit_expr(arg)
        elif isinstance(expr, ast.ArrayRef):
            visit_expr(expr.index)

    for expr, expr_line in _expressions_with_lines(program):
        if expr_line == line:
            visit_expr(expr)
    return constants


def operators_on_line(program: ast.Program, line: int) -> list[str]:
    """All binary operators appearing in statements on the given source line."""
    operators: list[str] = []

    def visit_expr(expr: ast.Expr) -> None:
        if isinstance(expr, ast.BinaryOp):
            operators.append(expr.op)
            visit_expr(expr.left)
            visit_expr(expr.right)
        elif isinstance(expr, ast.UnaryOp):
            visit_expr(expr.operand)
        elif isinstance(expr, ast.Conditional):
            visit_expr(expr.cond)
            visit_expr(expr.then)
            visit_expr(expr.otherwise)
        elif isinstance(expr, ast.Call):
            for arg in expr.args:
                visit_expr(arg)
        elif isinstance(expr, ast.ArrayRef):
            visit_expr(expr.index)

    for expr, expr_line in _expressions_with_lines(program):
        if expr_line == line:
            visit_expr(expr)
    return operators


def replace_constant_on_line(
    program: ast.Program, line: int, old_value: int, new_value: int
) -> ast.Program:
    """Return a copy of ``program`` with one constant on ``line`` replaced.

    Every occurrence of the literal ``old_value`` inside statements whose
    source line is ``line`` is replaced by ``new_value``.
    """

    def rewrite(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.IntLiteral) and expr.value == old_value:
            return replace(expr, value=new_value)
        return expr

    return _rewrite_program(program, line, rewrite)


def replace_operator_on_line(
    program: ast.Program, line: int, old_op: str, new_op: str
) -> ast.Program:
    """Return a copy of ``program`` with operator ``old_op`` on ``line`` replaced."""

    def rewrite(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.BinaryOp) and expr.op == old_op:
            return replace(expr, op=new_op)
        return expr

    return _rewrite_program(program, line, rewrite)


# ----------------------------------------------------------------- internals


def _expressions_with_lines(program: ast.Program) -> list[tuple[ast.Expr, int]]:
    pairs: list[tuple[ast.Expr, int]] = []

    def visit_stmt(stmt: ast.Stmt) -> None:
        for expr in _statement_expressions(stmt):
            pairs.append((expr, stmt.line))
        if isinstance(stmt, ast.If):
            for inner in stmt.then_body + stmt.else_body:
                visit_stmt(inner)
        elif isinstance(stmt, ast.While):
            for inner in stmt.body:
                visit_stmt(inner)

    for function in program.functions.values():
        for stmt in function.body:
            visit_stmt(stmt)
    for decl in program.globals:
        for expr in _statement_expressions(decl):
            pairs.append((expr, decl.line))
    return pairs


def _statement_expressions(stmt: ast.Stmt) -> tuple[ast.Expr, ...]:
    if isinstance(stmt, ast.VarDecl):
        return (stmt.init,) if stmt.init is not None else ()
    if isinstance(stmt, ast.ArrayDecl):
        return stmt.init
    if isinstance(stmt, ast.Assign):
        return (stmt.value,)
    if isinstance(stmt, ast.ArrayAssign):
        return (stmt.index, stmt.value)
    if isinstance(stmt, (ast.If, ast.While)):
        return (stmt.cond,)
    if isinstance(stmt, ast.Return):
        return (stmt.value,) if stmt.value is not None else ()
    if isinstance(stmt, (ast.Assert, ast.Assume)):
        return (stmt.cond,)
    if isinstance(stmt, ast.ExprStmt):
        return (stmt.expr,)
    if isinstance(stmt, ast.Print):
        return (stmt.value,)
    return ()


def _rewrite_program(
    program: ast.Program, line: int, rewrite: Callable[[ast.Expr], ast.Expr]
) -> ast.Program:
    def rewrite_expr(expr: Optional[ast.Expr], active: bool) -> Optional[ast.Expr]:
        if expr is None:
            return None
        if not active:
            return expr
        expr = rewrite(expr)
        if isinstance(expr, ast.UnaryOp):
            return replace(expr, operand=rewrite_expr(expr.operand, active))
        if isinstance(expr, ast.BinaryOp):
            return replace(
                expr,
                left=rewrite_expr(expr.left, active),
                right=rewrite_expr(expr.right, active),
            )
        if isinstance(expr, ast.Conditional):
            return replace(
                expr,
                cond=rewrite_expr(expr.cond, active),
                then=rewrite_expr(expr.then, active),
                otherwise=rewrite_expr(expr.otherwise, active),
            )
        if isinstance(expr, ast.Call):
            return replace(
                expr, args=tuple(rewrite_expr(arg, active) for arg in expr.args)
            )
        if isinstance(expr, ast.ArrayRef):
            return replace(expr, index=rewrite_expr(expr.index, active))
        return expr

    def rewrite_stmt(stmt: ast.Stmt) -> ast.Stmt:
        active = stmt.line == line
        if isinstance(stmt, ast.VarDecl):
            return replace(stmt, init=rewrite_expr(stmt.init, active))
        if isinstance(stmt, ast.ArrayDecl):
            return replace(
                stmt, init=tuple(rewrite_expr(expr, active) for expr in stmt.init)
            )
        if isinstance(stmt, ast.Assign):
            return replace(stmt, value=rewrite_expr(stmt.value, active))
        if isinstance(stmt, ast.ArrayAssign):
            return replace(
                stmt,
                index=rewrite_expr(stmt.index, active),
                value=rewrite_expr(stmt.value, active),
            )
        if isinstance(stmt, ast.If):
            return replace(
                stmt,
                cond=rewrite_expr(stmt.cond, active),
                then_body=tuple(rewrite_stmt(inner) for inner in stmt.then_body),
                else_body=tuple(rewrite_stmt(inner) for inner in stmt.else_body),
            )
        if isinstance(stmt, ast.While):
            return replace(
                stmt,
                cond=rewrite_expr(stmt.cond, active),
                body=tuple(rewrite_stmt(inner) for inner in stmt.body),
            )
        if isinstance(stmt, ast.Return):
            return replace(stmt, value=rewrite_expr(stmt.value, active))
        if isinstance(stmt, (ast.Assert, ast.Assume)):
            return replace(stmt, cond=rewrite_expr(stmt.cond, active))
        if isinstance(stmt, ast.ExprStmt):
            return replace(stmt, expr=rewrite_expr(stmt.expr, active))
        if isinstance(stmt, ast.Print):
            return replace(stmt, value=rewrite_expr(stmt.value, active))
        return stmt

    patched = ast.Program(
        globals=[rewrite_stmt(decl) for decl in program.globals],
        functions={
            name: ast.Function(
                name=function.name,
                params=function.params,
                body=tuple(rewrite_stmt(stmt) for stmt in function.body),
                returns_value=function.returns_value,
                line=function.line,
            )
            for name, function in program.functions.items()
        },
        source=program.source,
        name=program.name,
    )
    return patched
