"""Abstract syntax tree for the mini-C language.

Every node carries the 1-based source ``line`` it came from: BugAssist
reports fault locations as line numbers, so line information is preserved
through parsing, trace generation and CNF encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# --------------------------------------------------------------- expressions


@dataclass(frozen=True)
class Expr:
    """Base class for expressions."""

    line: int


@dataclass(frozen=True)
class IntLiteral(Expr):
    """An integer constant."""

    value: int = 0


@dataclass(frozen=True)
class VarRef(Expr):
    """A reference to a scalar variable."""

    name: str = ""


@dataclass(frozen=True)
class ArrayRef(Expr):
    """An array element read ``name[index]``."""

    name: str = ""
    index: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class UnaryOp(Expr):
    """A unary operation: ``-e`` or ``!e``."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class BinaryOp(Expr):
    """A binary operation over two sub-expressions."""

    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Conditional(Expr):
    """The ternary conditional ``cond ? then : otherwise``."""

    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    otherwise: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Call(Expr):
    """A function call expression."""

    name: str = ""
    args: tuple[Expr, ...] = ()


ARITHMETIC_OPS = ("+", "-", "*", "/", "%")
COMPARISON_OPS = ("<", "<=", ">", ">=", "==", "!=")
LOGICAL_OPS = ("&&", "||")
ALL_BINARY_OPS = ARITHMETIC_OPS + COMPARISON_OPS + LOGICAL_OPS


# ---------------------------------------------------------------- statements


@dataclass(frozen=True)
class Stmt:
    """Base class for statements."""

    line: int


@dataclass(frozen=True)
class VarDecl(Stmt):
    """A local or global scalar declaration ``int x;`` or ``int x = e;``."""

    name: str = ""
    init: Optional[Expr] = None


@dataclass(frozen=True)
class ArrayDecl(Stmt):
    """An array declaration ``int a[N];`` with optional initializer list."""

    name: str = ""
    size: int = 0
    init: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class Assign(Stmt):
    """A scalar assignment ``x = e;``."""

    name: str = ""
    value: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ArrayAssign(Stmt):
    """An array element assignment ``a[i] = e;``."""

    name: str = ""
    index: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class If(Stmt):
    """An ``if``/``else`` statement."""

    cond: Expr = None  # type: ignore[assignment]
    then_body: tuple["Stmt", ...] = ()
    else_body: tuple["Stmt", ...] = ()


@dataclass(frozen=True)
class While(Stmt):
    """A ``while`` loop."""

    cond: Expr = None  # type: ignore[assignment]
    body: tuple["Stmt", ...] = ()


@dataclass(frozen=True)
class Return(Stmt):
    """A ``return`` statement (value optional for void functions)."""

    value: Optional[Expr] = None


@dataclass(frozen=True)
class Assert(Stmt):
    """An ``assert(e);`` statement — the correctness property."""

    cond: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Assume(Stmt):
    """An ``assume(e);`` statement constraining feasible executions."""

    cond: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """An expression evaluated for effect (a call) ``f(a, b);``."""

    expr: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Print(Stmt):
    """``print_int(e);`` — appends a value to the observable output."""

    value: Expr = None  # type: ignore[assignment]


# --------------------------------------------------------------- top level


@dataclass(frozen=True)
class Function:
    """A function definition."""

    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]
    returns_value: bool
    line: int


@dataclass
class Program:
    """A parsed mini-C translation unit."""

    globals: list[Union[VarDecl, ArrayDecl]] = field(default_factory=list)
    functions: dict[str, Function] = field(default_factory=dict)
    source: str = ""
    name: str = "<program>"

    def function(self, name: str) -> Function:
        """Look up a function, raising ``KeyError`` with a helpful message."""
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"program {self.name!r} has no function {name!r}") from None

    @property
    def main(self) -> Function:
        """The entry point."""
        return self.function("main")

    def lines_of_code(self) -> int:
        """Number of non-blank source lines (the paper's LOC# metric)."""
        return sum(1 for line in self.source.splitlines() if line.strip())

    def statement_lines(self) -> set[int]:
        """The set of source lines that contain executable statements."""
        lines: set[int] = set()

        def visit(statements: tuple[Stmt, ...]) -> None:
            for stmt in statements:
                lines.add(stmt.line)
                if isinstance(stmt, If):
                    visit(stmt.then_body)
                    visit(stmt.else_body)
                elif isinstance(stmt, While):
                    visit(stmt.body)

        for function in self.functions.values():
            visit(function.body)
        return lines
