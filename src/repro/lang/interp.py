"""Concrete reference interpreter for mini-C.

The interpreter plays three roles in the reproduction:

* it produces the **golden outputs** used as correctness specifications for
  the Siemens-style benchmarks (run the original program on every test),
* it classifies tests as passing or failing for faulty program versions,
* it validates candidate repairs (Algorithm 2 re-checks the failing test on
  the patched program).

Semantics match the CNF encoder exactly: fixed-width two's-complement
integers (see :mod:`repro.lang.semantics`), C-style truthiness, and implicit
array-bounds assertions when ``check_bounds`` is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.lang import ast
from repro.lang.semantics import DEFAULT_WIDTH, apply_binary, apply_unary, truth, wrap


class RuntimeBudgetExceeded(RuntimeError):
    """Raised when an execution exceeds the configured step budget."""


class AssertionFailure(Exception):
    """Raised internally to unwind on assertion / bounds violations."""

    def __init__(self, line: int, kind: str) -> None:
        super().__init__(f"{kind} violated at line {line}")
        self.line = line
        self.kind = kind


class _AssumptionViolated(Exception):
    """Raised internally when an assume() turns out false."""

    def __init__(self, line: int) -> None:
        super().__init__(f"assumption violated at line {line}")
        self.line = line


class _ReturnValue(Exception):
    """Internal non-local exit carrying a function's return value."""

    def __init__(self, value: Optional[int]) -> None:
        super().__init__("return")
        self.value = value


@dataclass
class ExecutionResult:
    """Observable outcome of one program run."""

    outputs: list[int] = field(default_factory=list)
    return_value: Optional[int] = None
    assertion_failed: bool = False
    failed_line: Optional[int] = None
    failure_kind: Optional[str] = None
    assumption_violated: bool = False
    steps: int = 0

    @property
    def observable(self) -> tuple[int, ...]:
        """Printed values plus the return value — the program's "output"."""
        values = list(self.outputs)
        if self.return_value is not None:
            values.append(self.return_value)
        return tuple(values)

    @property
    def passed(self) -> bool:
        """True when the run finished without violating an assertion."""
        return not self.assertion_failed


class Interpreter:
    """Executes a mini-C program on concrete inputs."""

    def __init__(
        self,
        program: ast.Program,
        width: int = DEFAULT_WIDTH,
        max_steps: int = 200_000,
        check_bounds: bool = False,
    ) -> None:
        self.program = program
        self.width = width
        self.max_steps = max_steps
        self.check_bounds = check_bounds

    # ------------------------------------------------------------------ API

    def run(
        self,
        inputs: Sequence[int] | Mapping[str, int] = (),
        entry: str = "main",
        nondet_values: Sequence[int] = (),
    ) -> ExecutionResult:
        """Run ``entry`` on the given inputs and return the execution result.

        ``inputs`` may be a positional sequence matching the entry function's
        parameters or a name-to-value mapping.  ``nondet_values`` feeds
        successive ``nondet()`` calls (defaulting to 0 when exhausted).
        """
        function = self.program.function(entry)
        arguments = self._bind_inputs(function, inputs)
        result = ExecutionResult()
        state = _State(result, list(nondet_values), self.max_steps)
        globals_env = self._initialize_globals(state)
        try:
            value = self._call(function, arguments, globals_env, state)
            result.return_value = value
        except AssertionFailure as failure:
            result.assertion_failed = True
            result.failed_line = failure.line
            result.failure_kind = failure.kind
        except _AssumptionViolated:
            result.assumption_violated = True
        result.steps = state.steps
        return result

    # ------------------------------------------------------------- plumbing

    def _bind_inputs(
        self, function: ast.Function, inputs: Sequence[int] | Mapping[str, int]
    ) -> dict[str, int]:
        if isinstance(inputs, Mapping):
            missing = [name for name in function.params if name not in inputs]
            if missing:
                raise ValueError(f"missing inputs for parameters {missing}")
            return {name: wrap(int(inputs[name]), self.width) for name in function.params}
        values = list(inputs)
        if len(values) != len(function.params):
            raise ValueError(
                f"{function.name} expects {len(function.params)} inputs, got {len(values)}"
            )
        return {
            name: wrap(int(value), self.width)
            for name, value in zip(function.params, values)
        }

    def _initialize_globals(self, state: "_State") -> dict[str, object]:
        env: dict[str, object] = {}
        for decl in self.program.globals:
            if isinstance(decl, ast.VarDecl):
                value = 0
                if decl.init is not None:
                    value = self._eval(decl.init, env, env, state)
                env[decl.name] = value
            else:
                values = [0] * decl.size
                for index, expr in enumerate(decl.init):
                    values[index] = self._eval(expr, env, env, state)
                env[decl.name] = values
        return env

    def _call(
        self,
        function: ast.Function,
        arguments: dict[str, int],
        globals_env: dict[str, object],
        state: "_State",
    ) -> Optional[int]:
        local_env: dict[str, object] = dict(arguments)
        try:
            self._exec_block(function.body, local_env, globals_env, state)
        except _ReturnValue as ret:
            return ret.value
        return 0 if function.returns_value else None

    def _exec_block(
        self,
        statements: tuple[ast.Stmt, ...],
        env: dict[str, object],
        globals_env: dict[str, object],
        state: "_State",
    ) -> None:
        for stmt in statements:
            self._exec(stmt, env, globals_env, state)

    def _exec(
        self,
        stmt: ast.Stmt,
        env: dict[str, object],
        globals_env: dict[str, object],
        state: "_State",
    ) -> None:
        state.tick()
        if isinstance(stmt, ast.VarDecl):
            env[stmt.name] = (
                self._eval(stmt.init, env, globals_env, state) if stmt.init is not None else 0
            )
        elif isinstance(stmt, ast.ArrayDecl):
            values = [0] * stmt.size
            for index, expr in enumerate(stmt.init):
                values[index] = self._eval(expr, env, globals_env, state)
            env[stmt.name] = values
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env, globals_env, state)
            self._store(stmt.name, value, env, globals_env)
        elif isinstance(stmt, ast.ArrayAssign):
            index = self._eval(stmt.index, env, globals_env, state)
            value = self._eval(stmt.value, env, globals_env, state)
            array = self._lookup_array(stmt.name, stmt.line, env, globals_env)
            if index < 0 or index >= len(array):
                if self.check_bounds:
                    raise AssertionFailure(stmt.line, "array bounds")
                return
            array[index] = value
        elif isinstance(stmt, ast.If):
            condition = self._eval(stmt.cond, env, globals_env, state)
            body = stmt.then_body if truth(condition) else stmt.else_body
            self._exec_block(body, env, globals_env, state)
        elif isinstance(stmt, ast.While):
            while truth(self._eval(stmt.cond, env, globals_env, state)):
                state.tick()
                self._exec_block(stmt.body, env, globals_env, state)
        elif isinstance(stmt, ast.Return):
            value = (
                self._eval(stmt.value, env, globals_env, state)
                if stmt.value is not None
                else None
            )
            raise _ReturnValue(value)
        elif isinstance(stmt, ast.Assert):
            if not truth(self._eval(stmt.cond, env, globals_env, state)):
                raise AssertionFailure(stmt.line, "assertion")
        elif isinstance(stmt, ast.Assume):
            if not truth(self._eval(stmt.cond, env, globals_env, state)):
                raise _AssumptionViolated(stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, env, globals_env, state)
        elif isinstance(stmt, ast.Print):
            state.result.outputs.append(self._eval(stmt.value, env, globals_env, state))
        else:  # pragma: no cover - defensive
            raise NotImplementedError(f"statement {type(stmt).__name__}")

    def _store(
        self, name: str, value: int, env: dict[str, object], globals_env: dict[str, object]
    ) -> None:
        if name in env:
            env[name] = value
        elif name in globals_env:
            globals_env[name] = value
        else:
            env[name] = value

    def _lookup_array(
        self, name: str, line: int, env: dict[str, object], globals_env: dict[str, object]
    ) -> list[int]:
        for scope in (env, globals_env):
            value = scope.get(name)
            if isinstance(value, list):
                return value
        raise AssertionFailure(line, f"undeclared array {name!r}")

    def _eval(
        self,
        expr: ast.Expr,
        env: dict[str, object],
        globals_env: dict[str, object],
        state: "_State",
    ) -> int:
        state.tick()
        if isinstance(expr, ast.IntLiteral):
            return wrap(expr.value, self.width)
        if isinstance(expr, ast.VarRef):
            for scope in (env, globals_env):
                if expr.name in scope:
                    value = scope[expr.name]
                    if isinstance(value, list):
                        raise AssertionFailure(expr.line, f"array {expr.name!r} used as scalar")
                    return value
            raise AssertionFailure(expr.line, f"undeclared variable {expr.name!r}")
        if isinstance(expr, ast.ArrayRef):
            index = self._eval(expr.index, env, globals_env, state)
            array = self._lookup_array(expr.name, expr.line, env, globals_env)
            if index < 0 or index >= len(array):
                if self.check_bounds:
                    raise AssertionFailure(expr.line, "array bounds")
                return 0
            return array[index]
        if isinstance(expr, ast.UnaryOp):
            return apply_unary(expr.op, self._eval(expr.operand, env, globals_env, state), self.width)
        if isinstance(expr, ast.BinaryOp):
            left = self._eval(expr.left, env, globals_env, state)
            if expr.op == "&&" and not truth(left):
                return 0
            if expr.op == "||" and truth(left):
                return 1
            right = self._eval(expr.right, env, globals_env, state)
            return apply_binary(expr.op, left, right, self.width)
        if isinstance(expr, ast.Conditional):
            condition = self._eval(expr.cond, env, globals_env, state)
            branch = expr.then if truth(condition) else expr.otherwise
            return self._eval(branch, env, globals_env, state)
        if isinstance(expr, ast.Call):
            if expr.name == "nondet":
                return wrap(state.next_nondet(), self.width)
            callee = self.program.function(expr.name)
            arguments = {
                name: self._eval(arg, env, globals_env, state)
                for name, arg in zip(callee.params, expr.args)
            }
            value = self._call(callee, arguments, globals_env, state)
            return value if value is not None else 0
        raise NotImplementedError(f"expression {type(expr).__name__}")  # pragma: no cover


@dataclass
class _State:
    """Mutable per-run bookkeeping shared across the call tree."""

    result: ExecutionResult
    nondet_values: list[int]
    max_steps: int
    steps: int = 0
    nondet_index: int = 0

    def tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise RuntimeBudgetExceeded(
                f"execution exceeded {self.max_steps} steps (possible infinite loop)"
            )

    def next_nondet(self) -> int:
        if self.nondet_index < len(self.nondet_values):
            value = self.nondet_values[self.nondet_index]
            self.nondet_index += 1
            return value
        return 0
