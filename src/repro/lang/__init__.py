"""The mini-C language front-end.

BugAssist analyses C programs through CBMC.  This reproduction replaces CBMC
with a self-contained front-end for *mini-C*, a C subset rich enough for the
Siemens-style benchmarks the paper evaluates on:

* ``int`` scalars and fixed-size ``int`` arrays (globals and locals),
* functions with ``int`` parameters and ``int``/``void`` results,
* ``if``/``else``, ``while``, ``return``, ``assert``, ``assume``,
* the usual arithmetic, comparison, logical and conditional operators,
* ``nondet()`` for unconstrained inputs and ``print_int(e)`` for observable
  output (the "golden output" of a run).

Public entry points: :func:`parse_program`, :class:`Interpreter`, and the
AST node classes in :mod:`repro.lang.ast`.
"""

from repro.lang.parser import parse_program, ParseError
from repro.lang.diagnostics import Diagnostic, has_errors
from repro.lang.typecheck import check_program, TypeError_ as TypeCheckError
from repro.lang.interp import Interpreter, ExecutionResult, AssertionFailure, RuntimeBudgetExceeded

__all__ = [
    "parse_program",
    "ParseError",
    "Diagnostic",
    "has_errors",
    "check_program",
    "TypeCheckError",
    "Interpreter",
    "ExecutionResult",
    "AssertionFailure",
    "RuntimeBudgetExceeded",
]
