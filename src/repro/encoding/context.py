"""Variable allocation and clause routing for the trace-formula encoding."""

from __future__ import annotations

import gc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro import obs
from repro.encoding import arena as _arena
from repro.encoding.arena import GateArena


@dataclass(frozen=True, order=True)
class StatementGroup:
    """Identity of one clause group (Section 3.4).

    A group corresponds to one program statement: all clauses arising from
    the statement share one selector variable and are enabled or disabled
    together.  For the loop-debugging extension (Section 5.2) the group also
    carries the loop-unrolling ``iteration`` so the same source line gets a
    distinct selector per iteration.
    """

    line: int
    function: str = ""
    iteration: Optional[int] = None

    def describe(self) -> str:
        parts = [f"line {self.line}"]
        if self.function:
            parts.append(f"in {self.function}()")
        if self.iteration is not None:
            parts.append(f"iteration {self.iteration}")
        return " ".join(parts)


class EncodingContext:
    """Allocates CNF variables and routes emitted clauses.

    Clauses are routed either into the *hard* set (test-input constraints,
    the asserted post-condition, auxiliary structure) or into the clause
    group of the statement currently being encoded.  Which destination is
    active is controlled with the :meth:`group` context manager.

    *Gate* clauses — the Tseitin definitions emitted by the structure-hashed
    :class:`~repro.encoding.circuits.CircuitBuilder` — are routed into the
    hard set through :meth:`emit_gate` regardless of the active group.  A
    gate definition is total (it has a solution for every assignment to its
    inputs, the output being a fresh variable), so making it hard never
    constrains the program variables; it only allows one shared gate to be
    referenced from several statement groups without tying those groups'
    relaxation together.  The relaxable part of a statement — its output
    bindings, branch units and assumptions — still goes through
    :meth:`emit` and stays owned by the statement's group.
    """

    def __init__(self, width: int = 16) -> None:
        self.width = width
        self.num_vars = 0
        self.hard: list[list[int]] = []
        self.groups: dict[StatementGroup, list[list[int]]] = {}
        self._current: Optional[StatementGroup] = None
        self._true_lit: Optional[int] = None
        # Structure-hashing statistics, maintained by the CircuitBuilder.
        self.gates_emitted = 0
        self.gate_hits = 0
        # Rolling FNV-1a hash over the canonical gate keys: a structural
        # signature of the circuit, used to key cross-test core archives.
        self._sig = 0xCBF29CE484222325
        # Emission journal (None = off).  When enabled, every variable
        # allocation, clause emission, gate-cache insertion and group
        # creation is appended as a compact event tuple, in emission order.
        # The journal is what lets :mod:`repro.bmc.splice` replay this exact
        # encoding against a later program version, re-encoding only the
        # changed regions.  Clause events reference the *same* list objects
        # held in ``hard``/``groups``, so pickling an artifact stores each
        # clause once.
        self.journal: Optional[list[tuple]] = None
        self.group_table: list[StatementGroup] = []
        self._group_ids: dict[StatementGroup, int] = {}
        self._pending_vars = 0

    # -------------------------------------------------------------- journal

    def begin_journal(self) -> None:
        """Start recording the emission journal (must precede any emission)."""
        self.journal = []
        self.group_table = []
        self._group_ids = {}
        self._pending_vars = 0

    def _flush_vars(self) -> None:
        if self._pending_vars:
            self.journal.append(("v", self._pending_vars))
            self._pending_vars = 0

    def record(self, event: tuple) -> None:
        """Append a caller-defined event (no-op when the journal is off)."""
        if self.journal is not None:
            self._flush_vars()
            self.journal.append(event)

    @property
    def journaling(self) -> bool:
        """True while emissions are being journaled.

        Producers must consult this (not ``journal is not None``) before
        *constructing* an event tuple for :meth:`record`: the arena-backed
        context exposes ``journal`` only after :meth:`finalize`, and when
        journaling is off entirely the event tuples would be pure waste.
        """
        return self.journal is not None

    def finalize(self) -> None:
        """Seal the encoding (no-op here; the arena context materializes)."""

    def group_id(self, group: StatementGroup) -> int:
        """Index of ``group`` in the journal's group table (registering it)."""
        index = self._group_ids.get(group)
        if index is None:
            index = len(self.group_table)
            self._group_ids[group] = index
            self.group_table.append(group)
        return index

    # ------------------------------------------------------------ variables

    def new_var(self) -> int:
        """Allocate a fresh CNF variable."""
        self.num_vars += 1
        if self.journal is not None:
            self._pending_vars += 1
        return self.num_vars

    @property
    def true_lit(self) -> int:
        """A literal constrained (by a hard unit clause) to be true."""
        if self._true_lit is None:
            self._true_lit = self.new_var()
            self.hard.append([self._true_lit])
            if self.journal is not None:
                # The variable is owned by the "t" event (replay allocates
                # it when setting up the constant), not by a "v" run.
                self._pending_vars -= 1
                self.record(("t", self._true_lit))
        return self._true_lit

    # -------------------------------------------------------------- clauses

    def emit(self, clause: list[int]) -> None:
        """Emit a clause into the hard set or the active statement group."""
        if self._current is None:
            self.hard.append(clause)
            if self.journal is not None:
                self._flush_vars()
                self.journal.append(("c", -1, clause))
        else:
            self.groups.setdefault(self._current, []).append(clause)
            if self.journal is not None:
                self._flush_vars()
                self.journal.append(("c", self.group_id(self._current), clause))

    def emit_hard(self, clause: list[int]) -> None:
        """Emit a clause into the hard set regardless of the active group."""
        self.hard.append(clause)
        if self.journal is not None:
            self._flush_vars()
            self.journal.append(("c", -1, clause))

    def emit_gate(self, clause: list[int]) -> None:
        """Emit one clause of a (total) gate definition into the hard set."""
        self.hard.append(clause)
        if self.journal is not None:
            self._flush_vars()
            self.journal.append(("c", -1, clause))

    def observe_gate(self, op: int, a: int, b: int, out: int, nclauses: int) -> None:
        """Fold one canonical gate key into the structural signature.

        Called *before* the gate's ``nclauses`` definition clauses are
        emitted, with ``out`` the variable allocated immediately beforehand.
        The journal excludes ``out`` from the pending "v" run (the "g" event
        owns it) and records the clause count — that is what lets a replay
        elide the whole insertion when the remapped key hits a live gate
        cache, exactly as a cold encode of the new version would have.
        """
        sig = self._sig
        for word in (op, a, b, out):
            sig = ((sig ^ (word & 0xFFFFFFFF)) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        self._sig = sig
        if self.journal is not None:
            # The canonical (op, a, b) key is exactly the gate-cache key the
            # CircuitBuilder just inserted; recording it lets a replay
            # rebuild the cache (and the signature) under a variable remap.
            self._pending_vars -= 1
            self._flush_vars()
            self.journal.append(("g", op, a, b, out, nclauses))

    @property
    def gate_signature(self) -> str:
        """Hex digest of the structural gate signature accumulated so far."""
        return f"{self._sig:016x}"

    @contextmanager
    def group(self, group: Optional[StatementGroup]) -> Iterator[None]:
        """Route clauses emitted inside the block to ``group`` (None = hard)."""
        previous = self._current
        self._current = group
        if group is not None:
            self.groups.setdefault(group, [])
            if self.journal is not None and group not in self._group_ids:
                # Register the (possibly empty) group: cold compiles create
                # an entry even when no clause lands in it, and the soft
                # selector set must be identical on replay.
                self.record(("grp", self.group_id(group)))
        try:
            yield
        finally:
            self._current = previous

    @property
    def current_group(self) -> Optional[StatementGroup]:
        return self._current

    # ------------------------------------------------------------ statistics

    @property
    def num_clauses(self) -> int:
        """Total number of clauses emitted so far (hard plus grouped)."""
        return len(self.hard) + sum(len(clauses) for clauses in self.groups.values())


def _flatten_lits(value, out: list[int]) -> None:
    """Collect the literals of a (possibly nested) bit-vector payload."""
    for item in value:
        if isinstance(item, int):
            out.append(item)
        else:
            _flatten_lits(item, out)


def _event_refs(event: tuple) -> tuple[int, ...] | list[int]:
    """The literals a journal event references (for the escape pre-scan)."""
    tag = event[0]
    if tag == "nd":
        return event[1]
    if tag == "in":
        return event[2]
    if tag == "ret":
        return event[1] or ()
    if tag == "viol":
        return (event[2],)
    return ()


def _call_enter_refs(event: tuple) -> list[int]:
    """The interface of a "ce" event: guard, arguments, global bindings."""
    refs = [event[4]]
    _flatten_lits(event[5], refs)
    for _name, value in event[6]:
        _flatten_lits(value, refs)
    return refs


def _call_exit_refs(event: tuple) -> list[int]:
    """The interface of a "cx" event: result bits plus global bindings."""
    refs: list[int] = []
    _flatten_lits(event[2], refs)
    for _name, value in event[3]:
        _flatten_lits(value, refs)
    return refs


class ArenaEncodingContext(EncodingContext):
    """An :class:`EncodingContext` backed by flat :class:`GateArena` storage.

    Same observable behaviour as the legacy list/tuple context — identical
    variable numbering, clause order, journal events and gate signature —
    but clauses, the journal and the gate cache live in flat ``array('q')``
    buffers while the encode runs (the C emission core operates on the same
    buffers).  :meth:`finalize` materializes the legacy ``hard`` / ``groups``
    / ``journal`` structures once at the end, so artifacts and every
    downstream consumer are byte-for-byte unaffected.

    The legacy class remains the engine of the splice replay
    (:mod:`repro.bmc.splice` mutates its state directly); this subclass is
    what cold compiles run on.
    """

    def __init__(self, width: int = 16) -> None:
        self.width = width
        self.arena = GateArena()
        self._current: Optional[StatementGroup] = None
        self._group_table: list[StatementGroup] = []
        self._group_ids: dict[StatementGroup, int] = {}
        self._finalized = False
        self._journal_view: Optional[list[tuple]] = None
        self._hard_view: Optional[list[list[int]]] = None
        self._groups_view: Optional[dict[StatementGroup, list[list[int]]]] = None
        #: Wall-clock seconds per encode phase, filled by the producer
        #: (trace construction vs gate emission vs journal materialization).
        self.encode_phases: dict[str, float] = {}
        #: Which emission backend filled the buffers ("python" or "c").
        self.encode_backend = "python"

    # -------------------------------------------------------------- journal

    def begin_journal(self) -> None:
        self.arena.begin_journal()
        self._group_table = []
        self._group_ids = {}

    @property
    def journaling(self) -> bool:
        return bool(self.arena.hdr[_arena.HDR_JOURNAL])

    @property
    def journal(self) -> Optional[list[tuple]]:
        """The legacy tuple journal — available once :meth:`finalize` ran."""
        return self._journal_view

    def record(self, event: tuple) -> None:
        arena = self.arena
        if not arena.hdr[_arena.HDR_JOURNAL]:
            return
        tag = event[0]
        if tag == "ce":
            arena.record_event(event, _arena.TAG_CE, _call_enter_refs(event))
        elif tag == "cx":
            arena.record_event(event, _arena.TAG_CX, _call_exit_refs(event))
        else:
            arena.record_event(event, _arena.TAG_RAW, _event_refs(event))

    def group_id(self, group: StatementGroup) -> int:
        index = self._group_ids.get(group)
        if index is None:
            index = len(self._group_table)
            self._group_ids[group] = index
            self._group_table.append(group)
        return index

    @property
    def group_table(self) -> list[StatementGroup]:
        return self._group_table

    # ------------------------------------------------------------ variables

    def new_var(self) -> int:
        return self.arena.new_var()

    @property
    def _true_lit(self) -> Optional[int]:
        return self.arena.hdr[_arena.HDR_TRUE] or None

    @property
    def true_lit(self) -> int:
        return self.arena.true_lit()

    # -------------------------------------------------------------- clauses

    def emit(self, clause: list[int]) -> None:
        group = self._current
        self.arena.emit(clause, -1 if group is None else self.group_id(group))

    def emit_hard(self, clause: list[int]) -> None:
        self.arena.emit(clause, -1)

    def emit_gate(self, clause: list[int]) -> None:
        self.arena.emit(clause, -1)

    @property
    def gates_emitted(self) -> int:
        return self.arena.hdr[_arena.HDR_GATES]

    @property
    def gate_hits(self) -> int:
        return self.arena.hdr[_arena.HDR_HITS]

    @property
    def gate_signature(self) -> str:
        return f"{self.arena.hdr[_arena.HDR_SIG] & ((1 << 64) - 1):016x}"

    @contextmanager
    def group(self, group: Optional[StatementGroup]) -> Iterator[None]:
        previous = self._current
        self._current = group
        if group is not None and group not in self._group_ids:
            # Register the (possibly empty) group exactly like the legacy
            # context: the soft selector set must not depend on whether any
            # clause lands in the group.
            self.arena.record_group(self.group_id(group))
        try:
            yield
        finally:
            self._current = previous

    # ------------------------------------------------------------ statistics

    @property
    def num_vars(self) -> int:
        return self.arena.hdr[_arena.HDR_NUM_VARS]

    @property
    def num_clauses(self) -> int:
        return self.arena.hdr[_arena.HDR_NCLAUSES]

    @property
    def hard(self) -> list[list[int]]:
        if self._hard_view is None:
            raise RuntimeError("arena context read before finalize()")
        return self._hard_view

    @property
    def groups(self) -> dict[StatementGroup, list[list[int]]]:
        if self._groups_view is None:
            raise RuntimeError("arena context read before finalize()")
        return self._groups_view

    # ------------------------------------------------------- materialization

    def finalize(self) -> None:
        """Materialize the legacy clause lists and tuple journal (once).

        The cyclic collector is suspended for the duration: materialization
        allocates millions of containers that are all retained, and letting
        the GC repeatedly scan that growing live set multiplies the cost of
        this phase several-fold without ever freeing anything.
        """
        if self._finalized:
            return
        with obs.span("encode.materialize") as timed:
            was_enabled = gc.isenabled()
            gc.disable()
            try:
                hard, groups, journal, _true = self.arena.materialize(
                    self._group_table
                )
            finally:
                if was_enabled:
                    gc.enable()
        self._hard_view = hard
        self._groups_view = groups
        self._journal_view = journal
        self._finalized = True
        self.encode_phases["materialize"] = (
            self.encode_phases.get("materialize", 0.0) + timed.duration
        )
