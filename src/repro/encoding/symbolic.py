"""Symbolic program states and expression-to-circuit translation.

The expression encoder is shared between the concolic tracer (which follows
one concrete execution) and the bounded model checker (which explores all
paths up to a bound).  The two differ in how variables are resolved and how
calls are handled, so the encoder delegates those decisions to a *resolver*
object supplied by the caller.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.encoding.circuits import Bits, CircuitBuilder
from repro.lang import ast
from repro.lang.semantics import apply_binary, apply_unary


class Resolver(Protocol):
    """What the expression encoder needs from its execution engine."""

    def read_scalar(self, name: str, line: int) -> Bits:
        """Current symbolic value of a scalar variable."""

    def read_array(self, name: str, line: int) -> list[Bits]:
        """Current symbolic contents of an array."""

    def encode_call(self, call: ast.Call) -> Bits:
        """Encode a function call appearing inside an expression."""

    def concrete_value(self, expr: ast.Expr) -> Optional[int]:
        """Concrete value of ``expr`` if known (concolic mode), else None."""


class SymbolicState:
    """A mutable mapping from program variables to symbolic bit-vectors."""

    def __init__(self) -> None:
        self.scalars: dict[str, Bits] = {}
        self.arrays: dict[str, list[Bits]] = {}

    def copy(self) -> "SymbolicState":
        duplicate = SymbolicState()
        duplicate.scalars = dict(self.scalars)
        duplicate.arrays = {name: list(cells) for name, cells in self.arrays.items()}
        return duplicate


def expression_has_effects(expr: ast.Expr) -> bool:
    """True when evaluating ``expr`` may call a function or read nondet input."""
    if isinstance(expr, ast.Call):
        return True
    if isinstance(expr, ast.UnaryOp):
        return expression_has_effects(expr.operand)
    if isinstance(expr, ast.BinaryOp):
        return expression_has_effects(expr.left) or expression_has_effects(expr.right)
    if isinstance(expr, ast.Conditional):
        return (
            expression_has_effects(expr.cond)
            or expression_has_effects(expr.then)
            or expression_has_effects(expr.otherwise)
        )
    if isinstance(expr, ast.ArrayRef):
        return expression_has_effects(expr.index)
    return False


class ExpressionEncoder:
    """Translate mini-C expressions into bit-vector circuits."""

    def __init__(self, builder: CircuitBuilder, resolver: Resolver) -> None:
        self.builder = builder
        self.resolver = resolver
        self.width = builder.width

    # ------------------------------------------------------------------ API

    def encode(self, expr: ast.Expr) -> Bits:
        """Encode an expression, returning its symbolic value."""
        builder = self.builder
        if isinstance(expr, ast.IntLiteral):
            return builder.const(expr.value)
        if isinstance(expr, ast.VarRef):
            return self.resolver.read_scalar(expr.name, expr.line)
        if isinstance(expr, ast.ArrayRef):
            return self._encode_array_read(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._encode_unary(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._encode_binary(expr)
        if isinstance(expr, ast.Conditional):
            return self._encode_conditional(expr)
        if isinstance(expr, ast.Call):
            return self.resolver.encode_call(expr)
        raise NotImplementedError(f"expression {type(expr).__name__}")

    def encode_bool(self, expr: ast.Expr) -> int:
        """Encode an expression used as a condition, returning a single literal."""
        bits = self.encode(expr)
        return self.builder.is_nonzero(bits)

    def encode_argument(self, arg: ast.Expr, force: bool = False) -> Bits:
        """Encode a call argument behind a relaxable binding.

        Under structure hashing the gates of the argument expression live in
        the hard set, so the calling statement's group must own an explicit
        output binding for the value it feeds into the callee — otherwise
        relaxing the call could no longer free the argument (the
        wrong-argument fault class of the strncat example).  Literal and
        plain variable arguments carried no relaxable clauses before
        structure hashing either, so they are only bound when ``force`` is
        set, which callers do for *hard* callees: there the call statement
        is the sole localization handle on the callee's behaviour.
        """
        builder = self.builder
        bits = self.encode(arg)
        if not builder.simplify:
            return bits
        if not force and isinstance(arg, (ast.IntLiteral, ast.VarRef)):
            return bits
        if builder.context.current_group is None:
            return bits
        bound = builder.fresh(len(bits))
        builder.assert_equal(bound, bits)
        return bound

    # ------------------------------------------------------------- internals

    def _encode_array_read(self, expr: ast.ArrayRef) -> Bits:
        builder = self.builder
        index_bits = self.encode(expr.index)
        cells = self.resolver.read_array(expr.name, expr.line)
        constant_index = builder.constant_of(index_bits)
        if constant_index is not None:
            if 0 <= constant_index < len(cells):
                return cells[constant_index]
            return builder.const(0)
        result = builder.const(0)
        for position, cell in enumerate(cells):
            is_here = builder.equals(index_bits, builder.const(position))
            result = builder.mux(is_here, cell, result)
        return result

    def _encode_unary(self, expr: ast.UnaryOp) -> Bits:
        builder = self.builder
        operand = self.encode(expr.operand)
        constant = builder.constant_of(operand)
        if constant is not None:
            return builder.const(apply_unary(expr.op, constant, self.width))
        if expr.op == "-":
            return builder.negate(operand)
        if expr.op == "!":
            return builder.bool_to_bits(-builder.is_nonzero(operand))
        raise NotImplementedError(f"unary operator {expr.op}")

    def _encode_binary(self, expr: ast.BinaryOp) -> Bits:
        builder = self.builder
        if expr.op in ("&&", "||"):
            return self._encode_logical(expr)
        left = self.encode(expr.left)
        right = self.encode(expr.right)
        left_const = builder.constant_of(left)
        right_const = builder.constant_of(right)
        if left_const is not None and right_const is not None:
            return builder.const(apply_binary(expr.op, left_const, right_const, self.width))
        if expr.op == "+":
            return builder.add(left, right)
        if expr.op == "-":
            return builder.sub(left, right)
        if expr.op == "*":
            return builder.multiply(left, right)
        if expr.op == "/":
            quotient, _ = builder.divmod(left, right)
            return quotient
        if expr.op == "%":
            _, remainder = builder.divmod(left, right)
            return remainder
        if expr.op == "<":
            return builder.bool_to_bits(builder.signed_less(left, right))
        if expr.op == "<=":
            return builder.bool_to_bits(builder.signed_less_equal(left, right))
        if expr.op == ">":
            return builder.bool_to_bits(builder.signed_less(right, left))
        if expr.op == ">=":
            return builder.bool_to_bits(builder.signed_less_equal(right, left))
        if expr.op == "==":
            return builder.bool_to_bits(builder.equals(left, right))
        if expr.op == "!=":
            return builder.bool_to_bits(-builder.equals(left, right))
        raise NotImplementedError(f"binary operator {expr.op}")

    def _encode_logical(self, expr: ast.BinaryOp) -> Bits:
        """Encode ``&&`` / ``||``.

        When the skipped operand has no side effects the operator is encoded
        fully symbolically (the result only depends on the operand values, so
        short-circuiting is unobservable).  When the right operand may call a
        function, concolic mode follows the concrete short-circuit decision:
        if the left operand already decides the result, only the left operand
        is encoded — mirroring how the concrete run never executed the call.
        """
        builder = self.builder
        left_bits = self.encode(expr.left)
        left_bool = builder.is_nonzero(left_bits)
        right_has_effects = expression_has_effects(expr.right)
        if right_has_effects:
            left_concrete = self.resolver.concrete_value(expr.left)
            if left_concrete is not None:
                decided = (expr.op == "&&" and left_concrete == 0) or (
                    expr.op == "||" and left_concrete != 0
                )
                if decided:
                    return builder.bool_to_bits(left_bool)
        right_bits = self.encode(expr.right)
        right_bool = builder.is_nonzero(right_bits)
        if expr.op == "&&":
            return builder.bool_to_bits(builder.bit_and(left_bool, right_bool))
        return builder.bool_to_bits(builder.bit_or(left_bool, right_bool))

    def _encode_conditional(self, expr: ast.Conditional) -> Bits:
        builder = self.builder
        effects = expression_has_effects(expr.then) or expression_has_effects(expr.otherwise)
        cond_bits = self.encode(expr.cond)
        cond_bool = builder.is_nonzero(cond_bits)
        if effects:
            concrete = self.resolver.concrete_value(expr.cond)
            if concrete is not None:
                # Follow the branch the concrete execution took; the formula
                # still ties the result to the condition through the mux with
                # the (unexecuted) branch replaced by a fresh value.
                taken = self.encode(expr.then if concrete != 0 else expr.otherwise)
                other = builder.fresh()
                if concrete != 0:
                    return builder.mux(cond_bool, taken, other)
                return builder.mux(cond_bool, other, taken)
        then_bits = self.encode(expr.then)
        else_bits = self.encode(expr.otherwise)
        return builder.mux(cond_bool, then_bits, else_bits)
