"""Bit-precise CNF encoding of mini-C statements.

The paper encodes the executed trace as a Boolean formula in CNF where
"integers and integer operations are encoded in a bit-precise way"
(Section 2) and clauses arising from one program statement are grouped
behind a shared *selector variable* (Section 3.4, Equation 2).  This package
provides exactly that machinery:

* :class:`EncodingContext` — variable allocation and clause routing into
  either the hard clause set or the current statement group.
* :class:`CircuitBuilder` — gate-level circuits (Tseitin encoding) for the
  fixed-width arithmetic, comparison and multiplexer operations the language
  needs.
* :class:`SymbolicState` / :func:`encode_expression` — symbolic program
  states mapping variables to bit-vectors and the expression-to-circuit
  translation shared by the concolic tracer and the bounded model checker.
* :class:`TraceFormula` — the extended trace formula with its clause groups,
  convertible to a :class:`repro.maxsat.WCNF` partial MaxSAT instance.
"""

from repro.encoding.context import EncodingContext, StatementGroup
from repro.encoding.circuits import Bits, CircuitBuilder
from repro.encoding.symbolic import SymbolicState, ExpressionEncoder
from repro.encoding.trace import TraceFormula, TraceStep


def encode_backend() -> str:
    """Which CNF-emission backend new compiles use (``"c"`` or ``"python"``).

    Controlled by ``REPRO_ENCODE`` (``auto``/``python``/``c``; unset
    inherits ``REPRO_PROPAGATION``).  Both backends produce bit-identical
    artifacts — this probe only reports which implementation will run.
    """
    from repro.sat import _ccore

    return _ccore.encode_backend()


__all__ = [
    "EncodingContext",
    "StatementGroup",
    "Bits",
    "CircuitBuilder",
    "SymbolicState",
    "ExpressionEncoder",
    "TraceFormula",
    "TraceStep",
    "encode_backend",
]
