"""ctypes dispatch of the C emission core over a :class:`GateArena`.

The :class:`CEncoder` wraps the shared library built from
``src/repro/sat/encode.c`` around an arena's flat ``array('q')`` buffers.
Python stays in charge of all memory: before every C call the wrapper
reserves worst-case capacity through the arena's ``ensure_*`` methods (the
C side never grows a buffer), and base addresses are re-resolved whenever a
buffer's length changed — ``array`` reallocation only happens on resize, so
the (cheap) length tuple is a sound cache key for the pointer tuple.

Granularity: the bit-vector operations (add / multiply / equals /
unsigned-less / mux) cross into C once per *vector*, the residual scalar
gate calls once per gate.  Both directions interleave freely with the
pure-Python arena routines because all state lives in the shared buffers.
"""

from __future__ import annotations

import ctypes
from array import array
from typing import Optional, Sequence

from repro.encoding.arena import GateArena

#: Worst-case per-gate cost used for capacity reservations: the largest
#: gate is XOR3 (8 clauses, 32 literals) and a journalled gate costs at
#: most a TAG_V run (2 words) plus a TAG_G record (6 words).
_CLAUSES_PER_GATE = 8
_LITS_PER_GATE = 32
_JOURNAL_PER_GATE = 8

#: The multiplier kernel keeps its accumulator rows in fixed C-local
#: arrays; wider vectors fall back to the Python composition.
MAX_VECTOR_BITS = 64


def _addr(buf: array) -> int:
    return buf.buffer_info()[0]


class CEncoder:
    """Per-compile binding of the C emission core onto one arena."""

    def __init__(self, arena: GateArena, library: ctypes.CDLL) -> None:
        self.arena = arena
        self._gate = library.repro_enc_gate
        self._add = library.repro_enc_add
        self._mul = library.repro_enc_mul
        self._equals = library.repro_enc_equals
        self._uless = library.repro_enc_uless
        self._mux = library.repro_enc_mux
        self._key: Optional[tuple[int, int, int, int]] = None
        self._ptrs: tuple = ()
        rehash = library.repro_enc_rehash

        def rehash_hook(old: array, old_slots: int, new: array, new_mask: int) -> None:
            rehash(_addr(old), old_slots, _addr(new), new_mask)

        arena.rehash_hook = rehash_hook

    def _pointers(self) -> tuple:
        """The six buffer base addresses, refreshed after any growth."""
        arena = self.arena
        key = (len(arena.lits), len(arena.cend), len(arena.js), len(arena.gtab))
        if key != self._key:
            self._key = key
            self._ptrs = (
                _addr(arena.hdr),
                _addr(arena.lits),
                _addr(arena.cend),
                _addr(arena.cgid),
                _addr(arena.js),
                _addr(arena.gtab),
            )
        return self._ptrs

    def _reserve(self, gates: int) -> None:
        """Room for ``gates`` worst-case gates before handing off to C."""
        arena = self.arena
        arena.ensure_gates(gates)
        arena.ensure_clauses(gates * _CLAUSES_PER_GATE, gates * _LITS_PER_GATE)
        arena.ensure_journal(gates * _JOURNAL_PER_GATE)

    # ------------------------------------------------------------- dispatch

    def gate(self, op: int, a: int, b: int, c: int = 0) -> int:
        self._reserve(1)
        return self._gate(*self._pointers(), op, a, b, c)

    def add(self, a: Sequence[int], b: Sequence[int], carry: int) -> tuple[int, ...]:
        n = len(a)
        self._reserve(2 * n)
        va, vb = array("q", a), array("q", b)
        vout = array("q", bytes(8 * n))
        self._add(*self._pointers(), _addr(va), _addr(vb), _addr(vout), n, carry)
        return tuple(vout)

    def multiply(self, a: Sequence[int], b: Sequence[int]) -> tuple[int, ...]:
        n = len(a)
        self._reserve(3 * n * n)
        va, vb = array("q", a), array("q", b)
        vout = array("q", bytes(8 * n))
        self._mul(*self._pointers(), _addr(va), _addr(vb), _addr(vout), n)
        return tuple(vout)

    def equals(self, a: Sequence[int], b: Sequence[int]) -> int:
        n = len(a)
        self._reserve(2 * n)
        va, vb = array("q", a), array("q", b)
        scratch = array("q", bytes(8 * n))
        return self._equals(
            *self._pointers(), _addr(va), _addr(vb), _addr(scratch), n
        )

    def unsigned_less(self, a: Sequence[int], b: Sequence[int]) -> int:
        n = len(a)
        self._reserve(2 * n)
        va, vb = array("q", a), array("q", b)
        return self._uless(*self._pointers(), _addr(va), _addr(vb), n)

    def mux(
        self, cond: int, a: Sequence[int], b: Sequence[int]
    ) -> tuple[int, ...]:
        n = len(a)
        self._reserve(n)
        va, vb = array("q", a), array("q", b)
        vout = array("q", bytes(8 * n))
        self._mux(*self._pointers(), cond, _addr(va), _addr(vb), _addr(vout), n)
        return tuple(vout)
