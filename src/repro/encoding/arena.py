"""Flat gate-arena storage behind the trace-formula encoder.

The legacy :class:`~repro.encoding.context.EncodingContext` stores every
clause as a ``list[int]``, every journal event as a tuple and the
structure-hash gate cache as a Python dict — millions of small heap objects
per compile.  The arena keeps the same information in a handful of flat
``array('q')`` buffers instead:

* ``lits``  — every clause's literals, concatenated (one literal pool);
* ``cend``  — per-clause end offset into ``lits`` (start = previous end);
* ``cgid``  — per-clause owning group id (``-1`` = hard set);
* ``js``    — the emission journal as a flat integer event stream
  (:data:`TAG_V` … :data:`TAG_GRP` below) instead of per-event tuples;
* ``gtab``  — the structure-hash gate cache as an open-addressed table of
  ``(op, k1, k2, out)`` int quadruples (linear probing, power-of-two size);
* ``hdr``   — the mutable scalars (variable counter, pending-run length,
  gate/hit counters, rolling FNV signature, journaling flag …) in one small
  shared array.

Because every buffer is a plain C-layout int64 array, the optional C
emission core (``src/repro/sat/encode.c``) can operate on the *same* state
as the pure-Python routines: a compile may interleave Python scalar gates
with C vector kernels freely, and both backends produce bit-identical
results by construction of the shared layout (and by the differential test
matrix for the C reimplementation of the fold rules).

At the end of a compile :meth:`ArenaEncodingContext.finalize` materializes
the exact legacy structures — ``hard``/``groups`` clause lists and the
tuple journal, with clause lists shared between the two just as the legacy
emitter produces them — so artifacts, the splice replay and every other
consumer are byte-for-byte unaffected by which storage backed the encode.

String-bearing journal events (statements, call interfaces …) cannot live
in an int stream; they are kept in a side list (``raw``) and referenced by
index from :data:`TAG_RAW`/:data:`TAG_CE`/:data:`TAG_CX` records.  The
call-interface records additionally flatten their literal payload into the
stream, so flat-buffer consumers can walk interfaces without touching
Python objects.
"""

from __future__ import annotations

from array import array
from typing import Optional

_M64 = (1 << 64) - 1

# ------------------------------------------------------------- header slots

HDR_NUM_VARS = 0  #: CNF variable counter.
HDR_PENDING = 1  #: Length of the pending (unflushed) "v" allocation run.
HDR_GATES = 2  #: Gates emitted (structure-hash misses).
HDR_HITS = 3  #: Gate-cache hits.
HDR_SIG = 4  #: Rolling FNV-1a signature (int64 bit pattern of the uint64).
HDR_TRUE = 5  #: The constant-true literal, 0 while unallocated.
HDR_NCLAUSES = 6  #: Number of clauses in the store.
HDR_LITS = 7  #: Logical length of the literal pool.
HDR_JLEN = 8  #: Logical length of the journal stream.
HDR_GMASK = 9  #: Gate-table slot mask (slot count - 1).
HDR_GUSED = 10  #: Occupied gate-table slots.
HDR_GID = 11  #: Active clause group id (-1 = hard set).
HDR_JOURNAL = 12  #: 1 while the journal stream is recording.
HDR_IFACE = 13  #: Total call-interface literal words in the stream.
HDR_SLOTS = 16  #: Header size (room for growth without an ABI break).

# ------------------------------------------------------------ journal tags
#
# The flat stream is a sequence of records, each a tag followed by its
# fixed operands.  TAG_C and TAG_G consume clauses from the clause store by
# cursor (clauses are stored in emission order), so clause payloads are
# never duplicated into the stream.

TAG_V = 1  #: ``TAG_V n`` — a run of n plain variable allocations.
TAG_C = 2  #: ``TAG_C`` — one non-gate clause (group id from ``cgid``).
TAG_G = 3  #: ``TAG_G op k1 k2 out n`` — a gate insertion owning n clauses.
TAG_T = 4  #: ``TAG_T lit`` — the constant-true literal (owns one unit).
TAG_RAW = 5  #: ``TAG_RAW idx n v…`` — a side-list event plus its literals.
TAG_CE = 6  #: ``TAG_CE idx n v…`` — call-entry interface event.
TAG_CX = 7  #: ``TAG_CX idx n v…`` — call-exit interface event.
TAG_GRP = 8  #: ``TAG_GRP gid`` — statement-group registration.

#: Opcodes of the packed-key gates (first key slot holds two literals).
_PACKED_OPS = (3, 4, 5)

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _hash_key(op: int, k1: int, k2: int) -> int:
    """Position hash of a canonical gate key (identical in encode.c).

    Multiplicative mixing over the three key words; Python applies the
    64-bit wraparound masks that C gets from ``uint64_t`` arithmetic.
    """
    h = (
        (op * 0x9E3779B97F4A7C15)
        ^ ((k1 & _M64) * 0xC2B2AE3D27D4EB4F)
        ^ ((k2 & _M64) * 0x165667B19E3779F9)
    ) & _M64
    h ^= h >> 29
    h = (h * 0xBF58476D1CE4E5B9) & _M64
    h ^= h >> 32
    return h


def _signed64(value: int) -> int:
    """The int64 bit pattern of a uint64 (array('q') stores signed)."""
    return value - (1 << 64) if value >= (1 << 63) else value


class GateArena:
    """The flat buffers plus the pure-Python routines that fill them."""

    def __init__(self, journal: bool = False) -> None:
        self.hdr = array("q", [0] * HDR_SLOTS)
        self.hdr[HDR_GID] = -1
        self.hdr[HDR_SIG] = _signed64(_FNV_OFFSET)
        self.hdr[HDR_JOURNAL] = 1 if journal else 0
        self.lits = array("q", bytes(8 * 4096))
        self.cend = array("q", bytes(8 * 1024))
        self.cgid = array("q", bytes(8 * 1024))
        self.js = array("q", bytes(8 * 4096)) if journal else array("q")
        #: Gate table: stride-4 slots of (op, k1, k2, out); op == 0 = empty.
        self.gtab = array("q", bytes(8 * 4 * 2048))
        self.hdr[HDR_GMASK] = 2048 - 1
        #: Side list for string-bearing journal events, by TAG_RAW/CE/CX idx.
        self.raw: list[tuple] = []
        #: Optional C rehash routine ``(old, old_slots, new, new_mask)``,
        #: installed by the C-backend binding (same layout as the Python loop).
        self.rehash_hook = None

    def begin_journal(self) -> None:
        """Enable journal recording (must precede any allocation/emission)."""
        if self.hdr[HDR_NUM_VARS] or self.hdr[HDR_NCLAUSES]:  # pragma: no cover
            raise RuntimeError("begin_journal() after emission started")
        self.hdr[HDR_JOURNAL] = 1
        if not len(self.js):
            self.js = array("q", bytes(8 * 4096))

    # ------------------------------------------------------------- capacity

    def _grow(self, buf: array, need: int) -> array:
        capacity = len(buf)
        while capacity < need:
            capacity *= 2
        buf.extend(array("q", bytes(8 * (capacity - len(buf)))))
        return buf

    def ensure_clauses(self, clauses: int, lits: int) -> None:
        """Guarantee room for ``clauses`` more clauses / ``lits`` literals."""
        n = self.hdr[HDR_NCLAUSES] + clauses
        if n > len(self.cend):
            self.cend = self._grow(self.cend, n)
            self.cgid = self._grow(self.cgid, n)
        n = self.hdr[HDR_LITS] + lits
        if n > len(self.lits):
            self.lits = self._grow(self.lits, n)

    def ensure_journal(self, words: int) -> None:
        if not self.hdr[HDR_JOURNAL]:
            return
        n = self.hdr[HDR_JLEN] + words
        if n > len(self.js):
            self.js = self._grow(self.js, n)

    def ensure_gates(self, gates: int) -> None:
        """Guarantee table headroom (rehash under 50% load) for new gates."""
        mask = self.hdr[HDR_GMASK]
        if (self.hdr[HDR_GUSED] + gates) * 2 <= mask + 1:
            return
        slots = (mask + 1) * 2
        while (self.hdr[HDR_GUSED] + gates) * 2 > slots:
            slots *= 2
        old, old_mask = self.gtab, mask
        self.gtab = array("q", bytes(8 * 4 * slots))
        self.hdr[HDR_GMASK] = slots - 1
        hook = self.rehash_hook
        if hook is not None:
            hook(old, old_mask + 1, self.gtab, slots - 1)
            return
        new, new_mask = self.gtab, slots - 1
        for slot in range(0, (old_mask + 1) * 4, 4):
            op = old[slot]
            if not op:
                continue
            k1, k2 = old[slot + 1], old[slot + 2]
            probe = _hash_key(op, k1, k2) & new_mask
            while new[probe * 4]:
                probe = (probe + 1) & new_mask
            base = probe * 4
            new[base] = op
            new[base + 1] = k1
            new[base + 2] = k2
            new[base + 3] = old[slot + 3]

    # ------------------------------------------------------------ emission

    def new_var(self) -> int:
        hdr = self.hdr
        hdr[HDR_NUM_VARS] += 1
        if hdr[HDR_JOURNAL]:
            hdr[HDR_PENDING] += 1
        return hdr[HDR_NUM_VARS]

    def flush_vars(self) -> None:
        hdr = self.hdr
        if hdr[HDR_PENDING]:
            self.ensure_journal(2)
            js, jlen = self.js, hdr[HDR_JLEN]
            js[jlen] = TAG_V
            js[jlen + 1] = hdr[HDR_PENDING]
            hdr[HDR_JLEN] = jlen + 2
            hdr[HDR_PENDING] = 0

    def true_lit(self) -> int:
        """The constant-true literal, allocated (with its hard unit) lazily."""
        hdr = self.hdr
        lit = hdr[HDR_TRUE]
        if lit:
            return lit
        lit = self.new_var()
        hdr[HDR_TRUE] = lit
        self.ensure_clauses(1, 1)
        n, off = hdr[HDR_NCLAUSES], hdr[HDR_LITS]
        self.lits[off] = lit
        self.cend[n] = off + 1
        self.cgid[n] = -1
        hdr[HDR_NCLAUSES] = n + 1
        hdr[HDR_LITS] = off + 1
        if hdr[HDR_JOURNAL]:
            # The variable is owned by the "t" event, not by a "v" run.
            hdr[HDR_PENDING] -= 1
            self.flush_vars()
            self.ensure_journal(2)
            js, jlen = self.js, hdr[HDR_JLEN]
            js[jlen] = TAG_T
            js[jlen + 1] = lit
            hdr[HDR_JLEN] = jlen + 2
        return lit

    def emit(self, clause: list[int] | tuple[int, ...], gid: int) -> None:
        """Store one non-gate clause under group ``gid`` (-1 = hard)."""
        hdr = self.hdr
        self.ensure_clauses(1, len(clause))
        n, off = hdr[HDR_NCLAUSES], hdr[HDR_LITS]
        lits = self.lits
        for lit in clause:
            lits[off] = lit
            off += 1
        self.cend[n] = off
        self.cgid[n] = gid
        hdr[HDR_NCLAUSES] = n + 1
        hdr[HDR_LITS] = off
        if hdr[HDR_JOURNAL]:
            self.flush_vars()
            self.ensure_journal(1)
            self.js[hdr[HDR_JLEN]] = TAG_C
            hdr[HDR_JLEN] += 1

    def _observe(self, op: int, k1: int, k2: int, out: int, nclauses: int) -> None:
        """Fold a fresh gate into the signature and journal its insertion."""
        hdr = self.hdr
        sig = hdr[HDR_SIG] & _M64
        for word in (op, k1, k2, out):
            sig = ((sig ^ (word & 0xFFFFFFFF)) * _FNV_PRIME) & _M64
        hdr[HDR_SIG] = _signed64(sig)
        hdr[HDR_GATES] += 1
        if hdr[HDR_JOURNAL]:
            # The gate owns its freshly allocated output variable.
            hdr[HDR_PENDING] -= 1
            self.flush_vars()
            self.ensure_journal(6)
            js, jlen = self.js, hdr[HDR_JLEN]
            js[jlen] = TAG_G
            js[jlen + 1] = op
            js[jlen + 2] = k1
            js[jlen + 3] = k2
            js[jlen + 4] = out
            js[jlen + 5] = nclauses
            hdr[HDR_JLEN] = jlen + 6

    def gate_lookup(self, op: int, k1: int, k2: int) -> int:
        """The cached output of a canonical gate key, or 0 (a miss).

        A hit counts toward the gate-sharing statistic, mirroring the
        legacy builder's ``gate_hits`` bookkeeping.
        """
        gtab, mask = self.gtab, self.hdr[HDR_GMASK]
        probe = _hash_key(op, k1, k2) & mask
        while True:
            base = probe * 4
            slot_op = gtab[base]
            if not slot_op:
                return 0
            if slot_op == op and gtab[base + 1] == k1 and gtab[base + 2] == k2:
                self.hdr[HDR_HITS] += 1
                return gtab[base + 3]
            probe = (probe + 1) & mask

    def gate_insert(
        self, op: int, k1: int, k2: int, out: int, clauses: list[list[int]]
    ) -> None:
        """Insert a fresh gate: table entry, signature, journal, definition."""
        self.ensure_gates(1)
        gtab, mask = self.gtab, self.hdr[HDR_GMASK]
        probe = _hash_key(op, k1, k2) & mask
        while gtab[probe * 4]:
            probe = (probe + 1) & mask
        base = probe * 4
        gtab[base] = op
        gtab[base + 1] = k1
        gtab[base + 2] = k2
        gtab[base + 3] = out
        self.hdr[HDR_GUSED] += 1
        self._observe(op, k1, k2, out, len(clauses))
        hdr = self.hdr
        total = sum(len(clause) for clause in clauses)
        self.ensure_clauses(len(clauses), total)
        n, off = hdr[HDR_NCLAUSES], hdr[HDR_LITS]
        lits, cend, cgid = self.lits, self.cend, self.cgid
        for clause in clauses:
            for lit in clause:
                lits[off] = lit
                off += 1
            cend[n] = off
            cgid[n] = -1
            n += 1
        hdr[HDR_NCLAUSES] = n
        hdr[HDR_LITS] = off

    # -------------------------------------------------------------- journal

    def record_event(self, event: tuple, tag: int, refs: tuple[int, ...]) -> None:
        """Append a side-list event with its literal payload to the stream."""
        hdr = self.hdr
        if not hdr[HDR_JOURNAL]:
            return
        self.flush_vars()
        index = len(self.raw)
        self.raw.append(event)
        if tag != TAG_RAW:
            hdr[HDR_IFACE] += len(refs)
        self.ensure_journal(3 + len(refs))
        js, jlen = self.js, hdr[HDR_JLEN]
        js[jlen] = tag
        js[jlen + 1] = index
        js[jlen + 2] = len(refs)
        jlen += 3
        for lit in refs:
            js[jlen] = lit
            jlen += 1
        hdr[HDR_JLEN] = jlen

    def record_group(self, gid: int) -> None:
        hdr = self.hdr
        if not hdr[HDR_JOURNAL]:
            return
        self.flush_vars()
        self.ensure_journal(2)
        js, jlen = self.js, hdr[HDR_JLEN]
        js[jlen] = TAG_GRP
        js[jlen + 1] = gid
        hdr[HDR_JLEN] = jlen + 2

    # -------------------------------------------------------- materialization

    def materialize(
        self, group_table: list
    ) -> tuple[list, dict, Optional[list], Optional[int]]:
        """Rebuild the legacy ``(hard, groups, journal, true_lit)`` view.

        Clause ``list`` objects are shared between ``hard``/``groups`` and
        the tuple journal exactly as the legacy emitter shares them, so
        artifact pickles are identical whichever storage ran the compile.
        """
        hdr = self.hdr
        nclauses = hdr[HDR_NCLAUSES]
        lits, cend, cgid = self.lits, self.cend, self.cgid
        from repro.sat import _ccore

        native = _ccore.materialize_function()
        if native is not None:
            _, hard, grouped, journal = native(
                lits.buffer_info()[0],
                cend.buffer_info()[0],
                cgid.buffer_info()[0],
                nclauses,
                self.js.buffer_info()[0] if len(self.js) else 0,
                hdr[HDR_JLEN],
                self.raw,
                len(group_table),
                hdr[HDR_JOURNAL],
            )
            groups = dict(zip(group_table, grouped))
            return hard, groups, journal, hdr[HDR_TRUE] or None
        hard: list[list[int]] = []
        groups: dict = {group: [] for group in group_table}
        grouped: list[list] = [groups[group] for group in group_table]
        clauses: list[list[int]] = []
        start = 0
        append_clause = clauses.append
        for index in range(nclauses):
            end = cend[index]
            clause = lits[start:end].tolist()
            start = end
            append_clause(clause)
            gid = cgid[index]
            if gid < 0:
                hard.append(clause)
            else:
                grouped[gid].append(clause)
        true_lit = hdr[HDR_TRUE] or None
        if not hdr[HDR_JOURNAL]:
            return hard, groups, None, true_lit
        journal: list[tuple] = []
        append = journal.append
        js, jlen = self.js, hdr[HDR_JLEN]
        raw = self.raw
        cursor = 0
        position = 0
        while position < jlen:
            tag = js[position]
            if tag == TAG_C:
                append(("c", cgid[cursor], clauses[cursor]))
                cursor += 1
                position += 1
            elif tag == TAG_G:
                count = js[position + 5]
                append(
                    (
                        "g",
                        js[position + 1],
                        js[position + 2],
                        js[position + 3],
                        js[position + 4],
                        count,
                    )
                )
                position += 6
                for _ in range(count):
                    append(("c", -1, clauses[cursor]))
                    cursor += 1
            elif tag == TAG_V:
                append(("v", js[position + 1]))
                position += 2
            elif tag in (TAG_RAW, TAG_CE, TAG_CX):
                append(raw[js[position + 1]])
                position += 3 + js[position + 2]
            elif tag == TAG_GRP:
                append(("grp", js[position + 1]))
                position += 2
            elif tag == TAG_T:
                append(("t", js[position + 1]))
                cursor += 1  # the constant's hard unit occupies one slot
                position += 2
            else:  # pragma: no cover - defensive
                raise AssertionError(f"corrupt journal stream tag {tag}")
        return hard, groups, journal, true_lit
