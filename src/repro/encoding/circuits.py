"""Gate-level circuits: Tseitin encoding of fixed-width integer operations.

A symbolic value is a :data:`Bits` tuple of CNF literals, least-significant
bit first.  Constant bits are represented by the context's ``true_lit`` (or
its negation), which lets the builder constant-fold aggressively — the
"constant-folding input-independent parts of the constraints" optimisation
the paper borrows from concolic execution.

With ``simplify=True`` (the default) the builder additionally performs
AIG-style *structure hashing*: every ``bit_and`` / ``bit_xor`` / ``bit_ite``
looks up a canonicalized ``(op, a, b)`` key in a gate cache before emitting
Tseitin clauses, so a subterm that is re-encoded — the same ``rows * cols``
guard on every loop iteration, the same comparison across statement groups —
reuses the one existing gate instead of bit-blasting a fresh copy.  Gate
*definitions* are emitted through :meth:`EncodingContext.emit_gate` (into
the hard set): a Tseitin definition with a fresh output is total, so sharing
it across statement groups never couples those groups' relaxation — the
relaxable output bindings still go through :meth:`EncodingContext.emit` and
stay owned by the active group.

Statement-level clause emissions (:meth:`CircuitBuilder.assert_equal`,
:meth:`CircuitBuilder.force_true`, :meth:`CircuitBuilder.fix_to_value`, and
direct :meth:`EncodingContext.emit` calls) are unaffected: whatever
statement group is active when an operation is encoded owns those clauses.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.encoding.context import EncodingContext
from repro.lang.semantics import to_unsigned
from repro.sat import _ccore

Bits = tuple[int, ...]


def simplifier_name(simplify: bool) -> str:
    """The benchmark-facing name of the active circuit-encoder configuration."""
    return "gate-hash+const-fold" if simplify else "none"


#: Vector lengths the C kernels accept (the multiplier's rows live in
#: fixed-size C locals); wider vectors use the Python composition.
_MAX_VECTOR_BITS = 64

#: Opcode tags folded into the structural gate signature.
_OP_AND = 1
_OP_XOR = 2
_OP_ITE = 3
_OP_XOR3 = 4
_OP_MAJ = 5


class CircuitBuilder:
    """Builds bit-vector circuits over an :class:`EncodingContext`.

    ``simplify`` enables the structure-hashed gate cache plus the
    constant-aware arithmetic rewrites (shift-add decomposition of
    multiplications by constants); with ``simplify=False`` the builder
    reproduces the historical one-gate-per-call Tseitin encoding, which the
    property-based equivalence suite uses as the reference.
    """

    def __init__(self, context: EncodingContext, simplify: bool = True) -> None:
        self.context = context
        self.width = context.width
        self.simplify = simplify
        self._gate_cache: dict[tuple[int, int, int], int] = {}
        # Arena-backed contexts keep the gate cache in their open-addressed
        # flat table instead of ``_gate_cache`` (the C emission core probes
        # and fills the same table); list-backed contexts use the dict.
        self._arena = getattr(context, "arena", None)
        self._cenc = None
        if simplify and self._arena is not None:
            library = _ccore.encode_library()
            if library is not None:
                from repro.encoding.cbind import CEncoder

                self._cenc = CEncoder(self._arena, library)
            if hasattr(context, "encode_backend"):
                context.encode_backend = "c" if self._cenc is not None else "python"

    # ----------------------------------------------------------- bit helpers

    @property
    def true(self) -> int:
        return self.context.true_lit

    @property
    def false(self) -> int:
        return -self.context.true_lit

    def _const_value(self, lit: int) -> Optional[bool]:
        """Return the Boolean value of a literal if it is a known constant."""
        if lit == self.true:
            return True
        if lit == self.false:
            return False
        return None

    def bit_not(self, lit: int) -> int:
        return -lit

    def bit_and(self, a: int, b: int) -> int:
        cenc = self._cenc
        if cenc is not None:
            self.context.true_lit  # the constant allocates first, as in the folds
            return cenc.gate(_OP_AND, a, b)
        for first, second in ((a, b), (b, a)):
            value = self._const_value(first)
            if value is True:
                return second
            if value is False:
                return self.false
        if a == b:
            return a
        if a == -b:
            return self.false
        context = self.context
        if not self.simplify:
            out = context.new_var()
            context.emit([-a, -b, out])
            context.emit([a, -out])
            context.emit([b, -out])
            return out
        if a > b:
            a, b = b, a
        arena = self._arena
        if arena is not None:
            out = arena.gate_lookup(_OP_AND, a, b)
            if out:
                return out
            out = context.new_var()
            arena.gate_insert(
                _OP_AND, a, b, out, ([-a, -b, out], [a, -out], [b, -out])
            )
            return out
        key = (_OP_AND, a, b)
        cached = self._gate_cache.get(key)
        if cached is not None:
            context.gate_hits += 1
            return cached
        out = context.new_var()
        self._gate_cache[key] = out
        context.gates_emitted += 1
        context.observe_gate(_OP_AND, a, b, out, 3)
        context.emit_gate([-a, -b, out])
        context.emit_gate([a, -out])
        context.emit_gate([b, -out])
        return out

    def bit_or(self, a: int, b: int) -> int:
        return -self.bit_and(-a, -b)

    def bit_xor(self, a: int, b: int) -> int:
        cenc = self._cenc
        if cenc is not None:
            self.context.true_lit
            return cenc.gate(_OP_XOR, a, b)
        value_a, value_b = self._const_value(a), self._const_value(b)
        if value_a is not None:
            return -b if value_a else b
        if value_b is not None:
            return -a if value_b else a
        if a == b:
            return self.false
        if a == -b:
            return self.true
        context = self.context
        if not self.simplify:
            out = context.new_var()
            context.emit([-a, -b, -out])
            context.emit([a, b, -out])
            context.emit([-a, b, out])
            context.emit([a, -b, out])
            return out
        # XOR is invariant under negating both inputs and flips under
        # negating one: canonicalize to positive inputs and carry the sign.
        sign = (a < 0) != (b < 0)
        pa, pb = abs(a), abs(b)
        if pa > pb:
            pa, pb = pb, pa
        arena = self._arena
        if arena is not None:
            out = arena.gate_lookup(_OP_XOR, pa, pb)
            if not out:
                out = context.new_var()
                arena.gate_insert(
                    _OP_XOR,
                    pa,
                    pb,
                    out,
                    ([-pa, -pb, -out], [pa, pb, -out], [-pa, pb, out], [pa, -pb, out]),
                )
            return -out if sign else out
        key = (_OP_XOR, pa, pb)
        cached = self._gate_cache.get(key)
        if cached is not None:
            context.gate_hits += 1
            return -cached if sign else cached
        out = context.new_var()
        self._gate_cache[key] = out
        context.gates_emitted += 1
        context.observe_gate(_OP_XOR, pa, pb, out, 4)
        context.emit_gate([-pa, -pb, -out])
        context.emit_gate([pa, pb, -out])
        context.emit_gate([-pa, pb, out])
        context.emit_gate([pa, -pb, out])
        return -out if sign else out

    def bit_and_many(self, lits: Sequence[int]) -> int:
        result = self.true
        for lit in lits:
            result = self.bit_and(result, lit)
        return result

    def bit_or_many(self, lits: Sequence[int]) -> int:
        result = self.false
        for lit in lits:
            result = self.bit_or(result, lit)
        return result

    def bit_ite(self, cond: int, then_lit: int, else_lit: int) -> int:
        cenc = self._cenc
        if cenc is not None:
            self.context.true_lit
            return cenc.gate(_OP_ITE, cond, then_lit, else_lit)
        value = self._const_value(cond)
        if value is True:
            return then_lit
        if value is False:
            return else_lit
        if then_lit == else_lit:
            return then_lit
        context = self.context
        if not self.simplify:
            out = context.new_var()
            context.emit([-cond, -then_lit, out])
            context.emit([-cond, then_lit, -out])
            context.emit([cond, -else_lit, out])
            context.emit([cond, else_lit, -out])
            return out
        # Constant branches reduce to AND/OR/XNOR gates, which hash better.
        then_const = self._const_value(then_lit)
        else_const = self._const_value(else_lit)
        if then_const is True:
            return self.bit_or(cond, else_lit)
        if then_const is False:
            return self.bit_and(-cond, else_lit)
        if else_const is True:
            return self.bit_or(-cond, then_lit)
        if else_const is False:
            return self.bit_and(cond, then_lit)
        if then_lit == -else_lit:
            return -self.bit_xor(cond, then_lit)
        # ite(!c, t, e) == ite(c, e, t): canonicalize to a positive condition.
        if cond < 0:
            cond, then_lit, else_lit = -cond, else_lit, then_lit
        arena = self._arena
        if arena is not None:
            packed = cond * (1 << 32) + then_lit
            out = arena.gate_lookup(_OP_ITE, packed, else_lit)
            if out:
                return out
            out = context.new_var()
            arena.gate_insert(
                _OP_ITE,
                packed,
                else_lit,
                out,
                (
                    [-cond, -then_lit, out],
                    [-cond, then_lit, -out],
                    [cond, -else_lit, out],
                    [cond, else_lit, -out],
                ),
            )
            return out
        key = (_OP_ITE, cond * (1 << 32) + then_lit, else_lit)
        cached = self._gate_cache.get(key)
        if cached is not None:
            context.gate_hits += 1
            return cached
        out = context.new_var()
        self._gate_cache[key] = out
        context.gates_emitted += 1
        context.observe_gate(_OP_ITE, cond * (1 << 32) + then_lit, else_lit, out, 4)
        context.emit_gate([-cond, -then_lit, out])
        context.emit_gate([-cond, then_lit, -out])
        context.emit_gate([cond, -else_lit, out])
        context.emit_gate([cond, else_lit, -out])
        return out

    def bit_equal(self, a: int, b: int) -> int:
        return -self.bit_xor(a, b)

    def bit_xor3(self, a: int, b: int, c: int) -> int:
        """Three-input parity, encoded as one 8-clause gate when hashing.

        The workhorse of the ripple-carry adder: a direct XOR3 gate costs 8
        clauses and one auxiliary variable where the composed
        ``xor(xor(a, b), c)`` costs 8 clauses and *two* auxiliaries — and the
        single canonical key hashes better across repeated adder chains.
        """
        if not self.simplify:
            return self.bit_xor(self.bit_xor(a, b), c)
        cenc = self._cenc
        if cenc is not None:
            self.context.true_lit
            return cenc.gate(_OP_XOR3, a, b, c)
        # Fold constants and cancelling pairs: parity is invariant under
        # removing (x, x) and flips under removing (x, -x) or a true input.
        sign = False
        lits: list[int] = []
        for lit in (a, b, c):
            value = self._const_value(lit)
            if value is None:
                if lit < 0:
                    sign = not sign
                    lit = -lit
                lits.append(lit)
            elif value:
                sign = not sign
        by_var: dict[int, int] = {}
        for lit in lits:
            by_var[lit] = by_var.get(lit, 0) + 1
        reduced = sorted(lit for lit, count in by_var.items() if count % 2)
        if not reduced:
            return self.false if not sign else self.true
        if len(reduced) == 1:
            return -reduced[0] if sign else reduced[0]
        if len(reduced) == 2:
            result = self.bit_xor(reduced[0], reduced[1])
            return -result if sign else result
        pa, pb, pc = reduced
        context = self.context
        arena = self._arena
        if arena is not None:
            packed = pa * (1 << 32) + pb
            out = arena.gate_lookup(_OP_XOR3, packed, pc)
            if not out:
                out = context.new_var()
                arena.gate_insert(
                    _OP_XOR3,
                    packed,
                    pc,
                    out,
                    (
                        [pa, pb, pc, -out],
                        [pa, -pb, -pc, -out],
                        [-pa, pb, -pc, -out],
                        [-pa, -pb, pc, -out],
                        [-pa, -pb, -pc, out],
                        [-pa, pb, pc, out],
                        [pa, -pb, pc, out],
                        [pa, pb, -pc, out],
                    ),
                )
            return -out if sign else out
        key = (_OP_XOR3, pa * (1 << 32) + pb, pc)
        cached = self._gate_cache.get(key)
        if cached is not None:
            context.gate_hits += 1
            return -cached if sign else cached
        out = context.new_var()
        self._gate_cache[key] = out
        context.gates_emitted += 1
        context.observe_gate(_OP_XOR3, pa * (1 << 32) + pb, pc, out, 8)
        context.emit_gate([pa, pb, pc, -out])
        context.emit_gate([pa, -pb, -pc, -out])
        context.emit_gate([-pa, pb, -pc, -out])
        context.emit_gate([-pa, -pb, pc, -out])
        context.emit_gate([-pa, -pb, -pc, out])
        context.emit_gate([-pa, pb, pc, out])
        context.emit_gate([pa, -pb, pc, out])
        context.emit_gate([pa, pb, -pc, out])
        return -out if sign else out

    def bit_majority(self, a: int, b: int, c: int) -> int:
        """Three-input majority (the full adder's carry-out), one 6-clause gate.

        Composed, the carry ``(a and b) or ((a xor b) and c)`` costs 9
        clauses and three auxiliaries; the direct gate costs 6 and one.
        """
        if not self.simplify:
            return self.bit_or(self.bit_and(a, b), self.bit_and(self.bit_xor(a, b), c))
        cenc = self._cenc
        if cenc is not None:
            self.context.true_lit
            return cenc.gate(_OP_MAJ, a, b, c)
        for first, second, third in ((a, b, c), (b, c, a), (c, a, b)):
            value = self._const_value(first)
            if value is True:
                return self.bit_or(second, third)
            if value is False:
                return self.bit_and(second, third)
            if second == third:
                return second
            if second == -third:
                return first
        # maj(-a, -b, -c) == -maj(a, b, c): canonicalize to at most one
        # negative input and carry the sign on the output.
        sign = False
        lits = [a, b, c]
        if sum(1 for lit in lits if lit < 0) >= 2:
            sign = True
            lits = [-lit for lit in lits]
        pa, pb, pc = sorted(lits)
        context = self.context
        arena = self._arena
        if arena is not None:
            packed = pa * (1 << 32) + pb
            out = arena.gate_lookup(_OP_MAJ, packed, pc)
            if not out:
                out = context.new_var()
                arena.gate_insert(
                    _OP_MAJ,
                    packed,
                    pc,
                    out,
                    (
                        [-pa, -pb, out],
                        [-pa, -pc, out],
                        [-pb, -pc, out],
                        [pa, pb, -out],
                        [pa, pc, -out],
                        [pb, pc, -out],
                    ),
                )
            return -out if sign else out
        key = (_OP_MAJ, pa * (1 << 32) + pb, pc)
        cached = self._gate_cache.get(key)
        if cached is not None:
            context.gate_hits += 1
            return -cached if sign else cached
        out = context.new_var()
        self._gate_cache[key] = out
        context.gates_emitted += 1
        context.observe_gate(_OP_MAJ, pa * (1 << 32) + pb, pc, out, 6)
        context.emit_gate([-pa, -pb, out])
        context.emit_gate([-pa, -pc, out])
        context.emit_gate([-pb, -pc, out])
        context.emit_gate([pa, pb, -out])
        context.emit_gate([pa, pc, -out])
        context.emit_gate([pb, pc, -out])
        return -out if sign else out

    def force_true(self, lit: int) -> None:
        """Emit a unit clause making ``lit`` true (in the active group)."""
        value = self._const_value(lit)
        if value is True:
            return
        self.context.emit([lit])

    # ------------------------------------------------------------ bit-vectors

    def const(self, value: int, width: Optional[int] = None) -> Bits:
        width = width or self.width
        pattern = to_unsigned(value, width)
        return tuple(
            self.true if (pattern >> position) & 1 else self.false
            for position in range(width)
        )

    def fresh(self, width: Optional[int] = None) -> Bits:
        width = width or self.width
        return tuple(self.context.new_var() for _ in range(width))

    def fresh_narrowed(
        self, low_bits: int, signed: bool, width: Optional[int] = None
    ) -> Bits:
        """A fresh vector with only ``low_bits`` free variables.

        The high bits are pinned: constant false for an unsigned narrowing
        (the vector ranges over ``[0, 2**low_bits - 1]``) or a replica of
        the top free bit for a signed one (plain sign extension, ranging
        over ``[-2**(low_bits-1), 2**(low_bits-1) - 1]``).  Downstream
        circuitry then constant-folds or gate-shares away the work the
        pinned bits would have cost.
        """
        width = width or self.width
        if low_bits >= width:
            return self.fresh(width)
        low = tuple(self.context.new_var() for _ in range(low_bits))
        high_bit = low[-1] if signed else self.false
        return low + (high_bit,) * (width - low_bits)

    def constant_of(self, bits: Bits) -> Optional[int]:
        """If every bit is constant, return the signed integer value."""
        pattern = 0
        for position, lit in enumerate(bits):
            value = self._const_value(lit)
            if value is None:
                return None
            if value:
                pattern |= 1 << position
        if pattern >= 1 << (len(bits) - 1):
            pattern -= 1 << len(bits)
        return pattern

    def zero_extend(self, bits: Bits, width: int) -> Bits:
        if len(bits) >= width:
            return bits[:width]
        return bits + tuple(self.false for _ in range(width - len(bits)))

    def sign_extend(self, bits: Bits, width: int) -> Bits:
        if len(bits) >= width:
            return bits[:width]
        return bits + tuple(bits[-1] for _ in range(width - len(bits)))

    def bool_to_bits(self, lit: int, width: Optional[int] = None) -> Bits:
        width = width or self.width
        return (lit,) + tuple(self.false for _ in range(width - 1))

    # ------------------------------------------------------------- arithmetic

    def add(self, a: Bits, b: Bits, carry_in: Optional[int] = None) -> Bits:
        assert len(a) == len(b)
        cenc = self._cenc
        if cenc is not None and 0 < len(a) <= _MAX_VECTOR_BITS:
            carry = carry_in if carry_in is not None else self.false
            return cenc.add(a, b, carry)
        carry = carry_in if carry_in is not None else self.false
        out: list[int] = []
        if self.simplify:
            for bit_a, bit_b in zip(a, b):
                out.append(self.bit_xor3(bit_a, bit_b, carry))
                carry = self.bit_majority(bit_a, bit_b, carry)
            return tuple(out)
        for bit_a, bit_b in zip(a, b):
            partial = self.bit_xor(bit_a, bit_b)
            out.append(self.bit_xor(partial, carry))
            carry = self.bit_or(
                self.bit_and(bit_a, bit_b), self.bit_and(partial, carry)
            )
        return tuple(out)

    def sub(self, a: Bits, b: Bits) -> Bits:
        negated = tuple(-bit for bit in b)
        return self.add(a, negated, carry_in=self.true)

    def negate(self, a: Bits) -> Bits:
        zero = self.const(0, len(a))
        return self.sub(zero, a)

    def multiply(self, a: Bits, b: Bits, width: Optional[int] = None) -> Bits:
        """Shift-and-add multiplier truncated to ``width`` bits.

        Constant-aware: a fully constant operand becomes the control side,
        so the product decomposes into shift-adds of the other operand at
        the constant's set bits (no partial-product AND gates at all), and
        a fully constant pair folds to a constant outright.  Partial-product
        rows whose control bit is a known ``false`` are dropped, and rows
        masked by constant multiplicand bits fold through the constant
        propagation in :meth:`bit_and`/:meth:`add`.
        """
        width = width or len(a)
        if self.simplify:
            const_a = self.constant_of(a)
            const_b = self.constant_of(b)
            if const_a is not None and const_b is not None:
                product = to_unsigned(const_a, len(a)) * to_unsigned(const_b, len(b))
                return self.const(product & ((1 << width) - 1), width)
            if const_a is None and const_b is not None:
                # Make the constant the control side: popcount(const) rows of
                # pure shift-adds instead of a full partial-product array.
                a, b = b, a
        cenc = self._cenc
        if cenc is not None and 0 < width <= _MAX_VECTOR_BITS:
            self.context.true_lit
            return cenc.multiply(self.zero_extend(a, width), self.zero_extend(b, width))
        accumulator = self.const(0, width)
        a_ext = self.zero_extend(a, width)
        b_ext = self.zero_extend(b, width)
        for shift, control in enumerate(a_ext):
            if self._const_value(control) is False:
                continue
            partial_bits = [self.false] * shift + [
                self.bit_and(control, bit) for bit in b_ext[: width - shift]
            ]
            accumulator = self.add(accumulator, tuple(partial_bits))
        return accumulator

    def absolute(self, a: Bits) -> Bits:
        sign = a[-1]
        return self.mux(sign, self.negate(a), a)

    def divmod(self, a: Bits, b: Bits) -> tuple[Bits, Bits]:
        """C-style signed division and remainder (division by zero yields 0/a).

        The quotient and remainder are fresh vectors constrained by the
        defining identity ``|a| == q_u * |b| + r_u`` with ``0 <= r_u < |b|``,
        evaluated at double width to avoid overflow, then signed according to
        C's truncation-toward-zero rules.
        """
        width = len(a)
        double = width * 2
        sign_a, sign_b = a[-1], b[-1]
        abs_a, abs_b = self.absolute(a), self.absolute(b)
        quotient_u = self.fresh(width)
        remainder_u = self.fresh(width)
        product = self.multiply(
            self.zero_extend(quotient_u, double), self.zero_extend(abs_b, double), double
        )
        total = self.add(product, self.zero_extend(remainder_u, double))
        b_zero = -self.is_nonzero(b)
        identity = self.equals(total, self.zero_extend(abs_a, double))
        in_range = self.unsigned_less(remainder_u, abs_b)
        # When b != 0 the defining identity and range constraint must hold.
        self.context.emit([b_zero, identity])
        self.context.emit([b_zero, in_range])
        quotient_signed = self.mux(
            self.bit_xor(sign_a, sign_b), self.negate(quotient_u), quotient_u
        )
        remainder_signed = self.mux(sign_a, self.negate(remainder_u), remainder_u)
        quotient = self.mux(b_zero, self.const(0, width), quotient_signed)
        remainder = self.mux(b_zero, a, remainder_signed)
        return quotient, remainder

    # ------------------------------------------------------------ comparison

    def equals(self, a: Bits, b: Bits) -> int:
        cenc = self._cenc
        if cenc is not None and 0 < len(a) == len(b) <= _MAX_VECTOR_BITS:
            self.context.true_lit
            return cenc.equals(a, b)
        bits = [self.bit_equal(bit_a, bit_b) for bit_a, bit_b in zip(a, b)]
        if self.simplify:
            # MSB-first so the AND chain's high-bit prefix — identical across
            # the nearby constants of an array-index comparison — hashes to
            # one shared gate chain instead of one chain per constant.
            bits.reverse()
        return self.bit_and_many(bits)

    def unsigned_less(self, a: Bits, b: Bits) -> int:
        """a < b treating the vectors as unsigned integers."""
        cenc = self._cenc
        if cenc is not None and 0 < len(a) == len(b) <= _MAX_VECTOR_BITS:
            self.context.true_lit
            return cenc.unsigned_less(a, b)
        less = self.false
        if self.simplify:
            # When the bits differ, "less so far" is exactly b's bit;
            # otherwise the lower-order verdict stands: one XOR (shared with
            # any equality chain on the same operands) plus one mux per bit.
            for bit_a, bit_b in zip(a, b):  # LSB to MSB
                less = self.bit_ite(self.bit_xor(bit_a, bit_b), bit_b, less)
            return less
        for bit_a, bit_b in zip(a, b):  # LSB to MSB
            eq = self.bit_equal(bit_a, bit_b)
            lt = self.bit_and(-bit_a, bit_b)
            less = self.bit_or(lt, self.bit_and(eq, less))
        return less

    def signed_less(self, a: Bits, b: Bits) -> int:
        """a < b treating the vectors as two's-complement integers."""
        flipped_a = a[:-1] + (-a[-1],)
        flipped_b = b[:-1] + (-b[-1],)
        return self.unsigned_less(flipped_a, flipped_b)

    def signed_less_equal(self, a: Bits, b: Bits) -> int:
        return -self.signed_less(b, a)

    def is_nonzero(self, a: Bits) -> int:
        return self.bit_or_many(list(a))

    # ------------------------------------------------------------- structure

    def mux(self, cond: int, then_bits: Bits, else_bits: Bits) -> Bits:
        cenc = self._cenc
        if cenc is not None and 0 < len(then_bits) == len(else_bits) <= _MAX_VECTOR_BITS:
            self.context.true_lit
            return cenc.mux(cond, then_bits, else_bits)
        return tuple(
            self.bit_ite(cond, then_bit, else_bit)
            for then_bit, else_bit in zip(then_bits, else_bits)
        )

    def assert_equal(self, target: Bits, source: Bits) -> None:
        """Emit clauses forcing ``target == source`` (in the active group)."""
        for target_bit, source_bit in zip(target, source):
            value = self._const_value(source_bit)
            target_value = self._const_value(target_bit)
            if target_value is not None:
                # Narrowed targets carry constant high bits: the equation
                # degenerates to a unit on the source (or a contradiction
                # when both sides are constants that disagree).
                if value is None:
                    self.context.emit([source_bit if target_value else -source_bit])
                elif value != target_value:
                    self.context.emit([self.false])
            elif value is True:
                self.context.emit([target_bit])
            elif value is False:
                self.context.emit([-target_bit])
            else:
                self.context.emit([-target_bit, source_bit])
                self.context.emit([target_bit, -source_bit])

    def fix_to_value(self, bits: Bits, value: int) -> None:
        """Emit unit clauses pinning ``bits`` to a concrete integer value."""
        pattern = to_unsigned(value, len(bits))
        for position, lit in enumerate(bits):
            wanted = bool((pattern >> position) & 1)
            known = self._const_value(lit)
            if known is None:
                self.context.emit([lit if wanted else -lit])
            elif known != wanted:
                # Pinning a constant to a different value: emit a contradiction.
                self.context.emit([self.false])

    def decode(self, bits: Bits, model: dict[int, bool]) -> int:
        """Read back a signed integer value of ``bits`` under a SAT model."""
        pattern = 0
        for position, lit in enumerate(bits):
            constant = self._const_value(lit)
            if constant is not None:
                value = constant
            else:
                assigned = model.get(abs(lit), False)
                value = assigned if lit > 0 else not assigned
            if value:
                pattern |= 1 << position
        if pattern >= 1 << (len(bits) - 1):
            pattern -= 1 << len(bits)
        return pattern
