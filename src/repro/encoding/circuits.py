"""Gate-level circuits: Tseitin encoding of fixed-width integer operations.

A symbolic value is a :data:`Bits` tuple of CNF literals, least-significant
bit first.  Constant bits are represented by the context's ``true_lit`` (or
its negation), which lets the builder constant-fold aggressively — the
"constant-folding input-independent parts of the constraints" optimisation
the paper borrows from concolic execution.

All emitted clauses go through :meth:`EncodingContext.emit`, so whatever
statement group is active when an operation is encoded owns its clauses.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.encoding.context import EncodingContext
from repro.lang.semantics import to_unsigned

Bits = tuple[int, ...]


class CircuitBuilder:
    """Builds bit-vector circuits over an :class:`EncodingContext`."""

    def __init__(self, context: EncodingContext) -> None:
        self.context = context
        self.width = context.width

    # ----------------------------------------------------------- bit helpers

    @property
    def true(self) -> int:
        return self.context.true_lit

    @property
    def false(self) -> int:
        return -self.context.true_lit

    def _const_value(self, lit: int) -> Optional[bool]:
        """Return the Boolean value of a literal if it is a known constant."""
        if lit == self.true:
            return True
        if lit == self.false:
            return False
        return None

    def bit_not(self, lit: int) -> int:
        return -lit

    def bit_and(self, a: int, b: int) -> int:
        for first, second in ((a, b), (b, a)):
            value = self._const_value(first)
            if value is True:
                return second
            if value is False:
                return self.false
        if a == b:
            return a
        if a == -b:
            return self.false
        out = self.context.new_var()
        self.context.emit([-a, -b, out])
        self.context.emit([a, -out])
        self.context.emit([b, -out])
        return out

    def bit_or(self, a: int, b: int) -> int:
        return -self.bit_and(-a, -b)

    def bit_xor(self, a: int, b: int) -> int:
        value_a, value_b = self._const_value(a), self._const_value(b)
        if value_a is not None:
            return -b if value_a else b
        if value_b is not None:
            return -a if value_b else a
        if a == b:
            return self.false
        if a == -b:
            return self.true
        out = self.context.new_var()
        self.context.emit([-a, -b, -out])
        self.context.emit([a, b, -out])
        self.context.emit([-a, b, out])
        self.context.emit([a, -b, out])
        return out

    def bit_and_many(self, lits: Sequence[int]) -> int:
        result = self.true
        for lit in lits:
            result = self.bit_and(result, lit)
        return result

    def bit_or_many(self, lits: Sequence[int]) -> int:
        result = self.false
        for lit in lits:
            result = self.bit_or(result, lit)
        return result

    def bit_ite(self, cond: int, then_lit: int, else_lit: int) -> int:
        value = self._const_value(cond)
        if value is True:
            return then_lit
        if value is False:
            return else_lit
        if then_lit == else_lit:
            return then_lit
        out = self.context.new_var()
        self.context.emit([-cond, -then_lit, out])
        self.context.emit([-cond, then_lit, -out])
        self.context.emit([cond, -else_lit, out])
        self.context.emit([cond, else_lit, -out])
        return out

    def bit_equal(self, a: int, b: int) -> int:
        return -self.bit_xor(a, b)

    def force_true(self, lit: int) -> None:
        """Emit a unit clause making ``lit`` true (in the active group)."""
        value = self._const_value(lit)
        if value is True:
            return
        self.context.emit([lit])

    # ------------------------------------------------------------ bit-vectors

    def const(self, value: int, width: Optional[int] = None) -> Bits:
        width = width or self.width
        pattern = to_unsigned(value, width)
        return tuple(
            self.true if (pattern >> position) & 1 else self.false
            for position in range(width)
        )

    def fresh(self, width: Optional[int] = None) -> Bits:
        width = width or self.width
        return tuple(self.context.new_var() for _ in range(width))

    def constant_of(self, bits: Bits) -> Optional[int]:
        """If every bit is constant, return the signed integer value."""
        pattern = 0
        for position, lit in enumerate(bits):
            value = self._const_value(lit)
            if value is None:
                return None
            if value:
                pattern |= 1 << position
        if pattern >= 1 << (len(bits) - 1):
            pattern -= 1 << len(bits)
        return pattern

    def zero_extend(self, bits: Bits, width: int) -> Bits:
        if len(bits) >= width:
            return bits[:width]
        return bits + tuple(self.false for _ in range(width - len(bits)))

    def sign_extend(self, bits: Bits, width: int) -> Bits:
        if len(bits) >= width:
            return bits[:width]
        return bits + tuple(bits[-1] for _ in range(width - len(bits)))

    def bool_to_bits(self, lit: int, width: Optional[int] = None) -> Bits:
        width = width or self.width
        return (lit,) + tuple(self.false for _ in range(width - 1))

    # ------------------------------------------------------------- arithmetic

    def add(self, a: Bits, b: Bits, carry_in: Optional[int] = None) -> Bits:
        assert len(a) == len(b)
        carry = carry_in if carry_in is not None else self.false
        out: list[int] = []
        for bit_a, bit_b in zip(a, b):
            partial = self.bit_xor(bit_a, bit_b)
            out.append(self.bit_xor(partial, carry))
            carry = self.bit_or(
                self.bit_and(bit_a, bit_b), self.bit_and(partial, carry)
            )
        return tuple(out)

    def sub(self, a: Bits, b: Bits) -> Bits:
        negated = tuple(-bit for bit in b)
        return self.add(a, negated, carry_in=self.true)

    def negate(self, a: Bits) -> Bits:
        zero = self.const(0, len(a))
        return self.sub(zero, a)

    def multiply(self, a: Bits, b: Bits, width: Optional[int] = None) -> Bits:
        """Shift-and-add multiplier truncated to ``width`` bits."""
        width = width or len(a)
        accumulator = self.const(0, width)
        a_ext = self.zero_extend(a, width)
        b_ext = self.zero_extend(b, width)
        for shift, control in enumerate(a_ext):
            if self._const_value(control) is False:
                continue
            partial_bits = [self.false] * shift + [
                self.bit_and(control, bit) for bit in b_ext[: width - shift]
            ]
            accumulator = self.add(accumulator, tuple(partial_bits))
        return accumulator

    def absolute(self, a: Bits) -> Bits:
        sign = a[-1]
        return self.mux(sign, self.negate(a), a)

    def divmod(self, a: Bits, b: Bits) -> tuple[Bits, Bits]:
        """C-style signed division and remainder (division by zero yields 0/a).

        The quotient and remainder are fresh vectors constrained by the
        defining identity ``|a| == q_u * |b| + r_u`` with ``0 <= r_u < |b|``,
        evaluated at double width to avoid overflow, then signed according to
        C's truncation-toward-zero rules.
        """
        width = len(a)
        double = width * 2
        sign_a, sign_b = a[-1], b[-1]
        abs_a, abs_b = self.absolute(a), self.absolute(b)
        quotient_u = self.fresh(width)
        remainder_u = self.fresh(width)
        product = self.multiply(
            self.zero_extend(quotient_u, double), self.zero_extend(abs_b, double), double
        )
        total = self.add(product, self.zero_extend(remainder_u, double))
        b_zero = -self.is_nonzero(b)
        identity = self.equals(total, self.zero_extend(abs_a, double))
        in_range = self.unsigned_less(remainder_u, abs_b)
        # When b != 0 the defining identity and range constraint must hold.
        self.context.emit([b_zero, identity])
        self.context.emit([b_zero, in_range])
        quotient_signed = self.mux(
            self.bit_xor(sign_a, sign_b), self.negate(quotient_u), quotient_u
        )
        remainder_signed = self.mux(sign_a, self.negate(remainder_u), remainder_u)
        quotient = self.mux(b_zero, self.const(0, width), quotient_signed)
        remainder = self.mux(b_zero, a, remainder_signed)
        return quotient, remainder

    # ------------------------------------------------------------ comparison

    def equals(self, a: Bits, b: Bits) -> int:
        return self.bit_and_many(
            [self.bit_equal(bit_a, bit_b) for bit_a, bit_b in zip(a, b)]
        )

    def unsigned_less(self, a: Bits, b: Bits) -> int:
        """a < b treating the vectors as unsigned integers."""
        less = self.false
        for bit_a, bit_b in zip(a, b):  # LSB to MSB
            eq = self.bit_equal(bit_a, bit_b)
            lt = self.bit_and(-bit_a, bit_b)
            less = self.bit_or(lt, self.bit_and(eq, less))
        return less

    def signed_less(self, a: Bits, b: Bits) -> int:
        """a < b treating the vectors as two's-complement integers."""
        flipped_a = a[:-1] + (-a[-1],)
        flipped_b = b[:-1] + (-b[-1],)
        return self.unsigned_less(flipped_a, flipped_b)

    def signed_less_equal(self, a: Bits, b: Bits) -> int:
        return -self.signed_less(b, a)

    def is_nonzero(self, a: Bits) -> int:
        return self.bit_or_many(list(a))

    # ------------------------------------------------------------- structure

    def mux(self, cond: int, then_bits: Bits, else_bits: Bits) -> Bits:
        return tuple(
            self.bit_ite(cond, then_bit, else_bit)
            for then_bit, else_bit in zip(then_bits, else_bits)
        )

    def assert_equal(self, target: Bits, source: Bits) -> None:
        """Emit clauses forcing ``target == source`` (in the active group)."""
        for target_bit, source_bit in zip(target, source):
            value = self._const_value(source_bit)
            if value is True:
                self.context.emit([target_bit])
            elif value is False:
                self.context.emit([-target_bit])
            else:
                self.context.emit([-target_bit, source_bit])
                self.context.emit([target_bit, -source_bit])

    def fix_to_value(self, bits: Bits, value: int) -> None:
        """Emit unit clauses pinning ``bits`` to a concrete integer value."""
        pattern = to_unsigned(value, len(bits))
        for position, lit in enumerate(bits):
            wanted = bool((pattern >> position) & 1)
            known = self._const_value(lit)
            if known is None:
                self.context.emit([lit if wanted else -lit])
            elif known != wanted:
                # Pinning a constant to a different value: emit a contradiction.
                self.context.emit([self.false])

    def decode(self, bits: Bits, model: dict[int, bool]) -> int:
        """Read back a signed integer value of ``bits`` under a SAT model."""
        pattern = 0
        for position, lit in enumerate(bits):
            constant = self._const_value(lit)
            if constant is not None:
                value = constant
            else:
                assigned = model.get(abs(lit), False)
                value = assigned if lit > 0 else not assigned
            if value:
                pattern |= 1 << position
        if pattern >= 1 << (len(bits) - 1):
            pattern -= 1 << len(bits)
        return pattern
