"""The extended trace formula and its conversion to a partial MaxSAT instance.

Following Section 3.4 of the paper, the trace formula is kept in two parts:

* hard clauses — the constraint that the initial state equals the failing
  test input, the asserted post-condition, and structural clauses;
* clause groups — for every program statement executed by the trace, the
  CNF clauses encoding that statement's transition relation.

:meth:`TraceFormula.to_wcnf` augments every clause of a group with the
group's fresh selector variable (Equation 2: ``CNF(rho, lambda_rho)``) and
adds the selector as a soft clause, producing exactly the pMAX-SAT instance
BugAssist feeds to the solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.encoding.context import EncodingContext, StatementGroup
from repro.maxsat import WCNF


@dataclass
class TraceStep:
    """One executed statement in the failing trace (for reports and slicing)."""

    line: int
    function: str
    kind: str
    iteration: Optional[int] = None
    description: str = ""


@dataclass
class TraceFormula:
    """The extended trace formula of one failing execution."""

    width: int
    num_vars: int
    hard: list[list[int]] = field(default_factory=list)
    groups: dict[StatementGroup, list[list[int]]] = field(default_factory=dict)
    steps: list[TraceStep] = field(default_factory=list)
    test_inputs: dict[str, int] = field(default_factory=dict)
    assertion_description: str = ""
    #: Number of gate-cache hits while encoding (structure-hash sharing).
    gates_shared: int = 0
    #: Name of the circuit simplifier configuration used by the encoder.
    simplifier: str = ""
    #: Structural signature of the gate cache (keys cross-test core reuse).
    signature: str = ""
    #: Bits eliminated by analysis-guided range narrowing (0 = narrowing off
    #: or nothing provable).
    narrowed_vars: int = 0

    # ------------------------------------------------------------ statistics

    @property
    def num_assignments(self) -> int:
        """Number of assignment operations in the trace (Table 3's assign#)."""
        return sum(1 for step in self.steps if step.kind in ("assign", "array-assign", "decl"))

    @property
    def num_clauses(self) -> int:
        """Total clause count (hard plus grouped), Table 3's clause#."""
        return len(self.hard) + sum(len(clauses) for clauses in self.groups.values())

    @property
    def lines(self) -> set[int]:
        """Source lines that contributed at least one clause group."""
        return {group.line for group in self.groups}

    @classmethod
    def from_context(
        cls,
        context: EncodingContext,
        steps: list[TraceStep],
        test_inputs: dict[str, int],
        assertion_description: str = "",
        simplifier: str = "",
        narrowed_vars: int = 0,
    ) -> "TraceFormula":
        return cls(
            width=context.width,
            num_vars=context.num_vars,
            hard=list(context.hard),
            groups={group: list(clauses) for group, clauses in context.groups.items()},
            steps=steps,
            test_inputs=dict(test_inputs),
            assertion_description=assertion_description,
            gates_shared=context.gate_hits,
            simplifier=simplifier,
            signature=context.gate_signature,
            narrowed_vars=narrowed_vars,
        )

    # ------------------------------------------------------------ conversion

    def to_wcnf(
        self,
        weight_of: Optional[Callable[[StatementGroup], int]] = None,
        hard_groups: Optional[set[int]] = None,
    ) -> tuple[WCNF, dict[int, StatementGroup]]:
        """Build the partial MaxSAT instance.

        ``weight_of`` assigns a weight to each group's soft selector clause
        (default 1); the loop-debugging extension passes the iteration-based
        weights of Equation 3.  ``hard_groups`` is a set of source lines whose
        clauses must be treated as hard (the paper does this for library
        functions that are known to be correct).

        Returns the WCNF plus a map from selector variable to group, so that
        CoMSS members can be mapped back to statements.
        """
        wcnf = WCNF()
        wcnf._num_vars = self.num_vars  # reserve the trace-formula variables
        wcnf.signature = self.signature or None
        for clause in self.hard:
            wcnf.add_hard(clause)
        selector_to_group: dict[int, StatementGroup] = {}
        for group in sorted(self.groups):
            clauses = self.groups[group]
            if hard_groups is not None and group.line in hard_groups:
                for clause in clauses:
                    wcnf.add_hard(clause)
                continue
            weight = weight_of(group) if weight_of is not None else 1
            selector = wcnf.add_soft_group(clauses, weight=weight, label=group)
            selector_to_group[selector] = group
        return wcnf, selector_to_group
