"""Error-trace reduction techniques (Table 3 of the paper).

Large programs produce huge trace formulas; the paper reduces them with
"existing trace reduction techniques like program slicing (S), concolic
simulation (C) and isolating failure-inducing input using delta debugging
(D)".  This package provides all three:

* :func:`slice_relevant_lines` — static backward slicing (S); the resulting
  line set is handed to the concolic tracer, which executes statements
  outside the slice concretely only.
* :func:`concretizable_functions` — concolic simulation (C): functions that
  cannot influence the failure are executed concretely (the tracer's
  ``concrete_functions``), as the paper does for the recursive tokenizer of
  print_tokens.
* :func:`ddmin` / :func:`minimize_failing_input` — delta debugging (D):
  isolate a minimal failure-inducing portion of the input.
"""

from repro.reduction.slicing import slice_relevant_lines, sliced_tracer_settings
from repro.reduction.concretize import concretizable_functions
from repro.reduction.delta import ddmin, minimize_failing_input

__all__ = [
    "slice_relevant_lines",
    "sliced_tracer_settings",
    "concretizable_functions",
    "ddmin",
    "minimize_failing_input",
]
