"""Concolic simulation (the "C" trace-reduction technique).

The paper's print_tokens experiment uses "concrete execution for the
recursive function and variables", shrinking the trace from 65 698 to 239
assignments — at the cost of assuming the concretized functions are bug
free.  The helper below picks such functions automatically: every function
that is *not* on a call path to an assertion, output or slicing-criterion
variable can be executed concretely.
"""

from __future__ import annotations

from typing import Iterable

from repro.cfg import call_graph, called_functions
from repro.cfg.defuse import statement_defs, statement_uses
from repro.lang import ast


def concretizable_functions(
    program: ast.Program,
    protected: Iterable[str] = (),
    criterion_variables: Iterable[str] = (),
) -> set[str]:
    """Functions that can safely be executed concretely only.

    A function is concretizable when it neither contains an assertion or
    ``print_int`` nor writes any global variable in ``criterion_variables``
    (nor calls, transitively, a function that does).  ``protected`` names are
    never concretized (typically the function under suspicion).
    """
    criterion = set(criterion_variables)
    protected_set = set(protected) | {"main"}
    directly_unsafe: set[str] = set()

    def visit(statements: tuple[ast.Stmt, ...]) -> bool:
        unsafe = False
        for stmt in statements:
            if isinstance(stmt, (ast.Assert, ast.Print)):
                unsafe = True
            if statement_defs(stmt) & criterion or statement_uses(stmt) & criterion:
                unsafe = True
            if isinstance(stmt, ast.If):
                unsafe = visit(stmt.then_body) or unsafe
                unsafe = visit(stmt.else_body) or unsafe
            elif isinstance(stmt, ast.While):
                unsafe = visit(stmt.body) or unsafe
        return unsafe

    for name, function in program.functions.items():
        if visit(function.body):
            directly_unsafe.add(name)

    graph = call_graph(program)
    result: set[str] = set()
    for name in program.functions:
        if name in protected_set:
            continue
        reachable = {name} | called_functions(program, name)
        if reachable & directly_unsafe:
            continue
        # Callers of protected functions must stay symbolic too, otherwise
        # the protected function would disappear from the trace.
        if reachable & (protected_set - {"main"}):
            continue
        result.add(name)
    # Never concretize a function that (transitively) calls a non-concretized
    # sibling which is unsafe — already covered by the reachability check.
    del graph
    return result
