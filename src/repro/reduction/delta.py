"""Delta debugging (the "D" trace-reduction technique).

Zeller and Hildebrandt's ddmin algorithm isolates a minimal failure-inducing
portion of an input.  The paper applies it to the scheduler benchmarks,
whose error-inducing inputs call "a bunch of procedures before deviating
from the golden output": minimizing the command sequence dramatically
shortens the error trace before the MaxSAT instance is built.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def ddmin(items: Sequence[T], still_fails: Callable[[list[T]], bool]) -> list[T]:
    """Classic ddmin: a 1-minimal sublist on which ``still_fails`` holds.

    ``still_fails`` must hold for the full input.  The result is a sublist
    such that removing any single remaining element makes the failure
    disappear (1-minimality).
    """
    current = list(items)
    if not still_fails(current):
        raise ValueError("ddmin requires the full input to fail")
    granularity = 2
    while len(current) >= 2:
        chunk = max(len(current) // granularity, 1)
        subsets = [current[i : i + chunk] for i in range(0, len(current), chunk)]
        reduced = False
        for index, subset in enumerate(subsets):
            complement = [
                item
                for position, other in enumerate(subsets)
                if position != index
                for item in other
            ]
            if complement and still_fails(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


def minimize_failing_input(
    inputs: Sequence[int],
    still_fails: Callable[[list[int]], bool],
    neutral: int = 0,
) -> list[int]:
    """Minimize a fixed-length input vector by neutralising positions.

    Unlike plain ddmin (which shortens the list), this keeps the vector
    length but replaces as many positions as possible with ``neutral`` while
    the failure persists — appropriate for programs whose input arity is
    fixed.  Returns the minimized vector.
    """
    current = list(inputs)
    if not still_fails(current):
        raise ValueError("the full input must fail")
    positions = list(range(len(current)))
    failing_positions = ddmin(
        positions,
        lambda kept: still_fails(
            [value if index in set(kept) else neutral for index, value in enumerate(current)]
        ),
    )
    kept = set(failing_positions)
    return [value if index in kept else neutral for index, value in enumerate(current)]
