"""Program slicing (the "S" trace-reduction technique)."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cfg import backward_slice_lines
from repro.lang import ast


def sliced_tracer_settings(
    program: ast.Program,
    criterion_variables: Optional[Iterable[str]] = None,
    protected_functions: Iterable[str] = (),
) -> dict[str, object]:
    """Tracer keyword arguments implementing slicing-based trace reduction.

    Returns ``{"relevant_lines": ..., "concrete_functions": ...}``: the
    backward slice plus the list of functions none of whose statements are in
    the slice — such functions are executed concretely, which removes whole
    irrelevant call trees from the formula (function-level slicing).
    """
    relevant = backward_slice_lines(program, criterion_variables)
    protected = set(protected_functions) | {"main"}
    concrete: list[str] = []
    for name, function in program.functions.items():
        if name in protected:
            continue
        lines = _function_lines(function)
        if lines and not lines & relevant:
            concrete.append(name)
    return {"relevant_lines": relevant, "concrete_functions": tuple(sorted(concrete))}


def _function_lines(function: ast.Function) -> set[int]:
    lines: set[int] = set()

    def visit(statements) -> None:
        for stmt in statements:
            lines.add(stmt.line)
            if isinstance(stmt, ast.If):
                visit(stmt.then_body)
                visit(stmt.else_body)
            elif isinstance(stmt, ast.While):
                visit(stmt.body)

    visit(function.body)
    return lines


def slice_relevant_lines(
    program: ast.Program,
    criterion_variables: Optional[Iterable[str]] = None,
) -> set[int]:
    """Source lines that may influence the program's assertions and outputs.

    The returned set is meant to be passed as ``relevant_lines`` to
    :class:`repro.concolic.ConcolicTracer`: statements outside the slice are
    executed concretely and contribute no clauses to the MaxSAT instance,
    which is exactly how "a simple program slicing removed the assignments
    irrelevant to the assertion being checked" in the paper's tot_info
    experiment.
    """
    return backward_slice_lines(program, criterion_variables)
