"""Metrics: counters, gauges and fixed-bucket histograms with a registry.

The registry absorbs the numbers the stack already produces — per-solve
``SolverStats`` deltas (propagations/conflicts/restarts from the C cores
or the Python fallback), encode phase timings, store/cache hit counters —
under one naming scheme, and renders them in Prometheus text exposition
format for the daemon's ``metrics`` op.

Deliberately small: no label cardinality explosion protection, no
decay, no exemplars.  Everything is process-local and lock-guarded; the
serve daemon is the aggregation point (worker subprocess effort already
flows to it through the shard replies).

Percentiles use the histogram-quantile estimate: find the bucket the
rank falls in and linearly interpolate within it.  That makes p50/p95
approximations whose error is bounded by bucket width — the same deal
Prometheus users get — and the math is covered by dedicated tests,
including the empty-histogram (``None``) and single-sample edge cases.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Iterable, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Seconds-scaled buckets covering micro-encode spans (~100 µs) through
#: slow cold compiles (tens of seconds).
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '%s="%s"' % (k, str(v).replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in sorted(labels.items())
    )
    return "{%s}" % inner


class Counter:
    """Monotonically increasing count (rendered with a ``_total`` suffix)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Optional[dict] = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def family_name(self) -> str:
        # Prometheus text-format parsers group samples by the name on the
        # TYPE line, so the header must carry the same ``_total`` suffix
        # as the rendered sample — a bare-name header leaves the samples
        # untyped (and trips promtool/OpenMetrics ingestion).
        return self.name + "_total"

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render(self) -> Iterable[str]:
        yield "%s_total%s %s" % (
            self.name, _format_labels(self.labels), _format_value(self.value),
        )

    def snapshot_value(self):
        return self.value


class Gauge:
    """A value that can go either way (queue depth, resident sessions)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Optional[dict] = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def family_name(self) -> str:
        return self.name

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render(self) -> Iterable[str]:
        yield "%s%s %s" % (
            self.name, _format_labels(self.labels), _format_value(self.value),
        )

    def snapshot_value(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram with cumulative ``le`` semantics.

    ``bounds`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches the rest.  ``observe`` finds the first bound >= the sample
    (``le`` is inclusive, matching Prometheus) via bisect.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        labels: Optional[dict] = None,
    ):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one finite bucket bound")
        self.bounds = tuple(bounds)
        self._counts = [0] * (len(bounds) + 1)  # trailing slot is +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    @property
    def family_name(self) -> str:
        return self.name

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, p: float) -> Optional[float]:
        """Histogram-quantile estimate of the ``p``-th percentile.

        ``None`` on an empty histogram.  Linear interpolation within the
        bucket the rank lands in; ranks in the ``+Inf`` bucket clamp to
        the highest finite bound (there is no upper edge to interpolate
        toward — same convention as ``histogram_quantile``).
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return None
        rank = (p / 100.0) * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count > 0:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                upper = self.bounds[index]
                lower = self.bounds[index - 1] if index > 0 else 0.0
                within = (rank - previous) / bucket_count
                return lower + (upper - lower) * within
        return self.bounds[-1]

    def render(self) -> Iterable[str]:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            acc_sum = self._sum
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, counts):
            cumulative += bucket_count
            labels = dict(self.labels)
            labels["le"] = _format_value(bound)
            yield "%s_bucket%s %d" % (self.name, _format_labels(labels), cumulative)
        labels = dict(self.labels)
        labels["le"] = "+Inf"
        yield "%s_bucket%s %d" % (self.name, _format_labels(labels), total)
        yield "%s_sum%s %s" % (
            self.name, _format_labels(self.labels), _format_value(acc_sum),
        )
        yield "%s_count%s %d" % (self.name, _format_labels(self.labels), total)

    def snapshot_value(self):
        return {
            "count": self.count,
            "sum": self.sum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class MetricsRegistry:
    """Get-or-create home for metrics, with Prometheus rendering.

    Families are keyed by ``(name, sorted label items)`` so repeated
    lookups return the same instrument — callers never hold references
    across module boundaries, they just re-ask the registry.
    """

    def __init__(self) -> None:
        self._metrics: dict = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        key = (name, tuple(sorted((labels or {}).items())))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        "metric %r already registered as %s"
                        % (name, existing.kind)
                    )
                return existing
            metric = cls(name, help=help, labels=labels, **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Optional[dict] = None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Optional[dict] = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        labels: Optional[dict] = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def render_prometheus(self) -> str:
        """Text exposition of every registered metric (``# HELP``/``# TYPE``)."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: list[str] = []
        seen_headers: set = set()
        for metric in sorted(metrics, key=lambda m: m.name):
            family = metric.family_name
            if family not in seen_headers:
                seen_headers.add(family)
                if metric.help:
                    lines.append("# HELP %s %s" % (family, metric.help))
                lines.append("# TYPE %s %s" % (family, metric.kind))
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """Flat JSON-ready view: counters/gauges as numbers, histograms as
        ``{count, sum, p50, p95}`` dicts."""
        with self._lock:
            metrics = list(self._metrics.items())
        out: dict = {}
        for (name, label_items), metric in sorted(metrics):
            key = name + _format_labels(dict(label_items))
            out[key] = metric.snapshot_value()
        return out

    def reset(self) -> None:
        """Drop every instrument (test isolation only)."""
        with self._lock:
            self._metrics.clear()


#: The process-wide registry the instrumented layers record into.
REGISTRY = MetricsRegistry()
