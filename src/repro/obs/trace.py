"""Span tracing: one clock and one request identity for the whole stack.

Before this module, per-phase visibility was a patchwork — ``SolverStats``
in the solver, the encode-profile side table of the compiled artifact,
``session.last_request_profile``, and ad-hoc dicts in the daemon's
``stats`` op — none of which shared a clock, a schema, or a request
identity.  A slow request could not be decomposed into encode vs. solve
vs. queue time.  :func:`span` is now the *single timing source*: every
phase the old profiles reported is measured by a span, and the profiles
are derived from span durations.

Three usage tiers, by how much context the caller has:

* :func:`span` — a context manager reading the thread-local trace context.
  It **always** measures wall time (``Span.duration`` is valid whether or
  not tracing is enabled), and records a trace event only when a collector
  is bound.  With tracing off the cost is one small object plus two
  ``perf_counter_ns`` calls — the ≤3 % overhead micro-assert in the
  benchmarks holds the line on this.
* :func:`trace` — opens a root span and binds a :class:`TraceCollector`
  to the calling thread; used by in-process callers (benchmark runs, the
  session API).  With ``REPRO_TRACE=export`` the finished trace is written
  as Chrome trace-event JSON plus a JSON log line (see
  :mod:`repro.obs.export`).
* explicit-context helpers — :func:`start_request_trace` (the serve
  frontend, where one asyncio thread interleaves many requests and
  thread-locals would cross wires), :func:`attached_span` (dispatcher
  threads recording into a registered collector by trace id),
  :func:`bind_trace` (executor threads adopting a request's context), and
  :func:`remote_trace` / :func:`merge_spans` (subprocess workers
  collecting spans locally and shipping them back for stitching).

A *trace id* is minted at the outermost entry point (the serve frontend
for daemon traffic, :func:`trace` for in-process runs), carried in the
wire protocol as the optional ``trace_id`` request field, and propagated
into worker-pool subprocesses and ``localize_batch(executor="process")``
shards — so one trace stitches router → daemon → worker → solver.  Span
timestamps are epoch-anchored microseconds (wall clock at span start,
monotonic clock for the duration), which keeps per-process timing
monotonic while letting spans from different processes merge onto one
timeline.

Gating: ``REPRO_TRACE=off|on|export`` (default ``off``).  ``on`` collects
spans for callers that hold a collector; ``export`` additionally writes
every finished root trace to ``$REPRO_TRACE_DIR`` (default
``./repro-traces``).
"""

from __future__ import annotations

import os
import re
import threading
import time
import weakref
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Optional

__all__ = [
    "Span",
    "TraceCollector",
    "attached_span",
    "bind_trace",
    "current_context",
    "current_trace_id",
    "merge_spans",
    "new_trace_id",
    "remote_trace",
    "span",
    "start_request_trace",
    "trace",
    "tracing_mode",
    "valid_trace_id",
]

#: The tracing knob.  Orthogonal to the ``REPRO_PROPAGATION`` /
#: ``REPRO_SEARCH`` / ``REPRO_ENCODE`` backend knobs: those pick *which
#: code* runs, this one only decides whether its phases are recorded.
TRACE_ENV = "REPRO_TRACE"
TRACE_DIR_ENV = "REPRO_TRACE_DIR"
DEFAULT_TRACE_DIR = "repro-traces"

_MODES = ("off", "on", "export")


def tracing_mode() -> str:
    """The active tracing mode: ``"off"``, ``"on"`` or ``"export"``.

    Read from the environment on every call so tests (and long-lived
    daemons restarted with a new environment) see the current value; the
    hot path (:func:`span`) never calls this — it checks the thread-local
    collector instead, which only exists when a trace was started.
    Unrecognized values degrade to ``"off"``: a typo in an env var must
    never crash serving.
    """
    value = os.environ.get(TRACE_ENV, "off").strip().lower()
    if value in _MODES:
        return value
    if value in ("1", "true", "yes"):
        return "on"
    return "off"


def trace_export_dir() -> str:
    """Directory receiving exported traces (``REPRO_TRACE_DIR`` override)."""
    return os.environ.get(TRACE_DIR_ENV, "").strip() or DEFAULT_TRACE_DIR


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return os.urandom(8).hex()


_TRACE_ID_RE = re.compile(r"[0-9a-f]{8,32}")


def valid_trace_id(value: object) -> bool:
    """Whether ``value`` is a well-formed trace id (8–32 lowercase hex).

    Anything adopting an id from outside the process (the serve frontend
    reading the wire ``trace_id`` field) must check it first: the id
    names the export file, so a free-form string is a path-injection
    surface (``trace_id="../../etc/x"`` would escape the trace dir).
    """
    return isinstance(value, str) and _TRACE_ID_RE.fullmatch(value) is not None


def _new_span_id() -> str:
    return os.urandom(4).hex()


# ------------------------------------------------------------- collectors

class TraceCollector:
    """The spans of one trace, as plain JSON-ready dicts.

    Thread-safe: dispatcher threads, executor threads and merge calls from
    subprocess replies all append concurrently.  A collector is registered
    process-globally by trace id while its trace is open, so explicit-
    context helpers (and merges of shipped subprocess spans) can find it
    without thread-local plumbing.
    """

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self._spans: list[dict] = []
        self._lock = threading.Lock()

    def add(self, span_dict: dict) -> None:
        with self._lock:
            self._spans.append(span_dict)

    def extend(self, span_dicts: list) -> None:
        with self._lock:
            self._spans.extend(dict(s) for s in span_dicts)

    def spans(self) -> list[dict]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: Registry of collectors for currently open traces, by trace id.  Entries
#: live from trace start to trace finish; :func:`attached_span` and
#: :func:`merge_spans` resolve through it.
_ACTIVE: dict[str, TraceCollector] = {}
_ACTIVE_LOCK = threading.Lock()


def _register(collector: TraceCollector) -> None:
    with _ACTIVE_LOCK:
        _ACTIVE[collector.trace_id] = collector


def _unregister(trace_id: str) -> None:
    with _ACTIVE_LOCK:
        _ACTIVE.pop(trace_id, None)


def collector_for(trace_id: Optional[str]) -> Optional[TraceCollector]:
    """The registered collector of an open trace, or ``None``."""
    if trace_id is None:
        return None
    with _ACTIVE_LOCK:
        return _ACTIVE.get(trace_id)


def merge_spans(trace_id: Optional[str], span_dicts: Optional[list]) -> int:
    """Fold spans shipped back from a subprocess into the open trace.

    Returns the number of spans merged; silently 0 when the trace has
    already closed (a worker reply racing the request's teardown must not
    error) or when there is nothing to merge.
    """
    if not span_dicts:
        return 0
    collector = collector_for(trace_id)
    if collector is None:
        return 0
    collector.extend(span_dicts)
    return len(span_dicts)


# ----------------------------------------------------------- thread-local

_TLS = threading.local()


def _context() -> Optional[tuple]:
    return getattr(_TLS, "ctx", None)


def current_trace_id() -> Optional[str]:
    """The trace id bound to this thread, or ``None``."""
    ctx = _context()
    return ctx[0].trace_id if ctx is not None else None


def current_context() -> Optional[tuple]:
    """The forwardable ``(trace_id, parent_span_id)`` of this thread.

    This is the value to ship across a process boundary: the receiving
    side passes it to :func:`remote_trace` so its spans stitch under the
    caller's current span.  ``None`` when no trace is bound.
    """
    ctx = _context()
    if ctx is None:
        return None
    collector, parent_id = ctx
    return (collector.trace_id, parent_id)


# ----------------------------------------------------------------- spans

class Span:
    """One timed operation.

    Always usable as a timer: ``duration`` (seconds) is valid after the
    ``with`` block whether or not tracing is on.  Attributes set via
    :meth:`set` ride into the trace event (and are dropped silently when
    nothing is recording).
    """

    __slots__ = (
        "name",
        "attrs",
        "duration",
        "span_id",
        "_collector",
        "_event",
        "_parent_id",
        "_prev_ctx",
        "_t0",
        "_ts_us",
    )

    def __init__(
        self,
        name: str,
        attrs: Optional[dict],
        collector: Optional[TraceCollector],
        parent_id: Optional[str],
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.duration = 0.0
        self.span_id: Optional[str] = None
        self._collector = collector
        self._event: Optional[dict] = None
        self._parent_id = parent_id
        self._prev_ctx: Any = None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (no-op when not recording).

        Valid before *or after* the ``with`` block closes: callers often
        only learn the interesting numbers (solver stats, cache outcomes)
        once the timed work has finished, so a late ``set`` patches the
        already-recorded event in place.
        """
        if self._collector is not None:
            if self.attrs is None:
                self.attrs = {}
            self.attrs.update(attrs)
            if self._event is not None:
                self._event["attrs"] = self.attrs
        return self

    @property
    def ctx(self) -> Optional[tuple]:
        """``(trace_id, span_id)`` for forwarding to a subprocess."""
        if self._collector is None or self.span_id is None:
            return None
        return (self._collector.trace_id, self.span_id)

    def __enter__(self) -> "Span":
        collector = self._collector
        if collector is not None:
            self.span_id = _new_span_id()
            self._ts_us = time.time_ns() // 1000
            self._prev_ctx = _context()
            _TLS.ctx = (collector, self.span_id)
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur_ns = time.perf_counter_ns() - self._t0
        self.duration = dur_ns / 1e9
        collector = self._collector
        if collector is not None:
            _TLS.ctx = self._prev_ctx
            event = {
                "trace_id": collector.trace_id,
                "span_id": self.span_id,
                "parent_id": self._parent_id,
                "name": self.name,
                "ts_us": self._ts_us,
                "dur_us": dur_ns // 1000,
                "pid": os.getpid(),
                "tid": threading.get_ident() & 0xFFFFFFFF,
            }
            if exc_type is not None:
                event["error"] = exc_type.__name__
            if self.attrs:
                event["attrs"] = self.attrs
            self._event = event
            collector.add(event)


def span(name: str, **attrs: Any) -> Span:
    """Open a span under this thread's trace context (the usual entry).

    With no context bound the span degrades to a bare timer — ``duration``
    still works, nothing is recorded, and the attrs dict is not even
    built (keyword evaluation aside).  This is the disabled fast path the
    overhead micro-assert measures.
    """
    ctx = _context()
    if ctx is None:
        return Span(name, None, None, None)
    collector, parent_id = ctx
    return Span(name, attrs or None, collector, parent_id)


@contextmanager
def bind_trace(trace_ctx: Optional[tuple]) -> Iterator[None]:
    """Adopt an open trace's explicit ``(trace_id, parent_span_id)`` context.

    Used by executor threads handling a request whose root span lives on
    another thread: spans opened inside the ``with`` block parent under
    ``parent_span_id``.  A ``None`` context (tracing off, or the trace
    already closed) binds nothing.
    """
    collector = collector_for(trace_ctx[0]) if trace_ctx else None
    if collector is None:
        yield
        return
    prev = _context()
    _TLS.ctx = (collector, trace_ctx[1])
    try:
        yield
    finally:
        _TLS.ctx = prev


@contextmanager
def attached_span(
    trace_ctx: Optional[tuple], name: str, **attrs: Any
) -> Iterator[Span]:
    """A span recorded by explicit context, without touching thread-locals.

    For threads that juggle work of several traces (the worker pool's
    dispatcher threads): the span records into the registered collector of
    ``trace_ctx[0]`` under parent ``trace_ctx[1]``.  Yields the span; its
    ``ctx`` is the context to forward to a subprocess.
    """
    collector = collector_for(trace_ctx[0]) if trace_ctx else None
    handle = Span(name, attrs or None, collector, trace_ctx[1] if trace_ctx else None)
    if collector is None:
        # Bare timer; do not touch TLS either way for attached spans.
        with handle:
            yield handle
        return
    # Enter/exit manually so the TLS swap of __enter__ is undone at once:
    # attached spans are explicit-context by definition.
    with handle:
        _TLS.ctx = handle._prev_ctx
        try:
            yield handle
        finally:
            handle._prev_ctx = _context()


# --------------------------------------------------------------- tracing

class TraceHandle:
    """What :func:`trace` yields: identity plus the live collector."""

    def __init__(self, trace_id: str, collector: Optional[TraceCollector]) -> None:
        self.trace_id = trace_id
        self.collector = collector
        #: Filled at exit in export mode: path of the written trace file.
        self.export_path: Optional[str] = None

    def spans(self) -> list[dict]:
        return self.collector.spans() if self.collector is not None else []


@contextmanager
def trace(
    name: str,
    trace_id: Optional[str] = None,
    attrs: Optional[Mapping[str, Any]] = None,
    export_dir: Optional[str] = None,
) -> Iterator[TraceHandle]:
    """Open a root span and bind a collector to the calling thread.

    The in-process entry point (benchmark runs, library users).  A trace
    id is minted unless one is supplied.  With ``REPRO_TRACE=off`` the
    handle carries the id but no collector — every inner :func:`span`
    stays on the disabled fast path.  With ``REPRO_TRACE=export`` the
    finished trace is written as Chrome trace-event JSON plus a JSON log
    line under ``export_dir`` (default :func:`trace_export_dir`).
    """
    mode = tracing_mode()
    tid = trace_id or new_trace_id()
    handle = TraceHandle(tid, None)
    if mode == "off":
        yield handle
        return
    collector = TraceCollector(tid)
    handle.collector = collector
    _register(collector)
    prev = _context()
    root = Span(name, dict(attrs) if attrs else None, collector, None)
    try:
        with root:
            yield handle
    finally:
        _TLS.ctx = prev
        _unregister(tid)
        if mode == "export":
            from repro.obs.export import export_trace

            handle.export_path = export_trace(
                collector, root_name=name, directory=export_dir
            )


class RequestTrace:
    """An explicitly finished trace for event-loop frontends.

    One asyncio thread interleaves many requests, so the thread-local
    binding of :func:`trace` would cross wires between them.  A
    :class:`RequestTrace` keeps everything explicit: the root span is
    recorded at :meth:`finish`, the context to forward to executor
    threads is :attr:`ctx`, and the trace id exists even with tracing off
    (request identity is free; collection is what's gated).
    """

    def __init__(self, name: str, trace_id: str, attrs: Optional[dict]) -> None:
        self.name = name
        self.trace_id = trace_id
        self.attrs = attrs or {}
        self.collector: Optional[TraceCollector] = None
        self.root_span_id: Optional[str] = None
        self.export_path: Optional[str] = None
        self._ts_us = 0
        self._t0 = 0
        self.duration = 0.0
        mode = tracing_mode()
        self._export = mode == "export"
        if mode != "off":
            self.collector = TraceCollector(trace_id)
            self.root_span_id = _new_span_id()
            self._ts_us = time.time_ns() // 1000
            _register(self.collector)
        self._t0 = time.perf_counter_ns()

    @property
    def ctx(self) -> Optional[tuple]:
        if self.collector is None:
            return None
        return (self.trace_id, self.root_span_id)

    def set(self, **attrs: Any) -> None:
        if self.collector is not None:
            self.attrs.update(attrs)

    def finish(self) -> None:
        dur_ns = time.perf_counter_ns() - self._t0
        self.duration = dur_ns / 1e9
        if self.collector is None:
            return
        self.collector.add(
            {
                "trace_id": self.trace_id,
                "span_id": self.root_span_id,
                "parent_id": None,
                "name": self.name,
                "ts_us": self._ts_us,
                "dur_us": dur_ns // 1000,
                "pid": os.getpid(),
                "tid": threading.get_ident() & 0xFFFFFFFF,
                **({"attrs": self.attrs} if self.attrs else {}),
            }
        )
        _unregister(self.trace_id)
        if self._export:
            from repro.obs.export import export_trace

            self.export_path = export_trace(self.collector, root_name=self.name)


def start_request_trace(
    name: str, trace_id: Optional[str] = None, **attrs: Any
) -> RequestTrace:
    """Mint (or adopt) a request's trace id and open its root span.

    Always returns a handle — with tracing off it only carries the minted
    id, so responses can echo a ``trace_id`` unconditionally.
    """
    return RequestTrace(name, trace_id or new_trace_id(), attrs or None)


# ------------------------------------------------------- subprocess side

class RemoteSpans:
    """What :func:`remote_trace` yields: the spans to ship back."""

    def __init__(self) -> None:
        self.spans: list[dict] = []


@contextmanager
def remote_trace(trace_ctx: Optional[tuple]) -> Iterator[RemoteSpans]:
    """Collect spans in a subprocess for shipping back to the parent.

    The parent forwards :func:`current_context` (or a span's ``ctx``)
    with the work item; the worker wraps its execution in this context
    manager and returns ``bundle.spans`` with the reply, which the parent
    folds in via :func:`merge_spans`.  A ``None`` context is the tracing-
    off fast path: nothing is bound, nothing is collected.
    """
    bundle = RemoteSpans()
    if not trace_ctx:
        yield bundle
        return
    trace_id, parent_id = trace_ctx
    collector = TraceCollector(trace_id)
    # In a subprocess the registry slot is free — claim it so explicit-
    # context helpers resolve to this shard's collector.  When the
    # "remote" side actually shares the parent's process (thread
    # executors, tests) the parent's live collector already owns the
    # slot; leave it alone — spans opened under the TLS context below
    # still land in this shard's collector, and id-keyed lookups hit the
    # parent directly.  (Never shadow-and-restore: two concurrent same-
    # process shards exiting non-LIFO would restore a stale, finished
    # collector and silently drop later spans.)
    with _ACTIVE_LOCK:
        claimed = trace_id not in _ACTIVE
        if claimed:
            _ACTIVE[trace_id] = collector
    prev = _context()
    _TLS.ctx = (collector, parent_id)
    try:
        yield bundle
    finally:
        _TLS.ctx = prev
        if claimed:
            with _ACTIVE_LOCK:
                if _ACTIVE.get(trace_id) is collector:
                    _ACTIVE.pop(trace_id, None)
        bundle.spans = collector.spans()


# ------------------------------------------------- profile side tables

#: Id-keyed weakref side tables (PR 8's encode-profile registry pattern,
#: generalized and owned by the tracing layer): observability data about
#: an object — timings, backends — that must never ride its pickle.
_PROFILES: dict[int, dict] = {}


def attach_profile(obj: object, profile: dict) -> None:
    """Attach a profile dict to an object for its lifetime (never pickled)."""
    key = id(obj)
    _PROFILES[key] = profile
    weakref.finalize(obj, _PROFILES.pop, key, None)


def profile_of(obj: object) -> dict:
    """The profile attached to ``obj``, or ``{}``."""
    return _PROFILES.get(id(obj), {})
