"""Observability: spans, metrics, and trace export for the whole stack.

One request identity (``trace_id``) stitches router → daemon → worker →
solver; one clock (the span API) times every phase the old per-layer
profiles reported; one registry collects the counters.  See
:mod:`repro.obs.trace` for the tracing model and the ``REPRO_TRACE``
gate, :mod:`repro.obs.metrics` for the registry, and
:mod:`repro.obs.export` for the Chrome trace-event / JSON-line writers.

This package imports only the standard library — every other layer
(``encoding``, ``bmc``, ``core``, ``serve``) may import it freely.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.obs.trace import (
    RequestTrace,
    Span,
    TraceCollector,
    attach_profile,
    attached_span,
    bind_trace,
    collector_for,
    current_context,
    current_trace_id,
    merge_spans,
    new_trace_id,
    profile_of,
    remote_trace,
    span,
    start_request_trace,
    trace,
    trace_export_dir,
    tracing_mode,
    valid_trace_id,
)
from repro.obs.export import export_trace, to_chrome_trace, validate_chrome_trace

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "RequestTrace",
    "Span",
    "TraceCollector",
    "attach_profile",
    "attached_span",
    "bind_trace",
    "collector_for",
    "current_context",
    "current_trace_id",
    "export_trace",
    "merge_spans",
    "new_trace_id",
    "profile_of",
    "remote_trace",
    "span",
    "start_request_trace",
    "to_chrome_trace",
    "trace",
    "trace_export_dir",
    "tracing_mode",
    "valid_trace_id",
    "validate_chrome_trace",
]
