"""Trace exporters: Chrome trace-event JSON and structured log lines.

``export_trace`` writes one ``{trace_id}.trace.json`` per finished trace
(loadable in ``chrome://tracing`` or https://ui.perfetto.dev) and appends
a one-line JSON summary keyed by trace_id to ``traces.jsonl`` in the same
directory — the structured-log sibling for pipelines that grep rather
than render.

``validate_chrome_trace`` is the schema check the CI smoke job (and the
tests) run against emitted files: it returns a list of problems, empty
when the document is a well-formed Chrome trace.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.obs.trace import TraceCollector, trace_export_dir, valid_trace_id

__all__ = ["to_chrome_trace", "validate_chrome_trace", "export_trace"]


def to_chrome_trace(spans: list, trace_id: Optional[str] = None) -> dict:
    """Render span dicts as a Chrome trace-event JSON object.

    Each span becomes a complete event (``"ph": "X"``); parent/child
    structure is conveyed by time nesting per (pid, tid) track, and the
    raw span/parent ids ride along in ``args`` for tooling that wants
    the exact tree.
    """
    events = []
    for span in spans:
        event = {
            "name": span["name"],
            "cat": "repro",
            "ph": "X",
            "ts": span["ts_us"],
            "dur": span["dur_us"],
            "pid": span["pid"],
            "tid": span["tid"],
            "args": {
                "trace_id": span["trace_id"],
                "span_id": span["span_id"],
                "parent_id": span.get("parent_id"),
                **span.get("attrs", {}),
            },
        }
        if "error" in span:
            event["args"]["error"] = span["error"]
        events.append(event)
    events.sort(key=lambda e: e["ts"])
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace_id or (spans[0]["trace_id"] if spans else "")},
    }


def validate_chrome_trace(document) -> list:
    """Problems that make ``document`` an invalid Chrome trace ([] = valid)."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["top level is not an object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = "traceEvents[%d]" % index
        if not isinstance(event, dict):
            problems.append("%s is not an object" % where)
            continue
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in event:
                problems.append("%s missing %r" % (where, field))
        phase = event.get("ph")
        if not isinstance(phase, str) or len(phase) != 1:
            problems.append("%s has bad phase %r" % (where, phase))
        if phase == "X" and "dur" not in event:
            problems.append("%s complete event missing 'dur'" % where)
        for field in ("ts", "dur"):
            if field in event and not isinstance(event[field], (int, float)):
                problems.append("%s field %r is not numeric" % (where, field))
    return problems


def export_trace(
    collector: TraceCollector,
    root_name: str = "",
    directory: Optional[str] = None,
) -> Optional[str]:
    """Write a finished trace to disk; returns the trace-file path.

    Best-effort by design: an unwritable export directory degrades to a
    ``None`` return, never an exception on the serving path.
    """
    spans = collector.spans()
    if not spans:
        return None
    out_dir = directory or trace_export_dir()
    # The id becomes a filename, and ids can come from outside the
    # process (the wire ``trace_id`` field) — the serve frontend already
    # rejects malformed ones, but never trust that here: an id that is
    # not plain hex must not steer the write outside the trace dir.
    trace_id = collector.trace_id
    if not valid_trace_id(trace_id):
        trace_id = "".join(c if c.isalnum() else "_" for c in trace_id)[:64] or "trace"
    try:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, "%s.trace.json" % trace_id)
        if os.path.dirname(os.path.abspath(path)) != os.path.abspath(out_dir):
            return None
        with open(path, "w") as handle:
            json.dump(to_chrome_trace(spans, trace_id), handle, indent=1)
            handle.write("\n")
        _append_log_line(out_dir, trace_id, root_name, spans)
        return path
    except OSError:
        return None


def _append_log_line(out_dir: str, trace_id: str, root_name: str, spans: list) -> None:
    roots = [s for s in spans if s.get("parent_id") is None]
    record = {
        "trace_id": trace_id,
        "name": root_name or (roots[0]["name"] if roots else ""),
        "spans": len(spans),
        "pids": sorted({s["pid"] for s in spans}),
        "ts_us": min(s["ts_us"] for s in spans),
        "dur_us": max(s["ts_us"] + s["dur_us"] for s in spans)
        - min(s["ts_us"] for s in spans),
        "top": sorted(
            ({"name": s["name"], "dur_us": s["dur_us"]} for s in spans),
            key=lambda item: -item["dur_us"],
        )[:5],
    }
    with open(os.path.join(out_dir, "traces.jsonl"), "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
