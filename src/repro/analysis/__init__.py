"""Abstract interpretation over mini-C: lint diagnostics, value ranges for
the narrowed encoding, and the groundwork for static soft-clause pruning.

The package splits along the classic lines:

* :mod:`repro.analysis.intervals` — the interval lattice (width-aware,
  faithful to mini-C's wrap/div/mod semantics) plus the bit-narrowing plan;
* :mod:`repro.analysis.framework` — the generic worklist solver over
  ``repro.cfg`` graphs (RPO iteration, widening, descending rounds);
* :mod:`repro.analysis.domains` — interval, constant and definite-init
  domains;
* :mod:`repro.analysis.analyzer` — the interprocedural driver, diagnostics
  engine and the :func:`analyze_program` / :func:`analyze_source` API.

``python -m repro.analysis program.c`` runs the linter from the shell.
"""

from repro.analysis.analyzer import (
    AnalysisResult,
    analyze_program,
    analyze_source,
    failed_result,
)
from repro.analysis.domains import (
    ConstantDomain,
    DefiniteInitDomain,
    FunctionSummary,
    IntervalDomain,
    IntervalState,
)
from repro.analysis.framework import Domain, solve
from repro.analysis.impact import (
    ChangeSet,
    FunctionSignature,
    ImpactSet,
    ProgramFingerprint,
    compute_impact,
    diff_fingerprints,
    fingerprint_program,
    function_signature,
    program_line_map,
)
from repro.analysis.intervals import Interval, width_bounds
from repro.analysis.loops import (
    LoopBound,
    effective_unwind,
    infer_loop_bounds,
    lint_loops,
    plan_unwinds,
)
from repro.lang.diagnostics import ERROR, WARNING, Diagnostic, has_errors

__all__ = [
    "AnalysisResult",
    "analyze_program",
    "analyze_source",
    "failed_result",
    "ConstantDomain",
    "DefiniteInitDomain",
    "FunctionSummary",
    "IntervalDomain",
    "IntervalState",
    "Domain",
    "solve",
    "ChangeSet",
    "FunctionSignature",
    "ImpactSet",
    "ProgramFingerprint",
    "compute_impact",
    "diff_fingerprints",
    "fingerprint_program",
    "function_signature",
    "program_line_map",
    "Interval",
    "width_bounds",
    "LoopBound",
    "effective_unwind",
    "infer_loop_bounds",
    "lint_loops",
    "plan_unwinds",
    "Diagnostic",
    "ERROR",
    "WARNING",
    "has_errors",
]
